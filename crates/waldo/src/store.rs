//! The sharded provenance store.
//!
//! [`Store`] is the facade over N independent pnode-hash
//! shards (`crate::shard`). It owns the three cross-shard concerns:
//!
//! * **routing** — a stable splitmix hash of `(volume, pnode number)`
//!   picks a shard; the same pnode routes to the same shard forever,
//!   independent of ingest order or batch boundaries;
//! * **staged, group-committed ingestion** — parsed log entries are
//!   staged, then applied in one atomic group per
//!   [`WaldoConfig::ingest_batch`] entries. A commit groups its
//!   entries by subject pnode and applies each run with one
//!   object-table lookup (the batched fast path), then routes reverse
//!   ancestry edges to their ancestors' shards. All durable state —
//!   shards, open-transaction buffers, per-log-file high-water marks —
//!   mutates only inside [`Store::commit_staged`], so a crash between
//!   commits loses exactly the staged suffix and a restarted consumer
//!   can replay a half-ingested log exactly once;
//! * **query caches** — transitive `ancestors`/`descendants` closures
//!   and per-node labelled edge lists are memoized in LRU caches
//!   validated against per-shard generation counters; a commit bumps
//!   only the shards it touched, so ingest invalidates precisely the
//!   cached results that read those shards.
//!
//! Queries that existed on the old single-map `ProvDb` keep their
//! exact semantics: point lookups route to one shard, index scans fan
//! out and merge in pnode order.
//!
//! # Concurrency
//!
//! The store is `Sync`: every method takes `&self`, and internal
//! locking is fine-grained so snapshot readers proceed *during*
//! commits (the threaded cluster runtime queries members while their
//! ingest threads commit). The lock hierarchy, outermost first:
//!
//! 1. **`meta` mutex** — all writer-owned bookkeeping (staging queue,
//!    open transactions, replay marks, the durability frame, scratch).
//!    Writers (`ingest`, `commit_staged`, `merge`) hold it for their
//!    whole operation, so writers serialize against each other — one
//!    daemon owns one store, so writer concurrency is not the point.
//! 2. **per-shard `RwLock`s** — object tables and indexes. Readers
//!    take brief per-shard read locks; a commit write-locks only the
//!    shards it touches, one at a time.
//! 3. **cache mutexes** — the memoized traversal caches.
//!
//! Per-shard locks alone would let a reader observe *half* of a
//! cross-shard transaction (subject effects applied on shard A,
//! reverse edges not yet on shard B). A store-wide **epoch seqlock**
//! closes that window: `epoch` is odd while a commit is mutating
//! shards, and multi-shard readers (`Store::read_consistent`) run
//! optimistically — wait for an even epoch, read with brief shard
//! locks, and retry if the epoch moved. After a bounded number of
//! retries a reader acquires `meta` (blocking new commits, and
//! waiting out the one in flight) for guaranteed progress. Commits
//! never block on readers beyond the per-shard lock handoff, and
//! readers between commits validate in two atomic loads.
//!
//! Per-shard **generations** are mirrored into atomics (`gens`) so
//! cache validation needs no shard lock. Traversals record the
//! generation of every shard *before* reading its content; a commit
//! racing the traversal therefore leaves the cached entry
//! self-invalidating (its recorded generation is stale the moment
//! the commit publishes), and the epoch retry discards the torn
//! result itself.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockWriteGuard};
use std::time::Instant;

use dpapi::{Attribute, ObjectRef, Pnode, Version};
use lasagna::LogEntry;
use pql::EdgeLabel;

use crate::cache::{CacheStats, ShardSnapshot, TraversalCache};
use crate::contention::{Contention, ContentionStats};
use crate::db::{DbSize, IngestStats, ObjectEntry};
use crate::shard::{ReverseEdge, Shard};

/// Tuning knobs for the storage engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaldoConfig {
    /// Number of hash shards. Normalized at construction — see
    /// [`WaldoConfig::effective_shards`] for the exact rule.
    pub shards: usize,
    /// Entries per group commit while draining logs. `1` reproduces
    /// the record-at-a-time daemon of the original system.
    pub ingest_batch: usize,
    /// Capacity of each query cache (ancestry closures and edge
    /// lists); `0` disables caching.
    pub ancestry_cache: usize,
    /// Publish a checkpoint every this many group commits (`0`
    /// disables the commit-count trigger). Checkpoints only happen on
    /// daemons with a database directory attached
    /// (`Waldo::attach_db_dir`); memory-only stores ignore this.
    pub checkpoint_commits: u64,
    /// Publish a checkpoint once the database WAL has grown past this
    /// many bytes since the last truncation (`0` disables the size
    /// trigger). This is the knob that bounds WAL growth.
    pub checkpoint_wal_bytes: u64,
    /// Complete checkpoints (manifest + segments) retained on disk,
    /// at least 1. With 2 (the default), a corrupted newest checkpoint
    /// falls back to its predecessor at the cost of retaining source
    /// logs until *two* checkpoints have covered them.
    pub keep_checkpoints: usize,
}

impl Default for WaldoConfig {
    fn default() -> WaldoConfig {
        WaldoConfig {
            shards: 8,
            ingest_batch: 64,
            ancestry_cache: 4096,
            checkpoint_commits: 32,
            checkpoint_wal_bytes: 64 * 1024,
            keep_checkpoints: 2,
        }
    }
}

impl WaldoConfig {
    /// The original engine's behavior: one shard, one commit per
    /// record, no query cache, no checkpointing. Kept so experiments
    /// can compare against it.
    pub fn record_at_a_time() -> WaldoConfig {
        WaldoConfig {
            shards: 1,
            ingest_batch: 1,
            ancestry_cache: 0,
            checkpoint_commits: 0,
            checkpoint_wal_bytes: 0,
            keep_checkpoints: 2,
        }
    }

    /// The shard count a store built from this configuration actually
    /// uses: `shards.clamp(1, 64).next_power_of_two()`.
    ///
    /// The count is clamped to `1..=64` because shard membership must
    /// fit the caches' one-word bitmask (see
    /// [`crate::cache::ShardSnapshot`]), and rounded up to a power of
    /// two so routing is a mask instead of a modulo. Callers sizing
    /// fleets should call this instead of reading back
    /// [`WaldoConfig::shards`]: asking for 6 shards builds 8, asking
    /// for 100 builds 64.
    pub fn effective_shards(&self) -> usize {
        self.shards.clamp(1, 64).next_power_of_two().min(64)
    }
}

/// Why [`Store::merge`] refused to consolidate two stores. Every
/// variant is a *caller* error or evidence of tampering — the
/// volume-salted batch-id space makes collisions impossible between
/// honestly produced member stores — so fault-injection harnesses
/// treat a `MergeError` as the tamper being **detected** rather than
/// aborting the process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// The two stores hash pnodes over different shard counts, so
    /// routing disagrees shard-for-shard.
    ShardCountMismatch {
        /// Effective shard count of the merge target.
        ours: usize,
        /// Effective shard count of the other store.
        theirs: usize,
    },
    /// The other store still holds staged-but-uncommitted items;
    /// silently dropping them would break the byte-equivalence oracle
    /// without a trace.
    UncommittedStaged {
        /// Number of staged items that would have been lost.
        count: usize,
    },
    /// Both stores buffer an open transaction under the same id —
    /// merging would interleave two transactions' records.
    TxnIdCollision {
        /// The colliding transaction id.
        id: u64,
    },
    /// Both stores are mid-commit (an open transaction at the very
    /// end of each committed stream). Only one open-commit marker can
    /// survive a merge, and dropping the other would route its
    /// untagged continuation records into the wrong transaction.
    BothMidCommit {
        /// The merge target's open-commit transaction id.
        ours: u64,
        /// The other store's open-commit transaction id.
        theirs: u64,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::ShardCountMismatch { ours, theirs } => write!(
                f,
                "Store::merge requires equal effective shard counts \
                 (routing must agree shard-for-shard): {ours} vs {theirs}"
            ),
            MergeError::UncommittedStaged { count } => write!(
                f,
                "merge consolidates committed state; commit {count} staged \
                 entries first"
            ),
            MergeError::TxnIdCollision { id } => write!(
                f,
                "open-transaction id {id:#x} collides in merge; batch ids \
                 are volume-salted, so two members may never share one"
            ),
            MergeError::BothMidCommit { ours, theirs } => write!(
                f,
                "both stores are mid-commit ({ours:#x} vs {theirs:#x}); \
                 merge after their streams' groups close"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// One staged item, waiting for the next group commit.
#[derive(Debug)]
enum Staged {
    /// A parsed entry, optionally tagged with the registered source
    /// file it was read from (for replay marks).
    Entry {
        entry: LogEntry,
        source: Option<usize>,
    },
    /// A log-image boundary: the open-transaction association resets
    /// here (transaction ids never span log images).
    StreamReset,
}

/// Where one to-be-applied entry lives during transaction routing:
/// in the caller's input slice, or in a buffer flushed out of a
/// completed transaction.
enum PlanItem {
    Input(usize),
    Flushed(usize),
}

/// Per-source-file replay bookkeeping.
#[derive(Clone, Debug)]
struct SourceFile {
    path: String,
    /// Entries of this file whose effects are durably committed (the
    /// replay high-water mark).
    committed_mark: usize,
}

/// Cache key for memoized ancestry closures: (pnode, version,
/// is_ancestors). Version is 0 for descendant queries, which are
/// per-pnode.
type AncestryKey = (Pnode, u32, bool);

/// Cache key for memoized edge lists: (node, label, is_outgoing).
type EdgeKey = (ObjectRef, EdgeLabel, bool);

/// Writer-owned bookkeeping, all behind one mutex (level 1 of the
/// lock hierarchy). One daemon owns one store, so writers contending
/// here is the exception; what matters is that *readers* never need
/// this lock outside the bounded-retry fallback.
struct StoreMeta {
    /// Open provenance transactions (NFS chunked bundles). Committed
    /// state: mutated only during [`Store::commit_staged`].
    pending_txns: HashMap<u64, Vec<LogEntry>>,
    /// The transaction the committed prefix of the stream is inside,
    /// if any. Committed state, like `pending_txns`.
    commit_txn: Option<u64>,
    /// Per-volume replay high-water mark over the disclosure-batch
    /// sequence space ([`lasagna::batch_txn_id`]): the highest batch
    /// sequence each volume has *committed*. A batch-tagged TxnBegin
    /// at or below its volume's mark is a replayed (duplicated) group
    /// frame — Lasagna allocates sequences monotonically per volume —
    /// and its entries are skipped wholesale instead of applied
    /// twice. Committed state, checkpointed with the manifest.
    batch_hw: HashMap<u32, u64>,
    /// When `Some(id)`, the committed stream prefix is inside a
    /// *replayed* batch: routed entries are dropped until the
    /// matching TxnEnd closes the skip region. Committed state, like
    /// `commit_txn`.
    replay_skip: Option<u64>,
    /// Lifetime count of replayed disclosure batches detected (and
    /// skipped) by the high-water check.
    replayed_batches: u64,
    /// Items staged for the next group commit (lost on crash).
    staged: Vec<Staged>,
    /// Count of `Staged::Entry` items in `staged` (kept so batch
    /// checks are O(1)).
    staged_entries: usize,
    /// Files with staged or partially committed entries. Slots of
    /// forgotten files are recycled via `free_sources`.
    source_files: Vec<SourceFile>,
    /// Indices in `source_files` available for reuse.
    free_sources: Vec<usize>,
    /// The last commit's durability frame (seq, applied count,
    /// touched-shard generations, CRC). Writing this frame is the
    /// per-commit cost that group commit amortizes; a persistent
    /// backend would fsync it.
    commit_frame: Vec<u8>,
    /// Reusable scratch: per-shard buckets of apply-list indices.
    bucket_scratch: Vec<Vec<u32>>,
}

impl StoreMeta {
    /// True when `id` is a disclosure-batch transaction this store
    /// has already committed: its volume's high-water mark is at or
    /// above the id's sequence. Lasagna allocates batch sequences
    /// monotonically per volume, so seeing such an id again means the
    /// log tail replayed (duplicated) a committed group frame.
    fn is_replayed_batch(&self, id: u64) -> bool {
        match lasagna::batch_txn_parts(id) {
            Some((vol, seq)) => self.batch_hw.get(&vol.0).is_some_and(|hw| seq <= *hw),
            None => false,
        }
    }

    /// Records that batch transaction `id` committed, advancing its
    /// volume's replay high-water mark. Ids outside the batch space
    /// (PA-NFS server transactions) carry no volume salt and are not
    /// tracked.
    fn advance_batch_hw(&mut self, id: u64) {
        if let Some((vol, seq)) = lasagna::batch_txn_parts(id) {
            let hw = self.batch_hw.entry(vol.0).or_insert(0);
            *hw = (*hw).max(seq);
        }
    }
}

/// Bounded optimistic retries before a snapshot reader falls back to
/// blocking new commits via the `meta` mutex.
const EPOCH_RETRIES: usize = 64;

/// The sharded, batched, cached provenance store.
pub struct Store {
    cfg: WaldoConfig,
    shards: Vec<RwLock<Shard>>,
    shard_mask: u64,
    /// Seqlock word for cross-shard snapshot reads: odd while a
    /// commit (or merge) is mutating shards.
    epoch: AtomicU64,
    /// Per-shard generation mirror, readable without shard locks —
    /// what cache validation compares against.
    gens: Vec<AtomicU64>,
    /// Monotonic group-commit sequence number.
    commit_seq: AtomicU64,
    /// Writer-owned bookkeeping (lock level 1).
    meta: Mutex<StoreMeta>,
    /// Memoized ancestry/descendant closures.
    ancestry_cache: Mutex<TraversalCache<AncestryKey, Vec<ObjectRef>>>,
    /// Memoized per-node labelled edge lists (the PQL hot path).
    edge_cache: Mutex<TraversalCache<EdgeKey, Vec<ObjectRef>>>,
    /// Memoized whole reachability closures, keyed like edge lists —
    /// what repeated PQL `label*`/`label+` queries hit.
    closure_cache: Mutex<TraversalCache<EdgeKey, Vec<ObjectRef>>>,
    /// Lock-contention profiling: seqlock retry/fallback counters and
    /// per-level wait histograms. See [`crate::contention`].
    contention: Contention,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let meta = self.lock_meta();
        f.debug_struct("Store")
            .field("cfg", &self.cfg)
            .field("objects", &self.object_count())
            .field("staged", &meta.staged.len())
            .field("open_txns", &meta.pending_txns.len())
            .finish()
    }
}

impl Default for Store {
    fn default() -> Store {
        Store::new()
    }
}

impl Store {
    /// Creates an empty store with the default configuration.
    pub fn new() -> Store {
        Store::with_config(WaldoConfig::default())
    }

    /// Creates an empty store with explicit tuning knobs.
    pub fn with_config(cfg: WaldoConfig) -> Store {
        let n = cfg.effective_shards();
        Store {
            cfg,
            shards: (0..n).map(|_| RwLock::new(Shard::default())).collect(),
            shard_mask: (n - 1) as u64,
            epoch: AtomicU64::new(0),
            gens: (0..n).map(|_| AtomicU64::new(0)).collect(),
            commit_seq: AtomicU64::new(0),
            meta: Mutex::new(StoreMeta {
                pending_txns: HashMap::new(),
                commit_txn: None,
                batch_hw: HashMap::new(),
                replay_skip: None,
                replayed_batches: 0,
                staged: Vec::new(),
                staged_entries: 0,
                source_files: Vec::new(),
                free_sources: Vec::new(),
                commit_frame: Vec::new(),
                bucket_scratch: (0..n).map(|_| Vec::new()).collect(),
            }),
            ancestry_cache: Mutex::new(TraversalCache::new(cfg.ancestry_cache.max(1))),
            edge_cache: Mutex::new(TraversalCache::new(cfg.ancestry_cache.max(1))),
            closure_cache: Mutex::new(TraversalCache::new(cfg.ancestry_cache.max(1))),
            contention: Contention::default(),
        }
    }

    /// The configuration the store was built with (shard count
    /// normalized to the effective power of two).
    pub fn config(&self) -> WaldoConfig {
        WaldoConfig {
            shards: self.shards.len(),
            ..self.cfg
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard `p` is homed on. Stable: depends only on the pnode
    /// and the shard count, never on ingest order or batching.
    pub fn shard_of(&self, p: Pnode) -> usize {
        (mix_pnode(p) & self.shard_mask) as usize
    }

    /// Runs `f` against `p`'s home shard under its read lock. One
    /// lock acquisition sees one consistent shard, so single-shard
    /// reads need no epoch validation.
    fn with_home<R>(&self, p: Pnode, f: impl FnOnce(&Shard) -> R) -> R {
        f(&self.shards[self.shard_of(p)].read().unwrap())
    }

    /// Runs `f` against shard `i` under its read lock — the
    /// checkpoint writer's access path.
    pub(crate) fn with_shard<R>(&self, i: usize, f: impl FnOnce(&Shard) -> R) -> R {
        f(&self.shards[i].read().unwrap())
    }

    /// The generation of one shard (bumped per commit touching it).
    pub fn shard_generation(&self, shard: usize) -> u64 {
        self.gens[shard].load(Ordering::Acquire)
    }

    /// Runs a multi-shard read so it observes commits all-or-nothing:
    /// wait for an even epoch, read (taking brief per-shard locks),
    /// and retry if a commit moved the epoch meanwhile. After
    /// [`EPOCH_RETRIES`] failed attempts the reader takes the `meta`
    /// mutex — blocking *new* commits and waiting out the one in
    /// flight — so progress is guaranteed under a commit storm.
    ///
    /// `f` may run several times; it must not hold any shard lock
    /// while acquiring `meta` (no `f` does — shard locks are released
    /// between nodes), and side effects must be idempotent (the cache
    /// stores are: a retried attempt overwrites its own key).
    fn read_consistent<R>(&self, f: impl Fn() -> R) -> R {
        self.contention.epoch_reads.fetch_add(1, Ordering::Relaxed);
        for _ in 0..EPOCH_RETRIES {
            let e1 = self.epoch.load(Ordering::Acquire);
            if e1 & 1 == 1 {
                self.contention
                    .epoch_retries
                    .fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
                continue;
            }
            let r = f();
            if self.epoch.load(Ordering::Acquire) == e1 {
                return r;
            }
            self.contention
                .epoch_retries
                .fetch_add(1, Ordering::Relaxed);
        }
        self.contention
            .epoch_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        let _writers_held_off = self.lock_meta();
        f()
    }

    /// Acquires the meta mutex (lock level 1), recording the
    /// wall-clock wait into the contention profile.
    fn lock_meta(&self) -> MutexGuard<'_, StoreMeta> {
        let t = Instant::now();
        let guard = self.meta.lock().unwrap();
        self.contention
            .meta_wait
            .observe(t.elapsed().as_nanos() as u64);
        guard
    }

    /// Acquires shard `i`'s write lock (lock level 2), recording the
    /// wall-clock wait into the contention profile. Read locks are
    /// deliberately untimed — the query hot path stays two loads and
    /// an uncontended lock.
    fn shard_write(&self, i: usize) -> RwLockWriteGuard<'_, Shard> {
        let t = Instant::now();
        let guard = self.shards[i].write().unwrap();
        self.contention
            .shard_wait
            .observe(t.elapsed().as_nanos() as u64);
        guard
    }

    /// Acquires one of the query-cache mutexes (lock level 3),
    /// recording the wall-clock wait into the contention profile.
    fn lock_cache<'a, T>(&self, cache: &'a Mutex<T>) -> MutexGuard<'a, T> {
        let t = Instant::now();
        let guard = cache.lock().unwrap();
        self.contention
            .cache_wait
            .observe(t.elapsed().as_nanos() as u64);
        guard
    }

    /// Deterministic seqlock counter snapshot — retries, fallbacks
    /// and commit windows. A [`provscope::MetricSource`]; absorb it
    /// under a prefix or use [`Store::export_contention`].
    pub fn contention_stats(&self) -> ContentionStats {
        self.contention.stats()
    }

    /// Exports the full contention profile — the deterministic
    /// counters under `{prefix}contention.` plus the **wall-clock**
    /// per-lock-level wait histograms and commit-window durations.
    /// Opt-in by design: the wall-clock histograms are never part of
    /// the store's default metric emission, so determinism-asserting
    /// consumers (byte-equality oracles, trace tests) never see them.
    pub fn export_contention(&self, prefix: &str, reg: &mut provscope::Registry) {
        reg.absorb(&format!("{prefix}contention."), &self.contention.stats());
        reg.absorb_histogram(
            &format!("{prefix}lock.meta_wait_ns"),
            &self.contention.meta_wait.snapshot(),
        );
        reg.absorb_histogram(
            &format!("{prefix}lock.shard_wait_ns"),
            &self.contention.shard_wait.snapshot(),
        );
        reg.absorb_histogram(
            &format!("{prefix}lock.cache_wait_ns"),
            &self.contention.cache_wait.snapshot(),
        );
        reg.absorb_histogram(
            &format!("{prefix}commit_window_ns"),
            &self.contention.commit_window.snapshot(),
        );
    }

    /// Current per-shard generations as a lookup for cache
    /// validation.
    fn gen_of(&self) -> impl Fn(usize) -> u64 + '_ {
        |i| self.gens[i].load(Ordering::Acquire)
    }

    /// Ancestry-closure cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock_cache(&self.ancestry_cache).stats
    }

    /// Edge-list cache counters (the PQL hot path).
    pub fn edge_cache_stats(&self) -> CacheStats {
        self.lock_cache(&self.edge_cache).stats
    }

    /// Closure cache counters (repeated PQL `label*`/`label+` steps).
    pub fn closure_cache_stats(&self) -> CacheStats {
        self.lock_cache(&self.closure_cache).stats
    }

    // ---- ingestion --------------------------------------------------------

    /// Ingests a parsed log image as one group commit. This is the old
    /// `ProvDb::ingest` surface — semantics (transaction buffering
    /// across calls, stats) are unchanged — but entries are applied by
    /// reference, without passing through the staging queue.
    pub fn ingest(&self, entries: &[LogEntry]) -> IngestStats {
        let mut stats = IngestStats::default();
        let meta = &mut *self.lock_meta();
        // Direct ingest may not reorder around entries a daemon staged
        // earlier: flush them first, as their own commit. Their counts
        // belong to that commit, not to this call's return value.
        if !meta.staged.is_empty() {
            let mut flush_stats = IngestStats::default();
            self.commit_staged_locked(meta, &mut flush_stats);
        }
        // A new log image starts a new transaction scope (and closes
        // any replay-skip region: transaction ids never span images).
        meta.commit_txn = None;
        meta.replay_skip = None;
        // Transaction routing, in arrival order. `plan` records which
        // entries this commit applies: positions in `entries`, or in
        // the `flushed` buffers pulled out of completed transactions.
        // This mirrors the owned-entry routing in `commit_staged` —
        // kept separate so this path can borrow instead of clone; the
        // `batching_is_transparent` property test holds the two
        // equivalent.
        let mut flushed: Vec<LogEntry> = Vec::new();
        let mut plan: Vec<PlanItem> = Vec::with_capacity(entries.len());
        for (i, entry) in entries.iter().enumerate() {
            match entry {
                LogEntry::TxnBegin { id } => {
                    if meta.is_replayed_batch(*id) {
                        meta.replay_skip = Some(*id);
                        meta.replayed_batches += 1;
                        stats.replayed_batches += 1;
                        continue;
                    }
                    meta.pending_txns.entry(*id).or_default();
                    meta.commit_txn = Some(*id);
                }
                LogEntry::TxnEnd { id } => {
                    if meta.replay_skip == Some(*id) {
                        meta.replay_skip = None;
                        continue;
                    }
                    if let Some(buf) = meta.pending_txns.remove(id) {
                        let start = flushed.len();
                        flushed.extend(buf);
                        plan.extend((start..flushed.len()).map(PlanItem::Flushed));
                        stats.txns_committed += 1;
                        meta.advance_batch_hw(*id);
                    }
                    if meta.commit_txn == Some(*id) {
                        meta.commit_txn = None;
                    }
                }
                _ if meta.replay_skip.is_some() => {}
                _ => match meta.commit_txn {
                    Some(id) => {
                        meta.pending_txns.entry(id).or_default().push(entry.clone());
                        stats.pending += 1;
                    }
                    None => plan.push(PlanItem::Input(i)),
                },
            }
        }
        let apply: Vec<&LogEntry> = plan
            .iter()
            .map(|p| match p {
                PlanItem::Input(i) => &entries[*i],
                PlanItem::Flushed(i) => &flushed[*i],
            })
            .collect();
        let touched = self.apply_group(meta, &apply, &mut stats);
        if !entries.is_empty() {
            stats.group_commits += 1;
            self.write_commit_frame(meta, apply.len() as u64, touched);
        }
        stats
    }

    /// Marks a log-image boundary in the staged stream: the open
    /// transaction id of one image never carries into the next
    /// (matching the original per-image semantics). Do **not** call
    /// this when resuming a partially committed file after a crash —
    /// the store's committed transaction context is precisely the
    /// context at the file's high-water mark.
    pub fn begin_stream(&self) {
        self.lock_meta().staged.push(Staged::StreamReset);
    }

    /// Registers a log file for replay tracking; returns its source
    /// handle and the number of leading entries already committed
    /// (nonzero after a crash between group commits — skip those).
    pub fn register_source(&self, path: &str) -> (usize, usize) {
        let meta = &mut *self.lock_meta();
        if let Some(i) = meta
            .source_files
            .iter()
            .position(|s| !s.path.is_empty() && s.path == path)
        {
            return (i, meta.source_files[i].committed_mark);
        }
        let slot = SourceFile {
            path: path.to_string(),
            committed_mark: 0,
        };
        match meta.free_sources.pop() {
            Some(i) => {
                meta.source_files[i] = slot;
                (i, 0)
            }
            None => {
                meta.source_files.push(slot);
                (meta.source_files.len() - 1, 0)
            }
        }
    }

    /// Stages one entry for the next group commit. No durable state
    /// changes here: transaction routing happens at commit time.
    pub fn stage(&self, entry: LogEntry, source: Option<usize>) {
        let meta = &mut *self.lock_meta();
        meta.staged.push(Staged::Entry { entry, source });
        meta.staged_entries += 1;
    }

    /// Number of entries staged for the next commit.
    pub fn staged_len(&self) -> usize {
        self.lock_meta().staged_entries
    }

    /// Applies every staged entry as one atomic group commit:
    /// transaction markers are resolved in arrival order, appliable
    /// entries are grouped by subject pnode per shard (one
    /// object-table lookup per run), reverse ancestry edges are routed
    /// to their ancestors' shards, source-file marks advance, and each
    /// touched shard's generation is bumped exactly once.
    pub fn commit_staged(&self, stats: &mut IngestStats) {
        let meta = &mut *self.lock_meta();
        self.commit_staged_locked(meta, stats);
    }

    fn commit_staged_locked(&self, meta: &mut StoreMeta, stats: &mut IngestStats) {
        if meta.staged.is_empty() {
            return;
        }
        let staged = std::mem::take(&mut meta.staged);
        let entries_processed = meta.staged_entries;
        meta.staged_entries = 0;

        // Transaction routing, in arrival order. Produces the flat
        // list of entries this commit applies. Buffered transaction
        // members are durable once this commit returns (they live in
        // `pending_txns`), so their source marks advance now; their
        // effects apply when their TxnEnd commits. Mirrors the
        // borrowed-entry routing in `ingest` (see the note there).
        let mut apply: Vec<LogEntry> = Vec::with_capacity(staged.len());
        for item in staged {
            let (entry, source) = match item {
                Staged::StreamReset => {
                    meta.commit_txn = None;
                    meta.replay_skip = None;
                    continue;
                }
                Staged::Entry { entry, source } => (entry, source),
            };
            if let Some(src) = source {
                meta.source_files[src].committed_mark += 1;
            }
            match &entry {
                LogEntry::TxnBegin { id } => {
                    if meta.is_replayed_batch(*id) {
                        meta.replay_skip = Some(*id);
                        meta.replayed_batches += 1;
                        stats.replayed_batches += 1;
                        continue;
                    }
                    meta.pending_txns.entry(*id).or_default();
                    meta.commit_txn = Some(*id);
                }
                LogEntry::TxnEnd { id } => {
                    if meta.replay_skip == Some(*id) {
                        meta.replay_skip = None;
                        continue;
                    }
                    if let Some(buf) = meta.pending_txns.remove(id) {
                        apply.extend(buf);
                        stats.txns_committed += 1;
                        meta.advance_batch_hw(*id);
                    }
                    if meta.commit_txn == Some(*id) {
                        meta.commit_txn = None;
                    }
                }
                _ if meta.replay_skip.is_some() => {}
                _ => match meta.commit_txn {
                    Some(id) => {
                        meta.pending_txns.entry(id).or_default().push(entry);
                        stats.pending += 1;
                    }
                    None => apply.push(entry),
                },
            }
        }
        let refs: Vec<&LogEntry> = apply.iter().collect();
        let touched = self.apply_group(meta, &refs, stats);
        // A commit that only buffered transaction members (or only
        // consumed markers) still advanced committed state — the
        // pending-transaction buffers and source marks — so its
        // durability frame must be written too, or a consumer
        // recovering from the last persisted frame would replay those
        // entries twice.
        if entries_processed > 0 {
            stats.group_commits += 1;
            self.write_commit_frame(meta, apply.len() as u64, touched);
        }
    }

    /// Lifetime count of replayed disclosure batches detected (and
    /// skipped wholesale) by the per-volume high-water check — the
    /// "detected" signal for group-frame duplication tampers.
    pub fn replayed_batches(&self) -> u64 {
        self.lock_meta().replayed_batches
    }

    /// Applies one commit's entries as an atomic group: entries are
    /// bucketed by shard (preserving arrival order) and grouped into
    /// consecutive same-subject runs, so each run costs one
    /// object-table lookup; reverse ancestry edges are then routed to
    /// their ancestors' shards; finally each touched shard's
    /// generation is bumped exactly once. The epoch goes odd for the
    /// duration, so concurrent snapshot readers retry instead of
    /// seeing half the group. Returns the touched-shard mask; the
    /// caller finalizes the commit (sequence number, durability
    /// frame). Caller holds `meta`.
    fn apply_group(
        &self,
        meta: &mut StoreMeta,
        apply: &[&LogEntry],
        stats: &mut IngestStats,
    ) -> u64 {
        if apply.is_empty() {
            return 0;
        }
        let mut touched: u64 = 0;
        let mut reverse: Vec<ReverseEdge> = Vec::new();
        let mut buckets = std::mem::take(&mut meta.bucket_scratch);
        for (i, entry) in apply.iter().enumerate() {
            if let Some(p) = subject_of(entry) {
                let shard = (mix_pnode(p) & self.shard_mask) as usize;
                buckets[shard].push(i as u32);
            }
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let window_start = Instant::now();
        let mut run: Vec<&LogEntry> = Vec::new();
        for (i, bucket) in buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            touched |= 1 << i;
            let shard = &mut *self.shard_write(i);
            let mut run_start = 0;
            while run_start < bucket.len() {
                let pnode = subject_of(apply[bucket[run_start] as usize])
                    .expect("bucketed entries have subjects");
                let mut run_end = run_start + 1;
                while run_end < bucket.len()
                    && subject_of(apply[bucket[run_end] as usize]) == Some(pnode)
                {
                    run_end += 1;
                }
                run.clear();
                run.extend(
                    bucket[run_start..run_end]
                        .iter()
                        .map(|&j| apply[j as usize]),
                );
                shard.apply_run(pnode, &run, &mut reverse);
                stats.applied += run_end - run_start;
                run_start = run_end;
            }
        }
        for bucket in &mut buckets {
            bucket.clear();
        }
        meta.bucket_scratch = buckets;
        for edge in reverse {
            let i = (mix_pnode(edge.0) & self.shard_mask) as usize;
            touched |= 1 << i;
            self.shard_write(i).add_reverse_edge(edge);
        }
        for i in 0..self.shards.len() {
            if touched & (1 << i) != 0 {
                let mut shard = self.shard_write(i);
                shard.generation += 1;
                self.gens[i].store(shard.generation, Ordering::Release);
            }
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.contention
            .commit_windows
            .fetch_add(1, Ordering::Relaxed);
        self.contention
            .commit_window
            .observe(window_start.elapsed().as_nanos() as u64);
        touched
    }

    /// Serializes the commit's durability record — see
    /// [`crate::wal`] for the frame format and its recovery scope.
    /// Writing and syncing the frame (see `Waldo::attach_db_dir`) is
    /// the per-commit cost that batching amortizes; checkpoints
    /// (`crate::checkpoint`) later truncate frames at or below the
    /// published sequence. Caller holds `meta`.
    fn write_commit_frame(&self, meta: &mut StoreMeta, applied: u64, touched: u64) {
        let seq = self.commit_seq.fetch_add(1, Ordering::AcqRel) + 1;
        let frame = crate::wal::WalFrame {
            seq,
            applied,
            touched,
            gens: (0..self.shards.len())
                .filter(|i| touched & (1 << i) != 0)
                .map(|i| self.gens[i].load(Ordering::Acquire))
                .collect(),
            sources: meta
                .source_files
                .iter()
                .filter(|s| !s.path.is_empty())
                .map(|s| (lasagna::crc32(s.path.as_bytes()), s.committed_mark as u64))
                .collect(),
        };
        meta.commit_frame.clear();
        crate::wal::encode_frame(&mut meta.commit_frame, &frame);
    }

    // ---- checkpoint plumbing ----------------------------------------------

    /// The canonical serialized image of every shard. Because the
    /// encoding is canonical (see `crate::segment`), two stores hold
    /// equal contents **iff** their images are byte-identical; the
    /// crash-matrix, restart and cluster-merge differential tests use
    /// this as their byte-equivalence oracle.
    ///
    /// The ordering contract is explicit and deterministic: the
    /// returned vector is **sorted by shard id** — `images[i]` is
    /// always shard `i`'s image, independent of ingest order, batching
    /// or merge order — and each image's interior is canonical
    /// (objects by pnode, index entries by key, reverse-edge lists by
    /// `(descendant, ancestor version, attribute)`). Two normalizations
    /// make the oracle insensitive to *how* equal contents were
    /// reached: generation counters are written as zero (they count
    /// how commits were grouped, which replay after a crash — or a
    /// cluster merge — may legitimately do differently), and the
    /// reverse-edge sort erases arrival order (a merged store
    /// interleaves members' edges differently than a single daemon
    /// ingesting the same volumes in sequence). Checkpoint segments on
    /// disk keep the real generations — the manifest binds to them.
    ///
    /// The whole image set is taken under one epoch validation, so an
    /// image captured during concurrent ingest is always some
    /// commit-boundary state, never half a group.
    pub fn segment_images(&self) -> Vec<Vec<u8>> {
        self.read_consistent(|| {
            self.shards
                .iter()
                .enumerate()
                .map(|(i, s)| crate::segment::encode_shard(i as u32, &s.read().unwrap(), 0))
                .collect()
        })
    }

    // ---- cluster fan-in ---------------------------------------------------

    /// Merges another store's **committed** contents into this one —
    /// the cluster fan-in path ([`crate::cluster`]): each member
    /// daemon ingests its routed volumes' logs into its own store, and
    /// the consolidated graph is the merge of the members.
    ///
    /// Semantics, per shard `i` (both stores must have the same
    /// effective shard count, so pnode routing agrees and `other`'s
    /// shard `i` lands wholly in ours — the call returns
    /// [`MergeError::ShardCountMismatch`] otherwise):
    ///
    /// * object entries merge by pnode; colliding versions extend
    ///   attribute/input lists in `self`-then-`other` order and sum
    ///   the data-write accounting (with members ingesting *distinct
    ///   volumes* — the cluster invariant — pnodes never collide and
    ///   this degenerates to a plain union);
    /// * secondary indexes (name, type, generalized attribute) union;
    /// * reverse ancestry edge lists concatenate — cross-volume
    ///   references mean a member holds reverse edges for *foreign*
    ///   ancestors, so one ancestor's list may gather contributions
    ///   from several members (queries treat the order as
    ///   unspecified, and [`Store::segment_images`] sorts it);
    /// * footprint accounting and the commit sequence add (exact for
    ///   disjoint members; overlapping contents would double-count);
    /// * open-transaction buffers union — volume-salted batch ids
    ///   ([`lasagna::batch_txn_id`]) guarantee members' ids never
    ///   alias, and the call returns [`MergeError::TxnIdCollision`]
    ///   rather than silently interleaving two transactions' records;
    /// * per-volume batch replay high-water marks merge by maximum;
    /// * staged-but-uncommitted items and per-source replay marks are
    ///   **not** merged: staging is transient by design, and replay
    ///   bookkeeping stays with the member daemon that owns the logs.
    ///
    /// Every refusal is validated **before** any mutation, so a
    /// failed merge leaves `self` exactly as it was — fault-injection
    /// harnesses depend on a clean abort when a forged batch id
    /// collides. Touched shards' generations bump, so cached
    /// traversals against the merged store invalidate exactly as
    /// after an ingest. Both stores' `meta` locks are taken in
    /// address order, so concurrent opposite-direction merges cannot
    /// deadlock.
    pub fn merge(&self, other: &Store) -> Result<(), MergeError> {
        assert!(
            !std::ptr::eq(self, other),
            "Store::merge: cannot merge a store into itself"
        );
        let (mut ours_guard, theirs_guard);
        if (self as *const Store as usize) < (other as *const Store as usize) {
            ours_guard = self.lock_meta();
            theirs_guard = other.lock_meta();
        } else {
            theirs_guard = other.lock_meta();
            ours_guard = self.lock_meta();
        }
        let ours = &mut *ours_guard;
        let theirs = &*theirs_guard;
        if self.shards.len() != other.shards.len() {
            return Err(MergeError::ShardCountMismatch {
                ours: self.shards.len(),
                theirs: other.shards.len(),
            });
        }
        // A hard check like the others: silently dropping staged
        // records would break the byte-equivalence oracle without a
        // trace.
        if !theirs.staged.is_empty() {
            return Err(MergeError::UncommittedStaged {
                count: theirs.staged.len(),
            });
        }
        if let Some(id) = theirs
            .pending_txns
            .keys()
            .find(|id| ours.pending_txns.contains_key(*id))
        {
            return Err(MergeError::TxnIdCollision { id: *id });
        }
        // The open-commit marker routes *untagged* continuation
        // records to their transaction; keeping only one side's
        // marker while both are mid-commit would interleave the other
        // side's continuation into the wrong transaction on a later
        // ingest — refuse, like the id collision above.
        if let (Some(o), Some(t)) = (ours.commit_txn, theirs.commit_txn) {
            return Err(MergeError::BothMidCommit { ours: o, theirs: t });
        }
        for (id, buf) in &theirs.pending_txns {
            ours.pending_txns.insert(*id, buf.clone());
        }
        if ours.commit_txn.is_none() {
            ours.commit_txn = theirs.commit_txn;
        }
        if ours.replay_skip.is_none() {
            ours.replay_skip = theirs.replay_skip;
        }
        for (vol, seq) in &theirs.batch_hw {
            let hw = ours.batch_hw.entry(*vol).or_insert(0);
            *hw = (*hw).max(*seq);
        }
        ours.replayed_batches += theirs.replayed_batches;
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let window_start = Instant::now();
        for i in 0..self.shards.len() {
            let src = &*other.shards[i].read().unwrap();
            if src.objects.is_empty() && src.reverse_index.is_empty() {
                continue;
            }
            let dst = &mut *self.shard_write(i);
            for (p, obj) in &src.objects {
                let entry = dst.objects.entry(*p).or_default();
                entry.current = entry.current.max(obj.current);
                for (v, ve) in &obj.versions {
                    let dv = entry.versions.entry(*v).or_default();
                    dv.attrs.extend(ve.attrs.iter().cloned());
                    dv.inputs.extend(ve.inputs.iter().cloned());
                    dv.writes += ve.writes;
                    dv.bytes_written += ve.bytes_written;
                }
            }
            for (name, set) in &src.name_index {
                dst.name_index
                    .entry(name.clone())
                    .or_default()
                    .extend(set.iter().copied());
            }
            for (ty, set) in &src.type_index {
                dst.type_index
                    .entry(ty.clone())
                    .or_default()
                    .extend(set.iter().copied());
            }
            for (attr, values) in &src.attr_index {
                let dst_values = dst.attr_index.entry(attr.clone()).or_default();
                for (value, set) in values {
                    dst_values
                        .entry(value.clone())
                        .or_default()
                        .extend(set.iter().copied());
                }
            }
            for (ancestor, edges) in &src.reverse_index {
                dst.reverse_index
                    .entry(*ancestor)
                    .or_default()
                    .extend(edges.iter().cloned());
            }
            dst.size.db_bytes += src.size.db_bytes;
            dst.size.index_bytes += src.size.index_bytes;
            dst.generation += 1;
            self.gens[i].store(dst.generation, Ordering::Release);
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.contention
            .commit_windows
            .fetch_add(1, Ordering::Relaxed);
        self.contention
            .commit_window
            .observe(window_start.elapsed().as_nanos() as u64);
        self.commit_seq
            .fetch_add(other.commit_seq.load(Ordering::Acquire), Ordering::AcqRel);
        Ok(())
    }

    /// Committed open-transaction state, sorted by id: the buffers a
    /// checkpoint must persist for restart to equal the uncrashed
    /// store, plus the transaction the committed stream prefix is
    /// inside.
    pub(crate) fn open_txn_state(&self) -> (Vec<(u64, Vec<LogEntry>)>, Option<u64>) {
        let meta = self.lock_meta();
        let mut txns: Vec<(u64, Vec<LogEntry>)> = meta
            .pending_txns
            .iter()
            .map(|(id, buf)| (*id, buf.clone()))
            .collect();
        txns.sort_unstable_by_key(|(id, _)| *id);
        (txns, meta.commit_txn)
    }

    /// Committed batch-replay state, for the checkpoint writer: the
    /// per-volume high-water marks sorted by volume, plus the open
    /// replay-skip region (if a crash interrupted one). Restart must
    /// restore both or a replayed group frame could apply twice.
    pub(crate) fn batch_state(&self) -> (Vec<(u32, u64)>, Option<u64>) {
        let meta = self.lock_meta();
        let mut hw: Vec<(u32, u64)> = meta.batch_hw.iter().map(|(v, s)| (*v, *s)).collect();
        hw.sort_unstable_by_key(|(v, _)| *v);
        (hw, meta.replay_skip)
    }

    /// Source-file replay slots, in slot order: `(path, committed
    /// mark)`, with an empty path marking a free slot. Preserving slot
    /// indices keeps a restored store's handles identical.
    pub(crate) fn source_state(&self) -> Vec<(String, u64)> {
        self.lock_meta()
            .source_files
            .iter()
            .map(|s| (s.path.clone(), s.committed_mark as u64))
            .collect()
    }

    /// Rebuilds a store from checkpointed parts: rehydrated shards,
    /// open-transaction buffers, source replay slots and the commit
    /// sequence. `shards.len()` must be the power-of-two count the
    /// segments were written with; it overrides `cfg.shards`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore(
        cfg: WaldoConfig,
        shards: Vec<Shard>,
        txns: Vec<(u64, Vec<LogEntry>)>,
        commit_txn: Option<u64>,
        sources: Vec<(String, u64)>,
        commit_seq: u64,
        batch_hw: Vec<(u32, u64)>,
        replay_skip: Option<u64>,
    ) -> Store {
        let n = shards.len();
        debug_assert!(n.is_power_of_two() && n <= 64);
        let mut store = Store::with_config(WaldoConfig { shards: n, ..cfg });
        store.gens = shards
            .iter()
            .map(|s| AtomicU64::new(s.generation))
            .collect();
        store.shards = shards.into_iter().map(RwLock::new).collect();
        store.commit_seq = AtomicU64::new(commit_seq);
        let meta = store.meta.get_mut().unwrap();
        meta.pending_txns = txns.into_iter().collect();
        meta.commit_txn = commit_txn;
        meta.batch_hw = batch_hw.into_iter().collect();
        meta.replay_skip = replay_skip;
        meta.free_sources = sources
            .iter()
            .enumerate()
            .filter(|(_, (path, _))| path.is_empty())
            .map(|(i, _)| i)
            .collect();
        meta.source_files = sources
            .into_iter()
            .map(|(path, mark)| SourceFile {
                path,
                committed_mark: mark as usize,
            })
            .collect();
        store
    }

    /// The durability frame of the most recent group commit.
    pub fn last_commit_frame(&self) -> Vec<u8> {
        self.lock_meta().commit_frame.clone()
    }

    /// Number of group commits performed over the store's lifetime.
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq.load(Ordering::Acquire)
    }

    /// Discards staged-but-uncommitted items — the state a crash would
    /// lose. Committed state (shards, open-transaction buffers, source
    /// marks) survives, exactly like a database that crashed between
    /// group commits.
    pub fn drop_staged(&self) {
        let meta = &mut *self.lock_meta();
        meta.staged.clear();
        meta.staged_entries = 0;
    }

    /// True if every entry of registered source `src` has committed,
    /// given the file held `total` entries.
    pub fn source_fully_committed(&self, src: usize, total: usize) -> bool {
        self.lock_meta().source_files[src].committed_mark >= total
    }

    /// Forgets replay state for `src` (call after unlinking the file;
    /// a future log reusing the same path starts fresh, and the slot
    /// is recycled so long-running daemons don't accumulate
    /// tombstones). Idempotent: forgetting an already-free slot is a
    /// no-op, so it can never be pushed onto the free list twice —
    /// a double free would alias two future logs onto one slot and
    /// corrupt their replay marks.
    pub fn forget_source(&self, src: usize) {
        let meta = &mut *self.lock_meta();
        if meta.source_files[src].path.is_empty() {
            return;
        }
        meta.source_files[src] = SourceFile {
            path: String::new(),
            committed_mark: 0,
        };
        meta.free_sources.push(src);
    }

    /// Transaction ids currently open (orphans if the stream ended).
    pub fn open_txns(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.lock_meta().pending_txns.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Drops an orphaned transaction's buffered records (the server
    /// Waldo's garbage collection of §6.1.2).
    pub fn discard_txn(&self, id: u64) -> usize {
        let meta = &mut *self.lock_meta();
        if meta.commit_txn == Some(id) {
            meta.commit_txn = None;
        }
        meta.pending_txns.remove(&id).map(|v| v.len()).unwrap_or(0)
    }

    // ---- queries ----------------------------------------------------------

    /// Number of objects known.
    pub fn object_count(&self) -> usize {
        self.read_consistent(|| {
            self.shards
                .iter()
                .map(|s| s.read().unwrap().objects.len())
                .sum()
        })
    }

    /// Approximate store footprint (summed over shards).
    pub fn size(&self) -> DbSize {
        self.read_consistent(|| {
            let mut total = DbSize::default();
            for s in &self.shards {
                let s = s.read().unwrap();
                total.db_bytes += s.size.db_bytes;
                total.index_bytes += s.size.index_bytes;
            }
            total
        })
    }

    /// The object entry for `p` (a snapshot — the store hands out
    /// owned entries, never borrows into a shard, so readers hold no
    /// lock after the call returns).
    pub fn object(&self, p: Pnode) -> Option<ObjectEntry> {
        self.with_home(p, |sh| sh.objects.get(&p).cloned())
    }

    /// Every known pnode (unordered). The snapshot is
    /// commit-atomic; the materialized vector is what lets callers
    /// iterate without holding shard locks.
    pub fn all_pnodes(&self) -> Vec<Pnode> {
        self.read_consistent(|| {
            self.shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .unwrap()
                        .objects
                        .keys()
                        .copied()
                        .collect::<Vec<_>>()
                })
                .collect()
        })
    }

    /// Objects that ever bore `name` — exact match, merged across
    /// shards in pnode order.
    pub fn find_by_name(&self, name: &str) -> Vec<Pnode> {
        self.read_consistent(|| {
            let mut out: Vec<Pnode> = self
                .shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .unwrap()
                        .name_index
                        .get(name)
                        .map(|ps| ps.iter().copied().collect::<Vec<_>>())
                        .unwrap_or_default()
                })
                .collect();
            out.sort_unstable();
            out
        })
    }

    /// Objects whose NAME ends with `suffix` (e.g. a file name without
    /// its directory).
    pub fn find_by_name_suffix(&self, suffix: &str) -> Vec<Pnode> {
        self.read_consistent(|| {
            let mut out: Vec<Pnode> = self
                .shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .unwrap()
                        .name_index
                        .iter()
                        .filter(|(n, _)| n.ends_with(suffix))
                        .flat_map(|(_, ps)| ps.iter().copied())
                        .collect::<Vec<_>>()
                })
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
    }

    /// Objects of TYPE `ty`, merged across shards in pnode order.
    pub fn find_by_type(&self, ty: &str) -> Vec<Pnode> {
        self.read_consistent(|| {
            let mut out: Vec<Pnode> = self
                .shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .unwrap()
                        .type_index
                        .get(ty)
                        .map(|ps| ps.iter().copied().collect::<Vec<_>>())
                        .unwrap_or_default()
                })
                .collect();
            out.sort_unstable();
            out
        })
    }

    /// Objects whose NAME starts with `prefix` — a range scan over
    /// each shard's ordered name index (no attribute reads), merged
    /// in pnode order. Serves PQL `name like 'prefix*'` pushdown.
    pub fn find_by_name_prefix(&self, prefix: &str) -> Vec<Pnode> {
        self.read_consistent(|| {
            let mut out: Vec<Pnode> = self
                .shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .unwrap()
                        .name_index
                        .range(prefix.to_string()..)
                        .take_while(|(k, _)| k.starts_with(prefix))
                        .flat_map(|(_, ps)| ps.iter().copied())
                        .collect::<Vec<_>>()
                })
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
    }

    /// Objects whose TYPE starts with `prefix` — range scan over the
    /// ordered type index.
    pub fn find_by_type_prefix(&self, prefix: &str) -> Vec<Pnode> {
        self.read_consistent(|| {
            let mut out: Vec<Pnode> = self
                .shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .unwrap()
                        .type_index
                        .range(prefix.to_string()..)
                        .take_while(|(k, _)| k.starts_with(prefix))
                        .flat_map(|(_, ps)| ps.iter().copied())
                        .collect::<Vec<_>>()
                })
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
    }

    /// Objects that ever bore string attribute `attr` (by its
    /// canonical record name, e.g. `PHASE`) with exactly `value` —
    /// the generalized attribute index, merged in pnode order.
    /// NAME and TYPE have their dedicated indexes
    /// ([`Store::find_by_name`], [`Store::find_by_type`]).
    pub fn find_by_attr(&self, attr: &str, value: &str) -> Vec<Pnode> {
        self.read_consistent(|| {
            let mut out: Vec<Pnode> = self
                .shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .unwrap()
                        .attr_index
                        .get(attr)
                        .and_then(|vals| vals.get(value))
                        .map(|ps| ps.iter().copied().collect::<Vec<_>>())
                        .unwrap_or_default()
                })
                .collect();
            out.sort_unstable();
            out
        })
    }

    /// Objects whose string attribute `attr` starts with `prefix`.
    pub fn find_by_attr_prefix(&self, attr: &str, prefix: &str) -> Vec<Pnode> {
        self.read_consistent(|| {
            let mut out: Vec<Pnode> = self
                .shards
                .iter()
                .flat_map(|s| {
                    s.read()
                        .unwrap()
                        .attr_index
                        .get(attr)
                        .map(|vals| {
                            vals.range(prefix.to_string()..)
                                .take_while(|(k, _)| k.starts_with(prefix))
                                .flat_map(|(_, ps)| ps.iter().copied())
                                .collect::<Vec<_>>()
                        })
                        .unwrap_or_default()
                })
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        })
    }

    /// Number of objects in the TYPE index under `ty` — summed set
    /// sizes across shards, O(shards). (Pnodes, not version-refs; the
    /// planner uses this as a pruning estimate.)
    pub fn type_index_size(&self, ty: &str) -> usize {
        self.read_consistent(|| {
            self.shards
                .iter()
                .filter_map(|s| s.read().unwrap().type_index.get(ty).map(|ps| ps.len()))
                .sum()
        })
    }

    /// True if `p` is in the TYPE index under `ty` — the class
    /// membership test index-backed lookups filter with.
    pub fn has_type(&self, p: Pnode, ty: &str) -> bool {
        self.with_home(p, |sh| {
            sh.type_index
                .get(ty)
                .map(|ps| ps.contains(&p))
                .unwrap_or(false)
        })
    }

    /// Direct ancestry edges of one version, including the implicit
    /// edge to the previous version of the same object.
    pub fn inputs_of(&self, r: ObjectRef) -> Vec<(Attribute, ObjectRef)> {
        self.with_home(r.pnode, |shard| {
            let mut out = Vec::new();
            if let Some(obj) = shard.objects.get(&r.pnode) {
                out.extend(obj.inputs(r.version).iter().cloned());
                if r.version.0 > 0 {
                    out.push((
                        Attribute::Other("version".into()),
                        ObjectRef::new(r.pnode, Version(r.version.0 - 1)),
                    ));
                }
            }
            out
        })
    }

    /// Direct descendants: version-refs that recorded `p` (at the
    /// given version) as an input.
    pub fn outputs_of(&self, r: ObjectRef) -> Vec<(Attribute, ObjectRef)> {
        self.with_home(r.pnode, |shard| {
            let mut out: Vec<(Attribute, ObjectRef)> = shard
                .reverse_index
                .get(&r.pnode)
                .map(|v| {
                    v.iter()
                        .filter(|(_, _, av)| *av == r.version)
                        .map(|(d, a, _)| (a.clone(), *d))
                        .collect()
                })
                .unwrap_or_default();
            // Implicit: the next version of the object descends from r.
            if let Some(obj) = shard.objects.get(&r.pnode) {
                if obj.versions.contains_key(&(r.version.0 + 1)) {
                    out.push((
                        Attribute::Other("version".into()),
                        ObjectRef::new(r.pnode, Version(r.version.0 + 1)),
                    ));
                }
            }
            out
        })
    }

    /// Labelled edge expansion with memoization — the PQL hot path.
    /// `outgoing` edges are ancestry inputs; incoming are descendants.
    /// The shard generation is recorded *before* computing, so a
    /// commit racing the computation leaves a cache entry that is
    /// already stale by its own snapshot — it can never serve.
    pub(crate) fn edges_cached<F>(
        &self,
        node: ObjectRef,
        label: &EdgeLabel,
        outgoing: bool,
        compute: F,
    ) -> Vec<ObjectRef>
    where
        F: FnOnce() -> Vec<ObjectRef>,
    {
        if self.cfg.ancestry_cache == 0 {
            return compute();
        }
        let key: EdgeKey = (node, label.clone(), outgoing);
        if let Some(hit) = self
            .lock_cache(&self.edge_cache)
            .lookup(&key, self.gen_of())
        {
            return hit;
        }
        let mut snapshot = ShardSnapshot::default();
        self.touch_snapshot(&mut snapshot, node.pnode);
        let out = compute();
        self.lock_cache(&self.edge_cache)
            .store(key, out.clone(), snapshot);
        out
    }

    /// Memoized labelled reachability closure — what PQL's `label*`
    /// and `label+` path steps call. `expand` yields one node's
    /// matching edges; the BFS records every shard it reads so the
    /// cached closure is invalidated only by commits that touched one
    /// of them.
    pub(crate) fn closure_cached<F>(
        &self,
        node: ObjectRef,
        label: &EdgeLabel,
        inverse: bool,
        expand: F,
    ) -> Vec<ObjectRef>
    where
        F: Fn(ObjectRef) -> Vec<ObjectRef>,
    {
        let cache_on = self.cfg.ancestry_cache > 0;
        let key: EdgeKey = (node, label.clone(), inverse);
        self.read_consistent(|| {
            if cache_on {
                if let Some(hit) = self
                    .lock_cache(&self.closure_cache)
                    .lookup(&key, self.gen_of())
                {
                    return hit;
                }
            }
            let mut snapshot = ShardSnapshot::default();
            let mut seen: HashSet<ObjectRef> = HashSet::new();
            seen.insert(node);
            let mut out: Vec<ObjectRef> = Vec::new();
            let mut frontier = vec![node];
            while let Some(n) = frontier.pop() {
                self.touch_snapshot(&mut snapshot, n.pnode);
                for m in expand(n) {
                    if seen.insert(m) {
                        out.push(m);
                        frontier.push(m);
                    }
                }
            }
            out.sort();
            if cache_on {
                self.lock_cache(&self.closure_cache)
                    .store(key.clone(), out.clone(), snapshot);
            }
            out
        })
    }

    /// Every descendant of `p` at any version — the transitive
    /// closure over outputs (the malware-spread query of §3.2).
    /// Memoized; see the module docs for invalidation.
    pub fn descendants(&self, p: Pnode) -> Vec<ObjectRef> {
        let key: AncestryKey = (p, 0, false);
        self.read_consistent(|| {
            if self.cfg.ancestry_cache > 0 {
                if let Some(hit) = self
                    .lock_cache(&self.ancestry_cache)
                    .lookup(&key, self.gen_of())
                {
                    return hit;
                }
            }
            let mut snapshot = ShardSnapshot::default();
            self.touch_snapshot(&mut snapshot, p);
            let mut seen: HashSet<ObjectRef> = HashSet::new();
            // Roots: every version of p recorded as a subject, plus
            // every version of p some other object referenced as an
            // ancestor (objects only ever seen as ancestors have no
            // entry).
            let mut roots: HashSet<ObjectRef> = self
                .object(p)
                .map(|o| {
                    o.versions
                        .keys()
                        .map(|v| ObjectRef::new(p, Version(*v)))
                        .collect()
                })
                .unwrap_or_default();
            for av in self.with_home(p, |sh| {
                sh.reverse_index
                    .get(&p)
                    .map(|refs| refs.iter().map(|(_, _, av)| *av).collect::<Vec<_>>())
                    .unwrap_or_default()
            }) {
                roots.insert(ObjectRef::new(p, av));
            }
            let mut work: Vec<ObjectRef> = roots.iter().copied().collect();
            while let Some(r) = work.pop() {
                self.touch_snapshot(&mut snapshot, r.pnode);
                for (_, d) in self.outputs_of(r) {
                    if seen.insert(d) {
                        work.push(d);
                    }
                }
            }
            let mut out: Vec<ObjectRef> = seen
                .iter()
                .copied()
                .filter(|r| !roots.contains(r))
                .collect();
            out.sort();
            if self.cfg.ancestry_cache > 0 {
                self.lock_cache(&self.ancestry_cache)
                    .store(key, out.clone(), snapshot);
            }
            out
        })
    }

    /// Every ancestor of `r` — transitive closure over inputs (the
    /// anomaly-tracing query of §3.1). Memoized; see the module docs
    /// for invalidation.
    pub fn ancestors(&self, r: ObjectRef) -> Vec<ObjectRef> {
        let key: AncestryKey = (r.pnode, r.version.0, true);
        self.read_consistent(|| {
            if self.cfg.ancestry_cache > 0 {
                if let Some(hit) = self
                    .lock_cache(&self.ancestry_cache)
                    .lookup(&key, self.gen_of())
                {
                    return hit;
                }
            }
            let mut snapshot = ShardSnapshot::default();
            let mut seen: HashSet<ObjectRef> = HashSet::new();
            let mut work = vec![r];
            while let Some(x) = work.pop() {
                self.touch_snapshot(&mut snapshot, x.pnode);
                for (_, a) in self.inputs_of(x) {
                    if seen.insert(a) {
                        work.push(a);
                    }
                }
            }
            let mut out: Vec<ObjectRef> = seen.iter().copied().collect();
            out.sort();
            if self.cfg.ancestry_cache > 0 {
                self.lock_cache(&self.ancestry_cache)
                    .store(key, out.clone(), snapshot);
            }
            out
        })
    }

    fn touch_snapshot(&self, snapshot: &mut ShardSnapshot, p: Pnode) {
        let i = self.shard_of(p);
        snapshot.touch(i, self.gens[i].load(Ordering::Acquire));
    }
}

/// The subject pnode an entry's effects are homed on.
fn subject_of(entry: &LogEntry) -> Option<Pnode> {
    match entry {
        LogEntry::Prov { subject, .. } | LogEntry::DataWrite { subject, .. } => Some(subject.pnode),
        LogEntry::TxnBegin { .. } | LogEntry::TxnEnd { .. } => None,
    }
}

/// The splitmix64 finalizer — the one stable mixing function behind
/// both routing layers (pnode→shard here, volume→member in
/// [`crate::cluster`]). Deliberately not `std`'s `RandomState`, which
/// would give every process its own routing.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stable 64-bit mix of a pnode (splitmix64 over volume and number).
fn mix_pnode(p: Pnode) -> u64 {
    splitmix64(p.number ^ (u64::from(p.volume.0) << 32))
}
