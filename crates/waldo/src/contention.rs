//! Lock-contention profiling for the sharded store.
//!
//! PR 8's threaded cluster runtime made [`crate::store::Store`]
//! `Sync` behind a meta-mutex → per-shard-`RwLock` → cache-mutex
//! hierarchy plus an epoch seqlock — and made every wait on those
//! locks invisible. This module gives each level of the hierarchy a
//! lock-free wait histogram and the seqlock its retry/fallback
//! counters, so "readers stalled behind a commit storm" is a number
//! in the registry instead of a guess.
//!
//! Everything here is **wall-clock** (`std::time::Instant`), which is
//! the whole point — virtual time never advances while a thread sits
//! on a mutex. That is safe for the determinism contract because none
//! of it feeds canonical store encodings or determinism-asserted
//! outputs: the counters ride the deterministic
//! [`ContentionStats`] [`MetricSource`], while the wall-clock
//! histograms are exported only through the opt-in
//! [`crate::store::Store::export_contention`] used by observability
//! binaries (`provtop`), never by the default metric emission tests
//! compare.

use std::sync::atomic::{AtomicU64, Ordering};

use provscope::{Histogram, MetricSource};

/// A lock-free mirror of [`provscope::Histogram`]: the same 65 log₂
/// buckets, maintained with relaxed atomics so hot paths can observe
/// waits without taking yet another lock to profile the first one.
pub struct AtomicHist {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHist {
    fn default() -> AtomicHist {
        AtomicHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicHist {
    /// Records one observation (relaxed; tearing across fields only
    /// skews a concurrent snapshot by in-flight observations).
    pub fn observe(&self, v: u64) {
        let i = (64 - v.leading_zeros()) as usize;
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Materializes the current contents as a plain histogram.
    pub fn snapshot(&self) -> Histogram {
        let mut b = [0u64; 65];
        for (dst, src) in b.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        Histogram::from_parts(
            b,
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
        )
    }
}

/// Per-store contention instrumentation, owned by the store and
/// updated lock-free from every path that waits.
#[derive(Default)]
pub struct Contention {
    /// Multi-shard consistent reads attempted.
    pub epoch_reads: AtomicU64,
    /// Optimistic attempts retried (odd epoch seen, or the epoch
    /// moved during the read).
    pub epoch_retries: AtomicU64,
    /// Reads that exhausted their retries and fell back to blocking
    /// new commits via the meta mutex.
    pub epoch_fallbacks: AtomicU64,
    /// Commit (and merge) windows — times the epoch went odd.
    pub commit_windows: AtomicU64,
    /// Wall-clock wait to acquire the meta mutex (lock level 1).
    pub meta_wait: AtomicHist,
    /// Wall-clock wait to acquire per-shard write locks (level 2).
    pub shard_wait: AtomicHist,
    /// Wall-clock wait to acquire the query-cache mutexes (level 3).
    pub cache_wait: AtomicHist,
    /// Wall-clock duration of the odd-epoch commit window — how long
    /// concurrent snapshot readers were forced to retry.
    pub commit_window: AtomicHist,
}

impl Contention {
    /// A deterministic counter snapshot.
    pub fn stats(&self) -> ContentionStats {
        ContentionStats {
            epoch_reads: self.epoch_reads.load(Ordering::Relaxed),
            epoch_retries: self.epoch_retries.load(Ordering::Relaxed),
            epoch_fallbacks: self.epoch_fallbacks.load(Ordering::Relaxed),
            commit_windows: self.commit_windows.load(Ordering::Relaxed),
        }
    }
}

/// Counter snapshot of [`Contention`] — the part that is a pure
/// function of the workload's synchronization schedule (counts, not
/// durations), emitted like every other per-layer stats struct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContentionStats {
    /// Multi-shard consistent reads attempted.
    pub epoch_reads: u64,
    /// Optimistic read attempts retried.
    pub epoch_retries: u64,
    /// Reads that fell back to the meta mutex.
    pub epoch_fallbacks: u64,
    /// Commit/merge windows (times the epoch went odd).
    pub commit_windows: u64,
}

impl MetricSource for ContentionStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("epoch_reads", self.epoch_reads);
        out("epoch_retries", self.epoch_retries);
        out("epoch_fallbacks", self.epoch_fallbacks);
        out("commit_windows", self.commit_windows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_hist_mirrors_the_plain_histogram() {
        let a = AtomicHist::default();
        let mut h = Histogram::default();
        for v in [0u64, 1, 7, 1024, 1 << 40] {
            a.observe(v);
            h.observe(v);
        }
        assert_eq!(a.snapshot(), h);
        assert_eq!(a.snapshot().quantile(0.5), h.quantile(0.5));
    }

    #[test]
    fn stats_snapshot_and_metric_source_agree() {
        let c = Contention::default();
        c.epoch_reads.fetch_add(3, Ordering::Relaxed);
        c.epoch_retries.fetch_add(2, Ordering::Relaxed);
        let st = c.stats();
        assert_eq!(st.epoch_reads, 3);
        let mut reg = provscope::Registry::new();
        reg.absorb("waldo.contention.", &st);
        assert_eq!(reg.counter("waldo.contention.epoch_reads"), 3);
        assert_eq!(reg.counter("waldo.contention.epoch_retries"), 2);
        assert_eq!(reg.counter("waldo.contention.epoch_fallbacks"), 0);
    }
}
