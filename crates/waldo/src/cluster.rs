//! The multi-daemon fan-in ingest tier: N Waldo daemons, one graph.
//!
//! The paper's layering argument makes Waldo *just another consumer*
//! of the DPAPI stream — so nothing stops several Waldo daemons from
//! consuming distinct volumes concurrently. This module turns that
//! observation into a subsystem:
//!
//! * **routing** — [`route_volume`] deterministically assigns every
//!   [`VolumeId`] to one of N members (a stable splitmix hash, like
//!   the store's pnode→shard routing): the same volume always lands
//!   on the same member, across polls, restarts and processes.
//!   [`Cluster::routing_table`] materializes the assignment for a
//!   concrete volume set;
//! * **fan-in** — each member ingests its routed volumes' rotated
//!   logs into its own [`Store`] (with its own durable home,
//!   checkpoint policy and WAL — the whole PR 2 machinery, per
//!   member). PR 4's volume-salted batch ids
//!   ([`lasagna::batch_txn_id`]) make the member stores alias-free,
//!   so [`Cluster::merged_store`] consolidates them with
//!   [`Store::merge`] into one graph byte-equivalent (under
//!   [`Store::segment_images`]'s normalization) to a single daemon
//!   that ingested every volume itself;
//! * **scatter-gather reads** — [`ClusterGraphSource`] implements
//!   [`pql::GraphSource`] directly over the member stores, so
//!   [`Cluster::query`] runs the planned, index-backed PQL pipeline
//!   *without* materializing a merged store: subject-side state
//!   (attributes, ancestry inputs) routes to the owning member,
//!   reverse edges and index lookups scatter to every member and
//!   merge, and forward closures reuse each member's memoized
//!   closure cache, re-expanding only at cross-volume hops.
//!
//! What stays per member: replay marks, WAL, checkpoints, retained
//! logs. What is cluster-wide: routing, the merged/scattered read
//! view, and the rolled-up counters ([`IngestStats`]/
//! [`crate::QueryOps`] implement `AddAssign`/`Sum` for exactly this).

use std::collections::{BTreeMap, HashSet};

use dpapi::{ObjectRef, Value, VolumeId};
use pql::{AttrLookup, AttrPredicate, EdgeLabel, GraphSource};
use sim_os::fs::FsError;
use sim_os::proc::MountId;
use sim_os::syscall::Kernel;

use crate::daemon::{LogImage, QueryOps, Waldo};
use crate::db::IngestStats;
use crate::store::{MergeError, Store};

/// How a [`Cluster`] executes an ingest sweep.
///
/// Both runtimes produce **byte-identical member stores** for the
/// same sweep: the threaded runtime hands each member exactly the log
/// images the sequential runtime would have drained, in the same
/// order, and per-member ingest is deterministic. What differs is
/// wall-clock time (members overlap on real cores) and durability
/// *timing* (WAL persists, log retirement and checkpoints move to a
/// per-member flush at the end of the sweep — each commit frame
/// carries complete replay marks, so the final frame supersedes the
/// skipped intermediates).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClusterRuntime {
    /// Members drain their volumes one after another on the calling
    /// thread — the virtual-clock reference mode, where fleet time is
    /// modeled as `max(member time)`.
    #[default]
    Sequential,
    /// Members ingest on OS threads (one scoped thread per member
    /// with work): the coordinator keeps the single-threaded kernel,
    /// reads rotated logs up front, and the members' kernel-free
    /// parse + stage + commit work overlaps on real cores.
    Threaded,
}

/// One member's share of a threaded sweep, wall-clock attributed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemberTiming {
    /// Member index.
    pub member: usize,
    /// Volumes the member drained this sweep.
    pub volumes: usize,
    /// Log images the member ingested this sweep.
    pub images: usize,
    /// Wall-clock nanoseconds the member's ingest thread ran (parse +
    /// stage + commit; excludes the coordinator's kernel reads and
    /// the durability flush).
    pub wall_ns: u64,
}

/// One member's failure during a cluster-wide sweep: which member
/// broke (so an operator can repair exactly that durable home) and
/// the underlying [`FsError`] — the same shape as the core crate's
/// `ClusterRestartError`, for the same reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterMemberError {
    /// Index of the member that failed.
    pub member: usize,
    /// What went wrong on that member's durable home.
    pub source: FsError,
}

impl std::fmt::Display for ClusterMemberError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "member {}: {}", self.member, self.source)
    }
}

impl std::error::Error for ClusterMemberError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Why [`Cluster::checkpoint_all`] could not publish everywhere.
///
/// Unlike a first-error-wins `?`, the sweep visits *every* member, so
/// the error carries the complete failure set plus how many members
/// still published — one bad durable home does not hide the others'
/// outcomes, and the operator gets the full repair list in one pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterCheckpointError {
    /// Members that published a checkpoint despite the failures.
    pub published: usize,
    /// Every member that failed, in member-index order. Never empty.
    pub failures: Vec<ClusterMemberError>,
}

impl std::fmt::Display for ClusterCheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster checkpoint failed on {} member(s) ({} published): ",
            self.failures.len(),
            self.published
        )?;
        for (i, e) in self.failures.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ClusterCheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.failures
            .first()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

/// One volume's share of a [`Cluster::poll_volumes_report`] sweep:
/// where it routed, what it ingested, and whether its member's WAL
/// complained while it was being drained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VolumePoll {
    /// Member index the volume routed to.
    pub member: usize,
    /// The volume that was polled.
    pub volume: VolumeId,
    /// Ingest counters for this volume's drain alone.
    pub stats: IngestStats,
    /// WAL persist failures on the routed member *during this poll*
    /// (delta of [`Waldo::wal_errors`]) — ingest itself never fails,
    /// so this is the per-volume durability signal.
    pub wal_errors: u64,
}

/// The per-volume breakdown of a cluster ingest sweep.
///
/// [`Cluster::poll_volumes`] rolls everything into one
/// [`IngestStats`]; this report keeps the member/volume attribution
/// so a sweep that went wrong says *where* — the ingest-side
/// counterpart of [`ClusterCheckpointError`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClusterPollReport {
    /// The rolled-up stats, identical to what
    /// [`Cluster::poll_volumes`] returns for the same sweep.
    pub total: IngestStats,
    /// One entry per polled volume, in the caller's volume order.
    pub per_volume: Vec<VolumePoll>,
    /// Per-member wall-clock attribution — populated only by the
    /// [`ClusterRuntime::Threaded`] runtime (the sequential runtime
    /// shares one thread, so per-member wall time is not meaningful).
    pub member_timings: Vec<MemberTiming>,
    /// The health-rule verdicts for the fleet's metric snapshot taken
    /// right after this sweep (see [`Cluster::set_health_rules`]).
    pub health: provscope::HealthReport,
}

impl ClusterPollReport {
    /// The polls that hit trouble: a WAL persist failure, or a log
    /// tail cut short by truncation or corruption. Fleet-level health
    /// verdicts (rules over the metric snapshot, not tied to one
    /// volume) are in [`ClusterPollReport::health`].
    pub fn issues(&self) -> Vec<&VolumePoll> {
        self.per_volume
            .iter()
            .filter(|p| {
                p.wal_errors > 0 || p.stats.tails_truncated > 0 || p.stats.tails_corrupt > 0
            })
            .collect()
    }

    /// True when the sweep was clean end to end: no per-volume issue
    /// and no health-rule violation.
    pub fn healthy(&self) -> bool {
        self.issues().is_empty() && self.health.healthy()
    }
}

/// The member a volume's logs are routed to, out of `members`.
///
/// Stable splitmix64 over the volume id (deliberately not `std`'s
/// `RandomState`, which would give every process its own routing):
/// the same `(volume, members)` pair maps to the same member forever,
/// which is what lets [`Cluster`] restart members independently and
/// still find each volume's replay state on the daemon that owns it.
/// Changing the member count re-routes volumes — a cluster must be
/// restarted at the size it ran at.
pub fn route_volume(volume: VolumeId, members: usize) -> usize {
    assert!(members > 0, "a cluster has at least one member");
    (crate::store::splitmix64(u64::from(volume.0)) % members as u64) as usize
}

/// A fleet of Waldo daemons consuming distinct volumes concurrently,
/// presented as one queryable provenance graph.
pub struct Cluster {
    members: Vec<Waldo>,
    /// Cumulative counters for queries served through
    /// [`Cluster::query`] (scatter-gather, not attributable to any
    /// single member).
    query_ops: QueryOps,
    scope: provscope::Scope,
    runtime: ClusterRuntime,
    /// Rules every [`Cluster::poll_volumes_report`] sweep evaluates
    /// against the fleet's metric snapshot.
    health_rules: Vec<provscope::HealthRule>,
    /// Per-member wall-clock ingest-thread time, accumulated across
    /// threaded sweeps (`member<i>.poll_wall_ns` in the registry).
    member_wall: Vec<provscope::Histogram>,
}

impl Cluster {
    /// Assembles a cluster from already-spawned members (see
    /// `System::spawn_cluster` in the core crate for the usual
    /// wiring). Panics on an empty member list.
    pub fn new(members: Vec<Waldo>) -> Cluster {
        assert!(!members.is_empty(), "a cluster has at least one member");
        let member_wall = members
            .iter()
            .map(|_| provscope::Histogram::default())
            .collect();
        Cluster {
            members,
            query_ops: QueryOps::default(),
            scope: provscope::Scope::default(),
            runtime: ClusterRuntime::default(),
            health_rules: provscope::health::standard_rules(),
            member_wall,
        }
    }

    /// Replaces the health rules every
    /// [`Cluster::poll_volumes_report`] sweep evaluates. Defaults to
    /// [`provscope::health::standard_rules`].
    pub fn set_health_rules(&mut self, rules: Vec<provscope::HealthRule>) {
        self.health_rules = rules;
    }

    /// The active health rules.
    pub fn health_rules(&self) -> &[provscope::HealthRule] {
        &self.health_rules
    }

    /// Selects the ingest runtime. Both runtimes produce
    /// byte-identical member stores (see [`ClusterRuntime`]); threaded
    /// mode overlaps members' ingest on real cores.
    pub fn set_runtime(&mut self, runtime: ClusterRuntime) {
        self.runtime = runtime;
    }

    /// The active ingest runtime.
    pub fn runtime(&self) -> ClusterRuntime {
        self.runtime
    }

    /// Attaches a tracing scope to the cluster *and every member*, so
    /// one scope sees the whole fleet's ingest and query spans on the
    /// shared virtual clock.
    pub fn set_scope(&mut self, scope: provscope::Scope) {
        for m in &mut self.members {
            m.set_scope(scope.clone());
        }
        self.scope = scope;
    }

    /// Number of member daemons.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false — [`Cluster::new`] rejects empty member lists.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member daemons, in member-index order.
    pub fn members(&self) -> &[Waldo] {
        &self.members
    }

    /// One member daemon.
    pub fn member(&self, i: usize) -> &Waldo {
        &self.members[i]
    }

    /// One member daemon, mutably (e.g. to drive a manual checkpoint).
    pub fn member_mut(&mut self, i: usize) -> &mut Waldo {
        &mut self.members[i]
    }

    /// Disassembles the cluster back into its members.
    pub fn into_members(self) -> Vec<Waldo> {
        self.members
    }

    /// The member index `volume` routes to ([`route_volume`] at this
    /// cluster's size).
    pub fn route(&self, volume: VolumeId) -> usize {
        route_volume(volume, self.members.len())
    }

    /// Materializes the volume→member routing table for a concrete
    /// volume set — for operators and the routing-stability tests;
    /// ingest itself routes each volume on the fly.
    pub fn routing_table(
        &self,
        volumes: impl IntoIterator<Item = VolumeId>,
    ) -> BTreeMap<VolumeId, usize> {
        volumes.into_iter().map(|v| (v, self.route(v))).collect()
    }

    /// Polls one volume for rotated logs on the member it routes to.
    pub fn poll_volume(
        &mut self,
        kernel: &mut Kernel,
        mount: MountId,
        mount_path: &str,
        volume: VolumeId,
    ) -> IngestStats {
        let m = self.route(volume);
        self.members[m].poll_volume(kernel, mount, mount_path)
    }

    /// Polls every volume on its routed member — the cluster's ingest
    /// sweep, drop-in for a single daemon polling the same list — and
    /// returns the rolled-up stats. See
    /// [`Cluster::poll_volumes_report`] to keep the per-volume
    /// member attribution instead of the roll-up alone.
    pub fn poll_volumes(
        &mut self,
        kernel: &mut Kernel,
        volumes: &[(String, MountId, VolumeId)],
    ) -> IngestStats {
        self.poll_volumes_report(kernel, volumes).total
    }

    /// [`Cluster::poll_volumes`], keeping the per-volume breakdown:
    /// which member each volume drained on, its individual
    /// [`IngestStats`], and whether that member's WAL failed while
    /// draining it — so a sweep that went wrong says *where* instead
    /// of dissolving the signal into the roll-up.
    pub fn poll_volumes_report(
        &mut self,
        kernel: &mut Kernel,
        volumes: &[(String, MountId, VolumeId)],
    ) -> ClusterPollReport {
        let mut report = match self.runtime {
            ClusterRuntime::Sequential => self.poll_volumes_sequential(kernel, volumes),
            ClusterRuntime::Threaded => self.poll_volumes_threaded(kernel, volumes),
        };
        // Evaluate the health rules over the post-sweep snapshot: the
        // fleet's counters plus the tracing scope's flight-recorder
        // gauges (spans shed, trees evicted).
        let mut reg = provscope::Registry::new();
        self.record_metrics(&mut reg);
        self.scope.export_metrics(&mut reg);
        report.health = provscope::health::evaluate(&self.health_rules, &reg);
        report
    }

    fn poll_volumes_sequential(
        &mut self,
        kernel: &mut Kernel,
        volumes: &[(String, MountId, VolumeId)],
    ) -> ClusterPollReport {
        let mut report = ClusterPollReport::default();
        for (path, mount, volume) in volumes {
            let member = self.route(*volume);
            let wal_before = self.members[member].wal_errors();
            let stats = self.members[member].poll_volume(kernel, *mount, path);
            report.total += stats;
            report.per_volume.push(VolumePoll {
                member,
                volume: *volume,
                stats,
                wal_errors: self.members[member].wal_errors() - wal_before,
            });
        }
        report
    }

    /// The multi-core sweep. Three phases:
    ///
    /// 1. **Collect** (coordinator): the kernel is single-threaded, so
    ///    the coordinator takes every volume's rotated-log queue and
    ///    reads the log bytes, in the caller's volume order — exactly
    ///    the files, in exactly the order, the sequential runtime
    ///    would drain.
    /// 2. **Ingest** (parallel): one scoped OS thread per member with
    ///    work runs the kernel-free [`Waldo::ingest_images_offline`]
    ///    over that member's volumes (still in caller order).
    ///    Members share nothing but the `Sync` stores' internals, so
    ///    the threads are data-race-free by construction, and each
    ///    member's ingest is deterministic — the merged store is
    ///    byte-equal to the sequential sweep's.
    /// 3. **Flush** (coordinator): per member, persist the final
    ///    commit frame, retire fully committed logs, run the
    ///    checkpoint policy ([`Waldo::flush_durable`]).
    ///
    /// Per-volume stats keep their sequential meaning; flush-side
    /// effects (WAL errors, checkpoints) are attributed to the
    /// member's *last* polled volume, since the deferred flush covers
    /// the whole sweep.
    fn poll_volumes_threaded(
        &mut self,
        kernel: &mut Kernel,
        volumes: &[(String, MountId, VolumeId)],
    ) -> ClusterPollReport {
        let n = self.members.len();
        // Phase 1: collect, in caller order.
        let mut assignments: Vec<Vec<(usize, VolumeId, Vec<LogImage>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for (vi, (path, mount, volume)) in volumes.iter().enumerate() {
            let member = self.route(*volume);
            let rotated = match kernel.dpapi_at(*mount) {
                Some(d) => d.take_log_rotations(),
                None => Vec::new(),
            };
            let pid = self.members[member].pid();
            let images: Vec<LogImage> = rotated
                .into_iter()
                .filter_map(|rel| {
                    let abs = if path == "/" {
                        format!("/{rel}")
                    } else {
                        format!("{path}/{rel}")
                    };
                    kernel
                        .read_file(pid, &abs)
                        .ok()
                        .map(|bytes| LogImage { path: abs, bytes })
                })
                .collect();
            assignments[member].push((vi, *volume, images));
        }
        // Phase 2: parallel kernel-free ingest, one thread per member.
        let mut per_volume: Vec<Option<VolumePoll>> = volumes.iter().map(|_| None).collect();
        let mut member_timings: Vec<MemberTiming> = Vec::new();
        let mut flush_members: Vec<usize> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .members
                .iter_mut()
                .zip(assignments)
                .enumerate()
                .filter(|(_, (_, assigned))| !assigned.is_empty())
                .map(|(mi, (member, assigned))| {
                    scope.spawn(move || {
                        let started = std::time::Instant::now();
                        let mut polls = Vec::with_capacity(assigned.len());
                        let mut images_total = 0usize;
                        for (vi, volume, images) in assigned {
                            images_total += images.len();
                            let stats = member.ingest_images_offline(&images);
                            polls.push((vi, volume, stats));
                        }
                        let wall_ns = started.elapsed().as_nanos() as u64;
                        (mi, polls, images_total, wall_ns)
                    })
                })
                .collect();
            for handle in handles {
                let (mi, polls, images, wall_ns) = handle.join().expect("member ingest panicked");
                member_timings.push(MemberTiming {
                    member: mi,
                    volumes: polls.len(),
                    images,
                    wall_ns,
                });
                for (vi, volume, stats) in polls {
                    per_volume[vi] = Some(VolumePoll {
                        member: mi,
                        volume,
                        stats,
                        wal_errors: 0,
                    });
                }
                flush_members.push(mi);
            }
        });
        // Phase 3: per-member durability flush on the coordinator.
        flush_members.sort_unstable();
        for mi in flush_members {
            let wal_before = self.members[mi].wal_errors();
            let flush_stats = self.members[mi].flush_durable(kernel);
            let wal_delta = self.members[mi].wal_errors() - wal_before;
            // Attribute the flush to the member's last polled volume.
            if let Some(poll) = per_volume
                .iter_mut()
                .rev()
                .flatten()
                .find(|p| p.member == mi)
            {
                poll.stats += flush_stats;
                poll.wal_errors += wal_delta;
            }
        }
        let mut report = ClusterPollReport {
            member_timings,
            ..ClusterPollReport::default()
        };
        for poll in per_volume.into_iter().flatten() {
            report.total += poll.stats;
            report.per_volume.push(poll);
        }
        report.member_timings.sort_unstable_by_key(|t| t.member);
        for t in &report.member_timings {
            self.member_wall[t.member].observe(t.wall_ns);
        }
        report
    }

    /// Publishes a checkpoint on every member that has something new
    /// (each against its own durable home — the PR 2 machinery, per
    /// member). Returns how many members published.
    ///
    /// The sweep visits **every** member even when one fails: a bad
    /// durable home on member 2 must not leave members 3..N
    /// unpublished (their checkpoints are independent), and the
    /// [`ClusterCheckpointError`] carries the complete
    /// member-attributed failure list rather than the first error
    /// alone.
    pub fn checkpoint_all(&mut self, kernel: &mut Kernel) -> Result<usize, ClusterCheckpointError> {
        let mut published = 0;
        let mut failures = Vec::new();
        for (member, m) in self.members.iter_mut().enumerate() {
            match m.checkpoint(kernel) {
                Ok(true) => published += 1,
                Ok(false) => {}
                Err(source) => failures.push(ClusterMemberError { member, source }),
            }
        }
        if failures.is_empty() {
            Ok(published)
        } else {
            Err(ClusterCheckpointError {
                published,
                failures,
            })
        }
    }

    /// Consolidates the member stores into one store via
    /// [`Store::merge`] — the materialized fan-in path, for consumers
    /// that want a self-contained graph (exports, handoff to a single
    /// daemon). Queries that only need answers should prefer
    /// [`Cluster::query`], which scatter-gathers without the copy.
    /// Panics if the members are not mergeable (see
    /// [`Cluster::try_merged_store`] for the error-returning form).
    pub fn merged_store(&self) -> Store {
        self.try_merged_store()
            .expect("cluster members share a config and close their streams before a merge")
    }

    /// [`Cluster::merged_store`], surfacing merge preconditions as a
    /// typed [`MergeError`] instead of panicking — for callers (the
    /// fault harness, operators with forged streams) for whom an
    /// unmergeable member is an outcome to classify, not a bug.
    pub fn try_merged_store(&self) -> Result<Store, MergeError> {
        let merged = Store::with_config(self.members[0].db.config());
        for m in &self.members {
            merged.merge(&m.db)?;
        }
        Ok(merged)
    }

    /// The member stores as one scatter-gather [`pql::GraphSource`].
    pub fn graph(&self) -> ClusterGraphSource<'_> {
        ClusterGraphSource::new(self.members.iter().map(|m| &m.db).collect())
    }

    /// Serves one PQL query over the whole cluster through the
    /// planned, index-backed pipeline, scatter-gathering reads across
    /// members instead of materializing a merged store. Planner
    /// counters accumulate into [`Cluster::query_ops`].
    pub fn query(&mut self, text: &str) -> Result<pql::QueryOutput, pql::PqlError> {
        let span = self.scope.open("waldo", "query");
        let out = pql::query_traced(text, &self.graph(), &self.scope);
        self.scope.close(span);
        let out = out?;
        self.query_ops.queries += 1;
        self.query_ops.planner += out.stats;
        Ok(out)
    }

    /// Cumulative scatter-gather query counters for this cluster's
    /// lifetime. Per-member counters (for queries sent directly to a
    /// member) roll up separately: `cluster.members().iter().map(|m|
    /// m.query_ops()).sum()`.
    pub fn query_ops(&self) -> QueryOps {
        self.query_ops
    }

    /// Records the fleet's counters into `reg`: the scatter-gather
    /// query counters under `cluster.query.` and every member's
    /// daemon counters under `member<i>.` — the per-member labels
    /// that make one registry legible for an N-daemon tier.
    pub fn record_metrics(&self, reg: &mut provscope::Registry) {
        reg.absorb("cluster.query.", &self.query_ops);
        for (i, m) in self.members.iter().enumerate() {
            reg.absorb(&format!("member{i}."), m);
        }
        // Wall-clock ingest-thread time per member — only once a
        // threaded sweep has run, so sequential (virtual-time) runs
        // keep a wall-clock-free registry.
        for (i, h) in self.member_wall.iter().enumerate() {
            if h.count() > 0 {
                reg.absorb_histogram(&format!("member{i}.poll_wall_ns"), h);
            }
        }
    }
}

/// Ingests pre-read log images on every member concurrently — one
/// scoped OS thread per member with work — and returns per-member
/// stats, in member order. This is the bare parallel-ingest kernel of
/// [`ClusterRuntime::Threaded`] without the kernel-bound collect and
/// flush phases, for harnesses (the fault-injection twin runner) that
/// already hold the log bytes. `work[i]` is member `i`'s image list;
/// per-member ingest is deterministic, so the members' stores are
/// byte-equal to a sequential run of the same per-member lists.
pub fn ingest_images_threaded(members: &mut [Waldo], work: Vec<Vec<LogImage>>) -> Vec<IngestStats> {
    assert_eq!(
        members.len(),
        work.len(),
        "one image list per cluster member"
    );
    let mut out: Vec<IngestStats> = members.iter().map(|_| IngestStats::default()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = members
            .iter_mut()
            .zip(work)
            .enumerate()
            .filter(|(_, (_, images))| !images.is_empty())
            .map(|(i, (member, images))| {
                scope.spawn(move || (i, member.ingest_images_offline(&images)))
            })
            .collect();
        for handle in handles {
            let (i, stats) = handle.join().expect("member ingest panicked");
            out[i] = stats;
        }
    });
    out
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("members", &self.members.len())
            .field(
                "objects",
                &self
                    .members
                    .iter()
                    .map(|m| m.db.object_count())
                    .sum::<usize>(),
            )
            .finish()
    }
}

/// N member stores presented as one [`pql::GraphSource`] — the second
/// production graph source (after [`Store`] itself), and the read
/// side of the fan-in tier.
///
/// Routing mirrors where ingest put the data:
///
/// * *subject-side* state — attributes, ancestry inputs (out-edges) —
///   lives wholly in the member the subject's volume routes to, so
///   [`GraphSource::attr`] and [`GraphSource::out_edges`] are single
///   point lookups;
/// * *reverse* edges land in the shard of the **ancestor's** pnode in
///   the member that ingested the *descendant's* volume, so one
///   node's in-edges may be scattered across every member:
///   [`GraphSource::in_edges`] gathers and sorts them (each concrete
///   edge originates from exactly one descendant's volume, so the
///   union has no cross-member duplicates to collapse);
/// * class scans and index lookups scatter to every member and merge
///   in sorted order — members hold disjoint pnode sets, so a merge
///   is a sort, and the result honors the `class_members` sorted
///   contract and matches a single merged store's answer row for row;
/// * forward closures run member-at-a-time: a member's own memoized
///   [`GraphSource::closure`] answers everything reachable within its
///   volumes, and only nodes homed on *other* members re-expand there
///   — so the cross-member BFS pays one member-closure call per
///   volume hop instead of one scatter per node. Inverse closures
///   fall back to a per-node BFS over the scattered in-edges, which
///   no single member can answer alone.
pub struct ClusterGraphSource<'a> {
    stores: Vec<&'a Store>,
}

impl<'a> ClusterGraphSource<'a> {
    /// Wraps member stores in member-index order (routing depends on
    /// the order matching the ingest cluster's). Panics if empty.
    pub fn new(stores: Vec<&'a Store>) -> ClusterGraphSource<'a> {
        assert!(!stores.is_empty(), "a cluster has at least one member");
        ClusterGraphSource { stores }
    }

    /// The member store `volume`'s subject-side state lives in.
    fn routed(&self, volume: VolumeId) -> &'a Store {
        self.stores[route_volume(volume, self.stores.len())]
    }
}

impl GraphSource for ClusterGraphSource<'_> {
    fn class_members(&self, class: &str) -> Vec<ObjectRef> {
        let mut out: Vec<ObjectRef> = self
            .stores
            .iter()
            .flat_map(|s| s.class_members(class))
            .collect();
        out.sort();
        out
    }

    fn attr(&self, node: ObjectRef, name: &str) -> Option<Value> {
        self.routed(node.pnode.volume).attr(node, name)
    }

    fn out_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
        self.routed(node.pnode.volume).out_edges(node, label)
    }

    fn in_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
        let mut out: Vec<ObjectRef> = self
            .stores
            .iter()
            .flat_map(|s| s.in_edges(node, label))
            .collect();
        // Merged arrival order is meaningless across members; sort so
        // the scatter is deterministic — at every fleet size,
        // including 1, so resizing a cluster never reorders rows. (A
        // single `Store` returns arrival order, which is likewise
        // unspecified to queries; single-hop inverse steps therefore
        // match the single-daemon reference as row *sets*, while
        // sorted-producing steps — closures, root bindings — match
        // row for row.) Genuine duplicate edges (one descendant
        // recording the same input twice) are preserved, exactly as a
        // single store preserves them.
        out.sort();
        out
    }

    fn closure(&self, node: ObjectRef, label: &EdgeLabel, inverse: bool) -> Vec<ObjectRef> {
        if self.stores.len() == 1 {
            return self.stores[0].closure(node, label, inverse);
        }
        if inverse {
            // Descendant edges are scattered: no member alone can
            // expand even one hop completely, so BFS per node over the
            // gathered in-edges.
            let mut seen: HashSet<ObjectRef> = HashSet::new();
            seen.insert(node);
            let mut out: Vec<ObjectRef> = Vec::new();
            let mut frontier = vec![node];
            while let Some(n) = frontier.pop() {
                for m in self.in_edges(n, label) {
                    if seen.insert(m) {
                        out.push(m);
                        frontier.push(m);
                    }
                }
            }
            out.sort();
            return out;
        }
        // Forward: a member's memoized closure is complete for every
        // node homed on it (ancestry inputs are subject-side); only
        // nodes homed elsewhere — cross-volume references — truncate
        // and must re-expand on their own member.
        let mut seen: HashSet<ObjectRef> = HashSet::new();
        seen.insert(node);
        let mut out: Vec<ObjectRef> = Vec::new();
        let mut frontier = vec![node];
        while let Some(n) = frontier.pop() {
            let home = route_volume(n.pnode.volume, self.stores.len());
            for m in self.stores[home].closure(n, label, false) {
                if seen.insert(m) {
                    out.push(m);
                    if route_volume(m.pnode.volume, self.stores.len()) != home {
                        frontier.push(m);
                    }
                }
            }
        }
        out.sort();
        out
    }

    fn lookup_attr(&self, class: &str, attr: &str, pred: &AttrPredicate) -> AttrLookup {
        let mut nodes: Vec<ObjectRef> = Vec::new();
        let mut indexed = true;
        for s in &self.stores {
            let l = s.lookup_attr(class, attr, pred);
            indexed &= l.indexed;
            nodes.extend(l.nodes);
        }
        nodes.sort();
        AttrLookup { nodes, indexed }
    }

    fn class_size(&self, class: &str) -> Option<usize> {
        self.stores.iter().map(|s| s.class_size(class)).sum()
    }
}
