//! One shard of the provenance store.
//!
//! The store partitions objects by a stable hash of their pnode; each
//! shard owns the object table and secondary indexes for its
//! partition. A record's *subject-side* effects (attributes, ancestry
//! inputs, data-write accounting) land in the subject's shard; the
//! *reverse* ancestry edge lands in the ancestor's shard, so
//! descendant queries never leave the ancestor's partition. Shards
//! never reference each other — the [`crate::store::Store`] facade
//! routes between them — which is what later lets shards move to
//! independent backends or threads.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dpapi::wire::record_wire_size;
use dpapi::{Attribute, ObjectRef, Pnode, Value, Version};
use lasagna::LogEntry;

use crate::db::{DbSize, ObjectEntry};

/// A reverse ancestry edge bound for an ancestor's shard:
/// (ancestor, descendant version-ref, edge attribute, ancestor
/// version).
pub(crate) type ReverseEdge = (Pnode, ObjectRef, Attribute, Version);

/// One hash partition of the store.
///
/// The secondary indexes are ordered maps (`BTreeMap`): prefix
/// queries become range scans and checkpoint serialization iterates
/// them canonically without a sort pass.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    /// Objects homed on this shard.
    pub objects: HashMap<Pnode, ObjectEntry>,
    /// name -> objects of this shard that bore it (at any version).
    pub name_index: BTreeMap<String, BTreeSet<Pnode>>,
    /// type -> objects of this shard.
    pub type_index: BTreeMap<String, BTreeSet<Pnode>>,
    /// Generalized attribute index: attribute name -> string value ->
    /// objects of this shard that bore it (at any version). Covers
    /// every string-valued attribute the dedicated name/type indexes
    /// do not — application attributes foremost — so PQL predicate
    /// pushdown (`GraphSource::lookup_attr`) answers them without a
    /// volume scan. Maintained on the commit path and persisted in
    /// checkpoint segments (format v2).
    pub attr_index: BTreeMap<String, BTreeMap<String, BTreeSet<Pnode>>>,
    /// ancestor pnode (homed here) -> (descendant version-ref, edge
    /// attribute, ancestor version).
    pub reverse_index: HashMap<Pnode, Vec<(ObjectRef, Attribute, Version)>>,
    /// Approximate footprint of this shard.
    pub size: DbSize,
    /// Bumped once per group commit that touched this shard; the
    /// ancestry cache validates against it.
    pub generation: u64,
}

impl Shard {
    /// Applies a run of committed entries that all share one subject
    /// pnode. This is the batched fast path: the object-table lookup
    /// is done once for the whole run, and the per-version state is
    /// looked up once per same-version sub-run instead of once per
    /// record.
    pub fn apply_run(
        &mut self,
        pnode: Pnode,
        entries: &[&LogEntry],
        reverse_out: &mut Vec<ReverseEdge>,
    ) {
        debug_assert!(!entries.is_empty());
        let mut db_bytes = 0u64;
        let mut index_bytes = 0u64;
        // Split borrows: the object entry and the secondary indexes
        // are distinct fields, so the entry can be taken once up front
        // while the index maps stay reachable.
        let obj = self.objects.entry(pnode).or_default();
        let mut i = 0;
        while i < entries.len() {
            // Freeze opens a new version; apply it singly.
            if let LogEntry::Prov { record, .. } = entries[i] {
                if let (Attribute::Freeze, Value::Int(v)) = (&record.attribute, &record.value) {
                    db_bytes += record_wire_size(record) as u64 + 16;
                    obj.at(Version(*v as u32));
                    i += 1;
                    continue;
                }
            }
            // Sub-run of non-freeze entries at one version: one
            // version-table lookup for all of them.
            let ver = subject_version(entries[i]);
            let mut j = i + 1;
            while j < entries.len() && subject_version(entries[j]) == ver && !is_freeze(entries[j])
            {
                j += 1;
            }
            let ve = obj.at(Version(ver));
            for entry in &entries[i..j] {
                match entry {
                    LogEntry::Prov { subject, record } => {
                        debug_assert_eq!(subject.pnode, pnode);
                        db_bytes += record_wire_size(record) as u64 + 16;
                        match (&record.attribute, &record.value) {
                            (attr, Value::Xref(ancestor)) if attr.is_ancestry() => {
                                ve.inputs.push((attr.clone(), *ancestor));
                                reverse_out.push((
                                    ancestor.pnode,
                                    *subject,
                                    attr.clone(),
                                    ancestor.version,
                                ));
                            }
                            (Attribute::Name, Value::Str(name)) => {
                                ve.attrs.push((Attribute::Name, record.value.clone()));
                                let fresh = self
                                    .name_index
                                    .entry(name.clone())
                                    .or_default()
                                    .insert(pnode);
                                if fresh {
                                    index_bytes += name.len() as u64 + 12;
                                }
                            }
                            (Attribute::Type, Value::Str(ty)) => {
                                ve.attrs.push((Attribute::Type, record.value.clone()));
                                let fresh =
                                    self.type_index.entry(ty.clone()).or_default().insert(pnode);
                                if fresh {
                                    index_bytes += ty.len() as u64 + 12;
                                }
                            }
                            (attr, Value::Str(s)) => {
                                ve.attrs
                                    .push((record.attribute.clone(), record.value.clone()));
                                let fresh = self
                                    .attr_index
                                    .entry(attr.as_str().to_string())
                                    .or_default()
                                    .entry(s.clone())
                                    .or_default()
                                    .insert(pnode);
                                if fresh {
                                    index_bytes += (attr.as_str().len() + s.len()) as u64 + 12;
                                }
                            }
                            _ => {
                                ve.attrs
                                    .push((record.attribute.clone(), record.value.clone()));
                            }
                        }
                    }
                    LogEntry::DataWrite { subject, len, .. } => {
                        debug_assert_eq!(subject.pnode, pnode);
                        ve.writes += 1;
                        ve.bytes_written += u64::from(*len);
                        db_bytes += 44;
                    }
                    LogEntry::TxnBegin { .. } | LogEntry::TxnEnd { .. } => {}
                }
            }
            i = j;
        }
        self.size.db_bytes += db_bytes;
        self.size.index_bytes += index_bytes;
    }

    /// Rebuilds the generalized attribute index from the object
    /// table — the upgrade path for v1 checkpoint segments, which
    /// predate it. Walks every version's attributes of every object
    /// (the in-memory equivalent of the replay scan v2 segments make
    /// unnecessary) and re-derives exactly what `apply_run` would
    /// have maintained; footprint accounting is left untouched, as v1
    /// images never charged for this index.
    pub fn rebuild_attr_index(&mut self) {
        self.attr_index.clear();
        for (pnode, obj) in &self.objects {
            for entry in obj.versions.values() {
                for (attr, value) in &entry.attrs {
                    if matches!(attr, Attribute::Name | Attribute::Type) {
                        continue;
                    }
                    if let Value::Str(s) = value {
                        self.attr_index
                            .entry(attr.as_str().to_string())
                            .or_default()
                            .entry(s.clone())
                            .or_default()
                            .insert(*pnode);
                    }
                }
            }
        }
    }

    /// Records a reverse ancestry edge whose ancestor is homed here.
    pub fn add_reverse_edge(&mut self, edge: ReverseEdge) {
        let (ancestor, descendant, attr, aversion) = edge;
        self.reverse_index
            .entry(ancestor)
            .or_default()
            .push((descendant, attr, aversion));
        self.size.index_bytes += 36;
    }
}

/// The subject version an appliable entry writes at.
fn subject_version(entry: &LogEntry) -> u32 {
    match entry {
        LogEntry::Prov { subject, .. } | LogEntry::DataWrite { subject, .. } => subject.version.0,
        LogEntry::TxnBegin { .. } | LogEntry::TxnEnd { .. } => 0,
    }
}

/// True for FREEZE records, which open a new version.
fn is_freeze(entry: &LogEntry) -> bool {
    matches!(
        entry,
        LogEntry::Prov { record, .. } if record.attribute == Attribute::Freeze
    )
}
