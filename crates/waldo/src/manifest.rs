//! The checkpoint **manifest**: the atomic commit point of a
//! checkpoint.
//!
//! A manifest binds, for one group-commit sequence number, the
//! checksum of every shard's segment image to the store-level state a
//! cold restart needs beyond shard contents: the open-transaction
//! buffers (entries staged inside `TxnBegin`/`TxnEnd` pairs that had
//! not closed at checkpoint time), the transaction the committed
//! stream prefix was inside, and the per-source-log replay high-water
//! marks — the points restart replays surviving Lasagna logs from.
//!
//! ```text
//! manifest := magic "WMAN", version u16, seq u64, shard_count u32,
//!             shard_count × (generation u64, len u64, crc u32),
//!             commit_txn (u8 flag, u64),
//!             txns u32, n × (id u64, entries u32, bytes u32, log image),
//!             sources u32, n × (str path, mark u64),
//!             [v3+] batch_hw u32, n × (volume u32, seq u64),
//!             [v3+] replay_skip (u8 flag, u64),
//!             crc32 u32
//! ```
//!
//! `len == 0` marks an empty shard (generation 0, nothing ever
//! committed): no segment file exists for it and the loader builds a
//! fresh shard. The publisher writes the manifest to a temporary name,
//! fsyncs, then renames — so a manifest either exists completely or
//! not at all, and a torn image fails its CRC and is skipped in favor
//! of the previous complete checkpoint.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dpapi::{DpapiError, Result};
use lasagna::{crc32, parse_log, LogEntry, LogTail};

const MAGIC: &[u8; 4] = b"WMAN";
/// Current manifest format version. v2 declares that the referenced
/// segments carry the generalized attribute index (segment format
/// v2) with the layout unchanged. v3 appends the per-volume batch
/// replay high-water marks and the open replay-skip region after the
/// source slots; pre-v3 manifests — which carry neither — decode
/// with both empty, so a restart from an old checkpoint simply
/// re-learns the marks as batches commit.
pub const MANIFEST_VERSION: u16 = 3;
/// Oldest manifest version the decoder accepts.
pub const MANIFEST_MIN_VERSION: u16 = 1;

/// One shard's segment as the manifest records it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct SegmentRef {
    /// Shard generation the segment was written at (0 = empty shard,
    /// no file).
    pub generation: u64,
    /// Byte length of the segment file (0 = empty shard).
    pub len: u64,
    /// CRC-32 of the whole segment file.
    pub crc: u32,
}

impl SegmentRef {
    /// True if this shard had never been touched at checkpoint time.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A decoded manifest.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Manifest {
    /// The group-commit sequence number the checkpoint captures.
    pub seq: u64,
    /// Per-shard segment references (index = shard number).
    pub segments: Vec<SegmentRef>,
    /// Open-transaction buffers at checkpoint time, sorted by id.
    pub txns: Vec<(u64, Vec<LogEntry>)>,
    /// The transaction the committed stream prefix was inside.
    pub commit_txn: Option<u64>,
    /// Source-log replay slots: `(path, committed mark)`; an empty
    /// path is a free slot (kept to preserve handle indices).
    pub sources: Vec<(String, u64)>,
    /// Per-volume batch replay high-water marks, sorted by volume
    /// (v3+; empty when decoded from older manifests).
    pub batch_hw: Vec<(u32, u64)>,
    /// The replayed batch the committed stream prefix was skipping
    /// through, if a crash interrupted one (v3+).
    pub replay_skip: Option<u64>,
}

/// Serializes a manifest at the current format version.
pub(crate) fn encode_manifest(m: &Manifest) -> Vec<u8> {
    encode_manifest_versioned(m, MANIFEST_VERSION)
}

/// Serializes a manifest at an explicit format version, omitting the
/// sections that version did not define — so compatibility tests can
/// produce byte-faithful old-format images instead of restamping the
/// version field under a newer layout.
pub(crate) fn encode_manifest_versioned(m: &Manifest, version: u16) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(256);
    buf.put_slice(MAGIC);
    buf.put_u16_le(version);
    buf.put_u64_le(m.seq);
    buf.put_u32_le(m.segments.len() as u32);
    for seg in &m.segments {
        buf.put_u64_le(seg.generation);
        buf.put_u64_le(seg.len);
        buf.put_u32_le(seg.crc);
    }
    match m.commit_txn {
        Some(id) => {
            buf.put_u8(1);
            buf.put_u64_le(id);
        }
        None => {
            buf.put_u8(0);
            buf.put_u64_le(0);
        }
    }
    buf.put_u32_le(m.txns.len() as u32);
    for (id, entries) in &m.txns {
        buf.put_u64_le(*id);
        buf.put_u32_le(entries.len() as u32);
        let mut image = BytesMut::new();
        for e in entries {
            // Buffered entries were parsed from a log image (or came
            // through validated disclosure), so they are
            // wire-representable by construction.
            lasagna::encode_entry(&mut image, e).expect("stored log entries always encode");
        }
        buf.put_u32_le(image.len() as u32);
        buf.put_slice(&image);
    }
    buf.put_u32_le(m.sources.len() as u32);
    for (path, mark) in &m.sources {
        buf.put_u32_le(path.len() as u32);
        buf.put_slice(path.as_bytes());
        buf.put_u64_le(*mark);
    }
    if version >= 3 {
        buf.put_u32_le(m.batch_hw.len() as u32);
        for (volume, seq) in &m.batch_hw {
            buf.put_u32_le(*volume);
            buf.put_u64_le(*seq);
        }
        match m.replay_skip {
            Some(id) => {
                buf.put_u8(1);
                buf.put_u64_le(id);
            }
            None => {
                buf.put_u8(0);
                buf.put_u64_le(0);
            }
        }
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    buf.to_vec()
}

fn need(buf: &Bytes, n: usize, what: &str) -> Result<()> {
    if buf.remaining() < n {
        return Err(DpapiError::Malformed(format!("truncated {what}")));
    }
    Ok(())
}

/// Deserializes a manifest, validating magic, version and CRC.
pub(crate) fn decode_manifest(data: &[u8]) -> Result<Manifest> {
    if data.len() < 4 + 2 + 8 + 4 + 4 {
        return Err(DpapiError::Malformed("manifest too short".into()));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err(DpapiError::Malformed("manifest CRC mismatch".into()));
    }
    let mut buf = Bytes::copy_from_slice(body);
    if buf.split_to(4).as_ref() != MAGIC {
        return Err(DpapiError::Malformed("bad manifest magic".into()));
    }
    let version = buf.get_u16_le();
    if !(MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&version) {
        return Err(DpapiError::Malformed(format!(
            "unsupported manifest version {version}"
        )));
    }
    let seq = buf.get_u64_le();
    need(&buf, 4, "shard count")?;
    let n_shards = buf.get_u32_le() as usize;
    if n_shards == 0 || n_shards > 64 {
        return Err(DpapiError::Malformed(format!(
            "implausible shard count {n_shards}"
        )));
    }
    let mut segments = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        need(&buf, 20, "segment ref")?;
        segments.push(SegmentRef {
            generation: buf.get_u64_le(),
            len: buf.get_u64_le(),
            crc: buf.get_u32_le(),
        });
    }
    need(&buf, 9, "commit txn")?;
    let flag = buf.get_u8();
    let id = buf.get_u64_le();
    let commit_txn = (flag != 0).then_some(id);
    need(&buf, 4, "txn count")?;
    let n_txns = buf.get_u32_le() as usize;
    let mut txns = Vec::with_capacity(n_txns.min(1024));
    for _ in 0..n_txns {
        need(&buf, 16, "txn header")?;
        let id = buf.get_u64_le();
        let n_entries = buf.get_u32_le() as usize;
        let image_len = buf.get_u32_le() as usize;
        need(&buf, image_len, "txn image")?;
        let image = buf.split_to(image_len);
        let (entries, tail) = parse_log(&image);
        if tail != LogTail::Clean || entries.len() != n_entries {
            return Err(DpapiError::Malformed("damaged txn image".into()));
        }
        txns.push((id, entries));
    }
    need(&buf, 4, "source count")?;
    let n_sources = buf.get_u32_le() as usize;
    let mut sources = Vec::with_capacity(n_sources.min(1024));
    for _ in 0..n_sources {
        need(&buf, 4, "source path length")?;
        let plen = buf.get_u32_le() as usize;
        need(&buf, plen, "source path")?;
        let raw = buf.split_to(plen);
        let path = String::from_utf8(raw.to_vec())
            .map_err(|_| DpapiError::Malformed("invalid UTF-8 source path".into()))?;
        let mark = {
            need(&buf, 8, "source mark")?;
            buf.get_u64_le()
        };
        sources.push((path, mark));
    }
    let mut batch_hw = Vec::new();
    let mut replay_skip = None;
    if version >= 3 {
        need(&buf, 4, "batch high-water count")?;
        let n_hw = buf.get_u32_le() as usize;
        batch_hw.reserve(n_hw.min(1024));
        for _ in 0..n_hw {
            need(&buf, 12, "batch high-water entry")?;
            let volume = buf.get_u32_le();
            let seq = buf.get_u64_le();
            batch_hw.push((volume, seq));
        }
        need(&buf, 9, "replay skip")?;
        let flag = buf.get_u8();
        let id = buf.get_u64_le();
        replay_skip = (flag != 0).then_some(id);
    }
    if buf.has_remaining() {
        return Err(DpapiError::Malformed("trailing bytes in manifest".into()));
    }
    Ok(Manifest {
        seq,
        segments,
        txns,
        commit_txn,
        sources,
        batch_hw,
        replay_skip,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};

    fn sample() -> Manifest {
        let sub = ObjectRef::new(Pnode::new(VolumeId(1), 5), Version(0));
        Manifest {
            seq: 42,
            segments: vec![
                SegmentRef {
                    generation: 3,
                    len: 100,
                    crc: 0xabc,
                },
                SegmentRef {
                    generation: 0,
                    len: 0,
                    crc: 0,
                },
            ],
            txns: vec![(
                9,
                vec![LogEntry::Prov {
                    subject: sub,
                    record: ProvenanceRecord::new(Attribute::Name, Value::str("/x")),
                }],
            )],
            commit_txn: Some(9),
            sources: vec![
                ("/.pass/log.3".to_string(), 17),
                (String::new(), 0),
                ("/.pass/log.4".to_string(), 2),
            ],
            batch_hw: vec![(1, 12), (7, 3)],
            replay_skip: Some(lasagna::batch_txn_id(VolumeId(1), 12)),
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let enc = encode_manifest(&m);
        assert_eq!(decode_manifest(&enc).unwrap(), m);
    }

    #[test]
    fn every_byte_flip_is_rejected() {
        let enc = encode_manifest(&sample());
        for flip in 0..enc.len() {
            let mut bad = enc.clone();
            bad[flip] ^= 0x02;
            assert!(
                decode_manifest(&bad).is_err(),
                "flip at byte {flip} went undetected"
            );
        }
    }

    /// Old-format manifests still decode — v1/v2 images (no batch
    /// replay section) come back with empty batch state — and a
    /// future version is rejected. The old images are produced by the
    /// versioned encoder, byte-faithful to what those releases wrote.
    #[test]
    fn old_manifest_version_accepted_future_rejected() {
        let m = sample();
        let pre_v3 = Manifest {
            batch_hw: Vec::new(),
            replay_skip: None,
            ..m.clone()
        };
        for version in [1u16, 2] {
            let enc = encode_manifest_versioned(&m, version);
            assert_eq!(
                decode_manifest(&enc).unwrap(),
                pre_v3,
                "v{version} manifests must decode with empty batch state"
            );
        }
        let mut future = encode_manifest(&m);
        future[4] = 4;
        let body = future.len() - 4;
        let crc = crc32(&future[..body]).to_le_bytes();
        future[body..].copy_from_slice(&crc);
        assert!(decode_manifest(&future).is_err());
    }

    #[test]
    fn torn_manifest_is_rejected() {
        let enc = encode_manifest(&sample());
        for cut in 0..enc.len() {
            assert!(decode_manifest(&enc[..cut]).is_err());
        }
    }
}
