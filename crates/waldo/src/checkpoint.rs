//! The checkpoint subsystem: durable per-shard segments, an atomic
//! manifest, WAL truncation and cold restart.
//!
//! After PR 1 the store was durable in name only: every group commit
//! fsynced an accounting frame to the db WAL, but shard contents lived
//! in memory and fully-committed Lasagna logs were unlinked — a
//! machine crash was unrecoverable and the WAL grew forever. This
//! module adds the missing storage layer:
//!
//! * **segments** (`crate::segment`) — a versioned, checksummed
//!   image of one shard, written only for shards whose generation
//!   advanced since the last checkpoint (incremental);
//! * **manifest** (`crate::manifest`) — the atomic commit point:
//!   written to a temporary name, fsynced, renamed into place
//!   (`manifest.<seq>`), binding segment checksums to the commit
//!   sequence plus the store-level replay state;
//! * **WAL truncation** — frames at or below the published sequence
//!   are dropped (the checkpoint supersedes them), bounding the WAL
//!   by the checkpoint policy in
//!   [`crate::WaldoConfig`];
//! * **cold restart** (`Waldo::restart`) — loads the newest *complete*
//!   checkpoint (a damaged manifest or segment falls back to the
//!   previous one), rehydrates shards, validates surviving WAL
//!   frames, and replays retained Lasagna logs from the per-log
//!   high-water marks.
//!
//! Correctness rests on log retention: the daemon unlinks a
//! fully-committed log only once a **full complement** of
//! `keep_checkpoints` manifests exists *and* the oldest of them
//! covers the log's retirement sequence — so up to
//! `keep_checkpoints - 1` damaged *manifests or per-checkpoint
//! segments* are survivable with every commit past the surviving
//! checkpoint still replayable from logs. One caveat bounds the
//! guarantee: incremental checkpoints **share** the segment file of
//! a shard that did not advance between them, so corruption of a
//! shared segment damages every retained checkpoint that references
//! it at once (the classic LSM shared-file tradeoff; copying
//! segments per checkpoint would restore full independence at the
//! cost of the incremental write savings). WAL frames past the
//! checkpoint are therefore redundant accounting — restart validates
//! and counts them but takes replay state from the manifest, never
//! from frames (frames record marks whose in-memory effects died with
//! the crash).

use sim_os::fs::FsError;
use sim_os::proc::Pid;
use sim_os::syscall::{Kernel, OpenFlags};

use crate::manifest::{decode_manifest, encode_manifest, Manifest, SegmentRef};
use crate::segment::{decode_shard, encode_shard, segment_crc};
use crate::shard::Shard;
use crate::store::{Store, WaldoConfig};
use crate::wal::parse_wal;

/// Operational counters for the checkpoint subsystem, surfaced
/// through `Waldo::checkpoint_stats` and the bench rig.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Checkpoints published (manifest renamed into place).
    pub checkpoints: u64,
    /// Segment files written (incremental: unchanged shards are
    /// reused from the previous checkpoint).
    pub segments_written: u64,
    /// Bytes of segment data written.
    pub segment_bytes: u64,
    /// WAL frames dropped by truncation.
    pub frames_truncated: u64,
    /// Source logs unlinked because a retained checkpoint covers them.
    pub logs_retired: u64,
    /// Checkpoint attempts that errored (segment, manifest or WAL
    /// I/O). Nonzero means the WAL bound and log retirement are not
    /// currently advancing.
    pub failures: u64,
}

impl provscope::MetricSource for CheckpointStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("checkpoints", self.checkpoints);
        out("segments_written", self.segments_written);
        out("segment_bytes", self.segment_bytes);
        out("frames_truncated", self.frames_truncated);
        out("logs_retired", self.logs_retired);
        out("failures", self.failures);
    }
}

/// Where a simulated crash interrupts `Waldo::checkpoint` — used by
/// the crash-matrix tests to prove every interleaving restarts to the
/// uncrashed store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointCrash {
    /// Segments written; no manifest yet (checkpoint invisible).
    AfterSegments,
    /// Temporary manifest written and fsynced, not yet renamed.
    AfterTempManifest,
    /// Manifest renamed into place; WAL not yet truncated.
    AfterPublish,
    /// Truncated WAL written to its temporary name, not yet renamed.
    MidWalTruncate,
    /// WAL truncated; covered logs not yet unlinked, old checkpoints
    /// not yet collected.
    AfterWalTruncate,
}

/// What a cold restart found, for tests, benches and operators.
#[derive(Clone, Debug, Default)]
pub struct RestartReport {
    /// Sequence of the checkpoint the store was rehydrated from
    /// (`None` = no loadable checkpoint, full-log replay).
    pub loaded_seq: Option<u64>,
    /// Damaged checkpoints skipped before one loaded (corrupt or torn
    /// manifest, checksum-mismatched segment).
    pub checkpoints_skipped: usize,
    /// Valid durability frames found in the surviving WAL.
    pub wal_frames: u64,
    /// Of those, frames past the loaded checkpoint — commits whose
    /// effects restart re-derives by replaying retained logs.
    pub wal_frames_beyond_checkpoint: u64,
    /// Entries applied while replaying surviving logs.
    pub replayed_entries: usize,
    /// True when the surviving WAL's tail did not parse cleanly (torn
    /// or corrupt final frame). Harmless for state — replay comes
    /// from the manifest, never from frames — but it is the detection
    /// signal for WAL truncation/bit-flip tampers.
    pub wal_tail_torn: bool,
}

/// `<db_dir>/checkpoints`, the segment + manifest directory.
pub(crate) fn checkpoint_dir(db_dir: &str) -> String {
    format!("{db_dir}/checkpoints")
}

/// `<db_dir>/wal`, the durability-frame log.
pub(crate) fn wal_path(db_dir: &str) -> String {
    format!("{db_dir}/wal")
}

fn manifest_path(dir: &str, seq: u64) -> String {
    format!("{dir}/manifest.{seq}")
}

fn segment_path(dir: &str, shard: usize, generation: u64) -> String {
    format!("{dir}/shard{shard}.g{generation}.seg")
}

/// Writes `data` then fsyncs before closing — the discipline every
/// checkpoint artifact is written with.
fn write_synced(kernel: &mut Kernel, pid: Pid, path: &str, data: &[u8]) -> Result<(), FsError> {
    let fd = kernel.open(pid, path, OpenFlags::WRONLY_CREATE)?;
    kernel.write(pid, fd, data)?;
    kernel.fsync(pid, fd)?;
    kernel.close(pid, fd)
}

/// Serializes and writes segment files for every shard whose
/// generation advanced past the previous checkpoint, reusing the
/// previous checkpoint's segments for unchanged shards. (Old-format
/// segments never survive this reuse: `try_load` bumps the
/// generation of every shard it rehydrated from a v1 image, so the
/// next checkpoint rewrites them — to a *new* path, leaving the old
/// checkpoint's files untouched for fallback.) Returns the new
/// per-shard refs plus (files written, bytes written).
pub(crate) fn write_segments(
    kernel: &mut Kernel,
    pid: Pid,
    store: &Store,
    dir: &str,
    prev: Option<&Manifest>,
) -> Result<(Vec<SegmentRef>, u64, u64), FsError> {
    let mut refs = Vec::with_capacity(store.shard_count());
    let mut written = 0u64;
    let mut bytes = 0u64;
    for i in 0..store.shard_count() {
        let gen = store.shard_generation(i);
        if gen == 0 {
            refs.push(SegmentRef {
                generation: 0,
                len: 0,
                crc: 0,
            });
            continue;
        }
        if let Some(p) = prev.and_then(|m| m.segments.get(i)) {
            if p.generation == gen && !p.is_empty() {
                refs.push(*p);
                continue;
            }
        }
        let img = store.with_shard(i, |shard| encode_shard(i as u32, shard, gen));
        write_synced(kernel, pid, &segment_path(dir, i, gen), &img)?;
        refs.push(SegmentRef {
            generation: gen,
            len: img.len() as u64,
            crc: segment_crc(&img),
        });
        written += 1;
        bytes += img.len() as u64;
    }
    Ok((refs, written, bytes))
}

/// Writes the manifest under its temporary name and fsyncs it.
pub(crate) fn write_temp_manifest(
    kernel: &mut Kernel,
    pid: Pid,
    dir: &str,
    m: &Manifest,
) -> Result<(), FsError> {
    write_synced(
        kernel,
        pid,
        &format!("{dir}/manifest.tmp"),
        &encode_manifest(m),
    )
}

/// Atomically publishes the temporary manifest as `manifest.<seq>`.
pub(crate) fn rename_manifest(
    kernel: &mut Kernel,
    pid: Pid,
    dir: &str,
    seq: u64,
) -> Result<(), FsError> {
    kernel.rename(
        pid,
        &format!("{dir}/manifest.tmp"),
        &manifest_path(dir, seq),
    )
}

/// Rewrites the WAL keeping only frames past `seq`, into the WAL's
/// temporary name (`wal.tmp`), fsynced. Returns the number of frames
/// dropped. The caller renames via [`rename_wal`] — and must have
/// closed its WAL descriptor first, since rename replaces the inode.
pub(crate) fn truncate_wal_temp(
    kernel: &mut Kernel,
    pid: Pid,
    wal: &str,
    seq: u64,
) -> Result<u64, FsError> {
    let data = kernel.read_file(pid, wal).unwrap_or_default();
    let (frames, _tail) = parse_wal(&data);
    let mut retained = Vec::new();
    let mut dropped = 0u64;
    for f in &frames {
        if f.seq > seq {
            crate::wal::encode_frame(&mut retained, f);
        } else {
            dropped += 1;
        }
    }
    write_synced(kernel, pid, &format!("{wal}.tmp"), &retained)?;
    Ok(dropped)
}

/// Writes an **empty** WAL to the temporary name — the restart-time
/// reset (`Waldo::restart`), where every surviving frame is stale.
pub(crate) fn reset_wal_temp(kernel: &mut Kernel, pid: Pid, wal: &str) -> Result<(), FsError> {
    write_synced(kernel, pid, &format!("{wal}.tmp"), &[])
}

/// Atomically replaces the WAL with its truncated rewrite.
pub(crate) fn rename_wal(kernel: &mut Kernel, pid: Pid, wal: &str) -> Result<(), FsError> {
    kernel.rename(pid, &format!("{wal}.tmp"), wal)
}

/// Removes one manifest file (used by restart to discard manifests
/// that failed to load; their segments are collected by the next
/// checkpoint's GC).
pub(crate) fn remove_manifest(kernel: &mut Kernel, pid: Pid, dir: &str, seq: u64) {
    let _ = kernel.unlink(pid, &manifest_path(dir, seq));
}

/// Manifest sequence numbers present in `dir`, ascending.
pub(crate) fn list_manifests(kernel: &mut Kernel, pid: Pid, dir: &str) -> Vec<u64> {
    let Ok(entries) = kernel.readdir(pid, dir) else {
        return Vec::new();
    };
    let mut seqs: Vec<u64> = entries
        .iter()
        .filter_map(|e| {
            e.name
                .strip_prefix("manifest.")
                .and_then(|s| s.parse().ok())
        })
        .collect();
    seqs.sort_unstable();
    seqs
}

/// Garbage-collects the checkpoint directory: keeps the newest `keep`
/// manifests, removes older ones plus every segment file none of the
/// kept manifests references. Returns the retained sequence numbers,
/// ascending — the oldest is the retention floor source logs are
/// gated on.
pub(crate) fn collect_garbage(kernel: &mut Kernel, pid: Pid, dir: &str, keep: usize) -> Vec<u64> {
    let seqs = list_manifests(kernel, pid, dir);
    let keep = keep.max(1);
    let cut = seqs.len().saturating_sub(keep);
    let (drop_seqs, kept) = seqs.split_at(cut);
    let mut referenced: std::collections::HashSet<String> = std::collections::HashSet::new();
    for seq in kept {
        let Ok(data) = kernel.read_file(pid, &manifest_path(dir, *seq)) else {
            continue;
        };
        // A kept-but-damaged manifest contributes no references; its
        // segments become collectable, which is fine — it could not
        // have been restarted from anyway.
        let Ok(m) = decode_manifest(&data) else {
            continue;
        };
        for (i, seg) in m.segments.iter().enumerate() {
            if !seg.is_empty() {
                referenced.insert(format!("shard{i}.g{}.seg", seg.generation));
            }
        }
    }
    for seq in drop_seqs {
        let _ = kernel.unlink(pid, &manifest_path(dir, *seq));
    }
    if let Ok(entries) = kernel.readdir(pid, dir) {
        for e in entries {
            if e.name.ends_with(".seg") && !referenced.contains(&e.name) {
                let _ = kernel.unlink(pid, &format!("{dir}/{}", e.name));
            }
        }
    }
    kept.to_vec()
}

/// A checkpoint successfully loaded from disk.
pub(crate) struct LoadedCheckpoint {
    pub store: Store,
    pub manifest: Manifest,
    /// Damaged newer checkpoints skipped before this one loaded.
    pub skipped: usize,
}

/// Loads the newest complete checkpoint from `dir`: tries manifests
/// newest-first, validating the manifest codec and every referenced
/// segment's length, checksum and identity; a damaged checkpoint is
/// skipped in favor of its predecessor (which means a longer log
/// replay for the caller).
pub(crate) fn load_latest(
    kernel: &mut Kernel,
    pid: Pid,
    dir: &str,
    cfg: WaldoConfig,
) -> Option<LoadedCheckpoint> {
    let mut seqs = list_manifests(kernel, pid, dir);
    seqs.reverse();
    let mut skipped = 0;
    for seq in seqs {
        match try_load(kernel, pid, dir, cfg, seq) {
            Some((store, manifest)) => {
                return Some(LoadedCheckpoint {
                    store,
                    manifest,
                    skipped,
                });
            }
            None => skipped += 1,
        }
    }
    None
}

fn try_load(
    kernel: &mut Kernel,
    pid: Pid,
    dir: &str,
    cfg: WaldoConfig,
    seq: u64,
) -> Option<(Store, Manifest)> {
    let data = kernel.read_file(pid, &manifest_path(dir, seq)).ok()?;
    let m = decode_manifest(&data).ok()?;
    if m.seq != seq || !m.segments.len().is_power_of_two() {
        return None;
    }
    let mut shards = Vec::with_capacity(m.segments.len());
    for (i, seg) in m.segments.iter().enumerate() {
        if seg.is_empty() {
            shards.push(Shard::default());
            continue;
        }
        let img = kernel
            .read_file(pid, &segment_path(dir, i, seg.generation))
            .ok()?;
        if img.len() as u64 != seg.len || segment_crc(&img) != seg.crc {
            return None;
        }
        let (idx, mut shard) = decode_shard(&img).ok()?;
        if idx as usize != i || shard.generation != seg.generation {
            return None;
        }
        // An old-format image (v1: attribute index rebuilt at decode)
        // must not be carried forward by incremental checkpoints, or
        // every future restart repeats the rebuild. Bumping the
        // generation makes the next checkpoint rewrite this shard in
        // the current format — under a *new* path, so the loaded
        // (old) checkpoint stays intact as a fallback until garbage
        // collection rotates it out.
        if crate::segment::image_format_version(&img) < crate::segment::SEGMENT_VERSION {
            shard.generation += 1;
        }
        shards.push(shard);
    }
    let store = Store::restore(
        cfg,
        shards,
        m.txns.clone(),
        m.commit_txn,
        m.sources.clone(),
        m.seq,
        m.batch_hw.clone(),
        m.replay_skip,
    );
    Some((store, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
    use lasagna::LogEntry;
    use sim_os::clock::Clock;
    use sim_os::cost::CostModel;
    use sim_os::fs::basefs::BaseFs;

    /// A pre-upgrade (segment v1) checkpoint on disk: loading it
    /// rebuilds the attribute index AND bumps the rehydrated shards'
    /// generations, so the next incremental checkpoint rewrites every
    /// v1 segment in the current format — at new paths, leaving the
    /// old checkpoint intact for fallback. Without the bump, a
    /// quiescent shard's v1 segment would be carried forward forever
    /// and every restart would repeat the rebuild.
    #[test]
    fn v1_segments_are_rewritten_by_the_next_checkpoint() {
        let clock = Clock::new();
        let mut kernel = Kernel::new(clock.clone(), CostModel::default());
        kernel.mount("/", Box::new(BaseFs::new(clock, CostModel::default())));
        let pid = kernel.spawn_init("waldo");
        let dir = "/db/checkpoints";
        kernel.mkdir_p(pid, dir).unwrap();

        // A store with an application attribute (so the index is
        // non-trivial), checkpointed by hand in segment format v1.
        let cfg = WaldoConfig {
            shards: 2,
            ancestry_cache: 0,
            ..WaldoConfig::default()
        };
        let store = Store::with_config(cfg);
        let entries: Vec<LogEntry> = (1..6u64)
            .map(|i| LogEntry::Prov {
                subject: ObjectRef::new(Pnode::new(VolumeId(1), i), Version(0)),
                record: ProvenanceRecord::new(
                    Attribute::Other("PHASE".into()),
                    Value::str("align"),
                ),
            })
            .collect();
        store.ingest(&entries);
        let mut segments = Vec::new();
        for i in 0..store.shard_count() {
            let gen = store.shard_generation(i);
            if gen == 0 {
                segments.push(SegmentRef {
                    generation: 0,
                    len: 0,
                    crc: 0,
                });
                continue;
            }
            let img = store.with_shard(i, |shard| {
                crate::segment::encode_shard_versioned(i as u32, shard, gen, 1)
            });
            write_synced(&mut kernel, pid, &segment_path(dir, i, gen), &img).unwrap();
            segments.push(SegmentRef {
                generation: gen,
                len: img.len() as u64,
                crc: segment_crc(&img),
            });
        }
        let manifest = Manifest {
            seq: store.commit_seq(),
            segments: segments.clone(),
            txns: Vec::new(),
            commit_txn: None,
            sources: Vec::new(),
            batch_hw: Vec::new(),
            replay_skip: None,
        };
        write_temp_manifest(&mut kernel, pid, dir, &manifest).unwrap();
        rename_manifest(&mut kernel, pid, dir, manifest.seq).unwrap();

        // Load: contents equal, index rebuilt, generations bumped for
        // every shard that came from a v1 image.
        let loaded = load_latest(&mut kernel, pid, dir, cfg).unwrap();
        assert_eq!(loaded.store.segment_images(), store.segment_images());
        assert_eq!(
            loaded.store.find_by_attr("PHASE", "align").len(),
            5,
            "index rebuilt from v1 objects"
        );
        for (i, seg) in segments.iter().enumerate() {
            if !seg.is_empty() {
                assert_eq!(
                    loaded.store.shard_generation(i),
                    seg.generation + 1,
                    "shard {i}"
                );
            }
        }

        // The next checkpoint rewrites every v1 shard (new paths),
        // and the old checkpoint's files survive untouched.
        let (refs, written, _) =
            write_segments(&mut kernel, pid, &loaded.store, dir, Some(&loaded.manifest)).unwrap();
        let live = segments.iter().filter(|s| !s.is_empty()).count() as u64;
        assert_eq!(written, live, "every v1 segment must be rewritten");
        for (i, r) in refs.iter().enumerate() {
            if segments[i].is_empty() {
                continue;
            }
            assert_eq!(r.generation, segments[i].generation + 1);
            let new = kernel
                .read_file(pid, &segment_path(dir, i, r.generation))
                .unwrap();
            assert_eq!(crate::segment::image_format_version(&new), 2);
            let old = kernel
                .read_file(pid, &segment_path(dir, i, segments[i].generation))
                .unwrap();
            assert_eq!(
                segment_crc(&old),
                segments[i].crc,
                "the v1 checkpoint must stay intact for fallback"
            );
        }
    }
}
