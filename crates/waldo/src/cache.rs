//! The ancestry-query cache.
//!
//! Repeated provenance queries are heavily skewed: the same "where did
//! this file come from" traversal runs again and again as users drill
//! into a result (§3 of the paper runs the same ancestry query per
//! object of interest). The store therefore memoizes traversal results
//! in a small LRU map and invalidates them *per shard*: every group
//! commit bumps the generation of exactly the shards it touched, and a
//! cached traversal remembers the generation of every shard it read.
//! Ingest into shard 3 therefore evicts only traversals that crossed
//! shard 3.
//!
//! [`LruMap`] follows the `sim_os::lru` idiom — an O(1)
//! doubly-linked-list-over-`Vec` LRU with a slot free list — extended
//! from a set to a map so entries can carry values.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// An O(1) LRU map (the `sim_os::lru::LruSet` layout, carrying
/// values).
pub struct LruMap<K: Eq + Hash + Clone, V> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruMap<K, V> {
    /// Creates a map holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruMap {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity: capacity.max(1),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks `key` up, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        Some(&self.nodes[idx].value)
    }

    /// Inserts or replaces `key`, evicting the least recently used
    /// entry if the map is full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let vkey = self.nodes[victim].key.clone();
            self.map.remove(&vkey);
            self.free.push(victim);
        }
        let node = Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    /// Removes `key` if resident.
    pub fn remove(&mut self, key: &K) -> Option<V>
    where
        V: Default,
    {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        Some(std::mem::take(&mut self.nodes[idx].value))
    }
}

/// The set of shards a traversal read, with the generation each was at.
///
/// Shard counts are capped at 64 so membership is one `u64`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardSnapshot {
    mask: u64,
    gens: Vec<(u8, u64)>,
}

impl ShardSnapshot {
    /// Records that `shard` (at `gen`) was read.
    pub fn touch(&mut self, shard: usize, gen: u64) {
        debug_assert!(shard < 64);
        let bit = 1u64 << shard;
        if self.mask & bit == 0 {
            self.mask |= bit;
            self.gens.push((shard as u8, gen));
        }
    }

    /// True if every recorded shard is still at its recorded
    /// generation. `current` maps a shard index to its present
    /// generation (a closure, so the store can answer from its atomic
    /// per-shard counters without materializing a vector).
    pub fn valid(&self, current: impl Fn(usize) -> u64) -> bool {
        self.gens.iter().all(|(s, g)| current(*s as usize) == *g)
    }
}

/// One memoized traversal result.
#[derive(Clone, Debug, Default)]
pub struct CachedResult<T> {
    pub value: T,
    pub snapshot: ShardSnapshot,
}

/// Hit/miss counters for the ancestry cache, for experiments and
/// tuning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the traversal.
    pub misses: u64,
    /// Cached entries discarded because a commit touched one of their
    /// shards.
    pub invalidated: u64,
}

/// A generation-validated LRU cache of traversal results.
pub struct TraversalCache<K: Eq + Hash + Clone, T> {
    lru: LruMap<K, CachedResult<T>>,
    pub stats: CacheStats,
}

impl<K: Eq + Hash + Clone, T: Clone + Default> TraversalCache<K, T> {
    pub fn new(capacity: usize) -> Self {
        TraversalCache {
            lru: LruMap::new(capacity),
            stats: CacheStats::default(),
        }
    }

    /// A still-valid cached value for `key`, given the shards'
    /// current generations. Stale entries are dropped and counted.
    pub fn lookup(&mut self, key: &K, current_gens: impl Fn(usize) -> u64) -> Option<T> {
        match self.lru.get(key) {
            Some(entry) if entry.snapshot.valid(current_gens) => {
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            Some(_) => {
                self.lru.remove(key);
                self.stats.invalidated += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Memoizes a freshly computed value.
    pub fn store(&mut self, key: K, value: T, snapshot: ShardSnapshot) {
        self.lru.insert(key, CachedResult { value, snapshot });
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_map_evicts_in_recency_order() {
        let mut m: LruMap<u32, &str> = LruMap::new(2);
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a")); // 2 becomes LRU
        m.insert(3, "c");
        assert_eq!(m.get(&2), None);
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&3), Some(&"c"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn lru_map_reuses_slots() {
        let mut m: LruMap<u32, u32> = LruMap::new(2);
        for i in 0..100 {
            m.insert(i, i);
        }
        assert_eq!(m.len(), 2);
        assert!(m.nodes.len() <= 3);
    }

    #[test]
    fn snapshot_validates_per_shard() {
        let mut snap = ShardSnapshot::default();
        snap.touch(0, 5);
        snap.touch(3, 7);
        snap.touch(0, 99); // duplicate touch keeps the first generation
        let at = |gens: [u64; 4]| move |i: usize| gens[i];
        assert!(snap.valid(at([5, 0, 0, 7])));
        assert!(!snap.valid(at([5, 0, 0, 8])), "shard 3 moved");
        assert!(!snap.valid(at([6, 0, 0, 7])), "shard 0 moved");
        // Shards the traversal never read may move freely.
        assert!(snap.valid(at([5, 42, 42, 7])));
    }

    #[test]
    fn traversal_cache_hits_until_shard_moves() {
        let mut c: TraversalCache<u32, Vec<u32>> = TraversalCache::new(8);
        let mut gens = [0u64, 0];
        let mut snap = ShardSnapshot::default();
        snap.touch(1, 0);
        c.store(7, vec![1, 2, 3], snap);
        assert_eq!(c.lookup(&7, |i| gens[i]), Some(vec![1, 2, 3]));
        gens[0] += 1; // untouched shard: still a hit
        assert_eq!(c.lookup(&7, |i| gens[i]), Some(vec![1, 2, 3]));
        gens[1] += 1; // touched shard: invalidated
        assert_eq!(c.lookup(&7, |i| gens[i]), None);
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.invalidated, 1);
        assert_eq!(c.stats.misses, 1);
    }
}
