//! The Waldo daemon.
//!
//! Waldo is "a user-level daemon that reads provenance records from
//! the log and stores them in a database" (paper §5.6). In the
//! simulation Waldo runs as an ordinary (but observation-exempt)
//! process: it learns about closed log files from the volume's
//! rotation queue (the inotify stand-in), reads them through normal
//! system calls, ingests them into the [`ProvDb`] and removes them.

use sim_os::proc::{MountId, Pid};
use sim_os::syscall::Kernel;

use crate::db::{IngestStats, ProvDb};

/// The Waldo daemon state.
pub struct Waldo {
    /// The database Waldo maintains and serves to the query engine.
    pub db: ProvDb,
    pid: Pid,
    processed_logs: u64,
}

impl Waldo {
    /// Creates a daemon running as `pid`. The caller must exempt the
    /// pid from provenance observation (otherwise Waldo's own reads of
    /// the log would generate provenance about provenance).
    pub fn new(pid: Pid) -> Waldo {
        Waldo {
            db: ProvDb::new(),
            pid,
            processed_logs: 0,
        }
    }

    /// The daemon's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Number of log files processed so far.
    pub fn processed_logs(&self) -> u64 {
        self.processed_logs
    }

    /// Polls one volume for rotated logs, ingesting and removing each.
    /// `mount_path` is the volume's mount point (`"/"` or `"/mnt/x"`).
    pub fn poll_volume(
        &mut self,
        kernel: &mut Kernel,
        mount: MountId,
        mount_path: &str,
    ) -> IngestStats {
        let rotated = match kernel.dpapi_at(mount) {
            Some(d) => d.take_log_rotations(),
            None => return IngestStats::default(),
        };
        let mut total = IngestStats::default();
        for rel in rotated {
            let abs = if mount_path == "/" {
                format!("/{rel}")
            } else {
                format!("{mount_path}/{rel}")
            };
            let stats = self.ingest_log_file(kernel, &abs);
            total.applied += stats.applied;
            total.pending += stats.pending;
            total.txns_committed += stats.txns_committed;
        }
        total
    }

    /// Reads, ingests and unlinks one log file.
    pub fn ingest_log_file(&mut self, kernel: &mut Kernel, path: &str) -> IngestStats {
        let Ok(bytes) = kernel.read_file(self.pid, path) else {
            return IngestStats::default();
        };
        let (entries, _tail) = lasagna::parse_log(&bytes);
        let stats = self.db.ingest(&entries);
        let _ = kernel.unlink(self.pid, path);
        self.processed_logs += 1;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Attribute, Value};
    use passv2::System;

    /// End-to-end: syscalls → observer → Lasagna log → Waldo → DB.
    #[test]
    fn pipeline_from_syscalls_to_database() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("/usr/bin/convert");
        sys.kernel
            .execve(
                pid,
                "/usr/bin/convert",
                &["convert".into(), "in".into(), "out".into()],
                &[],
            )
            .ok();
        sys.kernel.write_file(pid, "/in.dat", b"input bytes").unwrap();
        let data = sys.kernel.read_file(pid, "/in.dat").unwrap();
        sys.kernel.write_file(pid, "/out.dat", &data).unwrap();
        sys.kernel.exit(pid);

        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let mut waldo = Waldo::new(waldo_pid);
        for (mount, logs) in sys.rotate_all_logs() {
            let _ = mount;
            for log in logs {
                waldo.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        assert!(waldo.processed_logs() >= 1);

        // The output file is in the database, named, with an ancestry
        // that reaches the input file through the process.
        let outs = waldo.db.find_by_name("/out.dat");
        assert_eq!(outs.len(), 1, "output file must be indexed by name");
        let out_obj = waldo.db.object(outs[0]).unwrap();
        let v = dpapi::Version(out_obj.current);
        let anc = waldo
            .db
            .ancestors(dpapi::ObjectRef::new(outs[0], v));
        let ins = waldo.db.find_by_name("/in.dat");
        assert_eq!(ins.len(), 1);
        assert!(
            anc.iter().any(|r| r.pnode == ins[0]),
            "ancestry of /out.dat must include /in.dat; got {anc:?}"
        );
        // The process appears as a typed object on the path.
        let procs = waldo.db.find_by_type("PROC");
        assert!(!procs.is_empty(), "the writing process must be materialized");
        assert!(anc.iter().any(|r| procs.contains(&r.pnode)));
    }

    #[test]
    fn poll_volume_drains_rotations_and_removes_logs() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("sh");
        sys.kernel.write_file(pid, "/f", b"x").unwrap();
        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let mut waldo = Waldo::new(waldo_pid);

        let (_, m, _) = sys.volumes[0];
        // Force rotation through the volume, then poll.
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
        let stats = waldo.poll_volume(&mut sys.kernel, m, "/");
        assert!(stats.applied > 0);
        // The processed log is gone from the log directory.
        let entries = sys.kernel.readdir(waldo_pid, "/.pass").unwrap();
        assert_eq!(
            entries.iter().filter(|e| e.name == "log.0").count(),
            0,
            "processed log must be unlinked"
        );
        // Second poll: nothing new.
        let stats = waldo.poll_volume(&mut sys.kernel, m, "/");
        assert_eq!(stats.applied, 0);
    }

    #[test]
    fn process_records_include_argv_and_name() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("init");
        sys.kernel.write_file(pid, "/bin-tool", b"ELF binary").unwrap();
        sys.kernel
            .execve(
                pid,
                "/bin-tool",
                &["tool".into(), "--flag".into()],
                &["HOME=/root".into()],
            )
            .unwrap();
        sys.kernel.write_file(pid, "/result", b"out").unwrap();
        sys.kernel.exit(pid);

        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let mut waldo = Waldo::new(waldo_pid);
        for (_, logs) in sys.rotate_all_logs() {
            for log in logs {
                waldo.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        let procs = waldo.db.find_by_type("PROC");
        let tool = procs
            .iter()
            .find(|p| {
                waldo
                    .db
                    .object(**p)
                    .and_then(|o| o.first_attr(&Attribute::Name))
                    .map(|v| v == &Value::str("/bin-tool"))
                    .unwrap_or(false)
            })
            .expect("the exec'd process must be recorded with its NAME");
        let obj = waldo.db.object(*tool).unwrap();
        let argv = obj.first_attr(&Attribute::Argv).expect("ARGV recorded");
        assert_eq!(
            argv,
            &Value::StrList(vec!["tool".into(), "--flag".into()])
        );
        let env = obj.first_attr(&Attribute::Env).expect("ENV recorded");
        assert_eq!(env, &Value::StrList(vec!["HOME=/root".into()]));
        // Both the binary file and the process bear the name (a
        // process's NAME is its executable path, per Table 1); the
        // file is distinguishable by TYPE.
        let bins = waldo.db.find_by_name("/bin-tool");
        let files = waldo.db.find_by_type("FILE");
        assert!(
            bins.iter().any(|p| files.contains(p)),
            "a FILE object named /bin-tool must exist"
        );
    }
}
