//! The Waldo daemon.
//!
//! Waldo is "a user-level daemon that reads provenance records from
//! the log and stores them in a database" (paper §5.6). In the
//! simulation Waldo runs as an ordinary (but observation-exempt)
//! process: it learns about closed log files from the volume's
//! rotation queue (the inotify stand-in), reads them through normal
//! system calls, ingests them into the sharded [`Store`] and removes
//! them.
//!
//! Ingestion is *batched with group commit*: entries parsed from
//! rotated logs are staged and committed in groups of
//! [`WaldoConfig::ingest_batch`] (spanning log files within one poll),
//! instead of the original record-at-a-time inserts. The store keeps
//! a per-file committed high-water mark, so a daemon that crashes
//! between group commits replays only the uncommitted suffix of each
//! surviving log — see
//! `tests/group_commit.rs::crash_mid_batch_recovers_exactly_once`.
//!
//! # Durability and cold restart
//!
//! With a database directory attached ([`Waldo::attach_db_dir`]) the
//! daemon is durable against **machine** crashes, not just daemon
//! crashes:
//!
//! * every group commit appends its frame to `<dir>/wal` and fsyncs;
//! * by the policy in [`WaldoConfig`] (commit count or WAL size) the
//!   daemon publishes a **checkpoint** under `<dir>/checkpoints` —
//!   incremental per-shard segments plus an atomically renamed
//!   manifest (see [`crate::checkpoint`]) — then truncates WAL frames
//!   at or below the manifest's sequence;
//! * a fully committed log is unlinked only once a full complement
//!   of `keep_checkpoints` manifests exists and the **oldest** covers
//!   its retirement, so even with `keep_checkpoints - 1` damaged
//!   checkpoints everything stays replayable (caveat: a corrupt
//!   segment *shared* by every retained checkpoint defeats this —
//!   see `crate::checkpoint`);
//! * [`Waldo::restart`] rebuilds the store after a machine crash:
//!   newest complete checkpoint, surviving WAL frames (validated),
//!   then replay of retained logs from the per-log marks.
//!
//! The legacy [`Waldo::attach_db_device`] keeps the PR 1 behavior (a
//! WAL with no checkpoints) for comparison; without either, the store
//! is memory-only and only daemon-crash recovery
//! ([`Waldo::resume`] + [`Waldo::recover_volume`]) applies.

use sim_os::fs::FsError;
use sim_os::proc::{Fd, MountId, Pid};
use sim_os::syscall::{Kernel, OpenFlags};

use crate::checkpoint::{self, CheckpointCrash, CheckpointStats, RestartReport};
use crate::db::{IngestStats, WaldoConfig};
use crate::manifest::Manifest;
use crate::store::Store;

/// Cumulative query-side counters of one daemon: how many PQL
/// queries it served and what the planner did across all of them —
/// surfaced alongside the ingest-side op counters (cache hit rates,
/// WAL errors, checkpoint stats) by the bench rig.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryOps {
    /// Queries served through [`Waldo::query`].
    pub queries: u64,
    /// Planner counters, accumulated ([`pql::PlanStats::absorb`]).
    pub planner: pql::PlanStats,
}

impl std::ops::AddAssign for QueryOps {
    /// Folds another daemon's query counters into these — the cluster
    /// roll-up (`waldo::cluster`), so per-member counters aggregate
    /// without hand-written field adds.
    fn add_assign(&mut self, other: QueryOps) {
        self.queries += other.queries;
        self.planner += other.planner;
    }
}

impl std::iter::Sum for QueryOps {
    fn sum<I: Iterator<Item = QueryOps>>(iter: I) -> QueryOps {
        iter.fold(QueryOps::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

impl provscope::MetricSource for QueryOps {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("queries", self.queries);
        provscope::MetricSource::record(&self.planner, &mut |k, v| out(&format!("planner.{k}"), v));
    }
}

impl provscope::MetricSource for Waldo {
    /// The daemon's lifetime counters as one flat namespace: its own
    /// top-level health signals plus the nested `query.` and `ckpt.`
    /// subsystems — what [`crate::Cluster::record_metrics`] absorbs
    /// per member.
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("processed_logs", self.processed_logs);
        out("wal_errors", self.wal_errors);
        out("log_tails_truncated", self.log_tails_truncated);
        out("log_tails_corrupt", self.log_tails_corrupt);
        provscope::MetricSource::record(&self.query_ops, &mut |k, v| out(&format!("query.{k}"), v));
        provscope::MetricSource::record(&self.ckpt_stats, &mut |k, v| out(&format!("ckpt.{k}"), v));
    }
}

/// Why a cold restart ([`Waldo::restart`]) could not attach the
/// durable home. The variants distinguish "the directory is gone"
/// (restore from elsewhere, or accept a full rebuild by creating it)
/// from "the directory is there but every checkpoint in it is
/// damaged" (the logs may still cover everything — but the caller
/// must decide that, not a silent full replay).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestartError {
    /// A file-system error while attaching or replaying.
    Fs(FsError),
    /// `db_dir` does not exist at all. A restart is an adoption of
    /// durable state; with no directory there is nothing to adopt,
    /// and silently creating an empty one would masquerade a data
    /// loss as a clean cold start.
    MissingDbDir { path: String },
    /// `db_dir/checkpoints` holds one or more manifests but none of
    /// them decodes (all damaged). Distinguishable from the legal
    /// zero-manifest case (full replay from retained logs) so
    /// tampering with every manifest cannot be mistaken for a fresh
    /// database.
    NoReadableCheckpoint { manifests: usize },
}

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestartError::Fs(e) => write!(f, "restart failed on a file-system error: {e:?}"),
            RestartError::MissingDbDir { path } => {
                write!(f, "database directory {path} does not exist")
            }
            RestartError::NoReadableCheckpoint { manifests } => write!(
                f,
                "all {manifests} manifest(s) in the database directory are unreadable"
            ),
        }
    }
}

impl std::error::Error for RestartError {}

impl From<FsError> for RestartError {
    fn from(e: FsError) -> RestartError {
        RestartError::Fs(e)
    }
}

/// One rotated log's raw bytes, read off the kernel ahead of time so
/// a worker thread can ingest it without touching the
/// (single-threaded) kernel — the unit of work the threaded cluster
/// runtime hands to member threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogImage {
    /// Absolute path the image was read from (the replay-source
    /// identity the store's per-file marks are keyed on).
    pub path: String,
    /// The raw Lasagna log bytes.
    pub bytes: Vec<u8>,
}

/// A fully committed source log awaiting checkpoint coverage before
/// it may be unlinked.
#[derive(Clone, Debug)]
struct RetiredLog {
    src: usize,
    path: String,
    /// Commit sequence at which the log became fully committed; the
    /// log is removable once the retention floor reaches it.
    retired_seq: u64,
}

/// The Waldo daemon state.
pub struct Waldo {
    /// The database Waldo maintains and serves to the query engine.
    pub db: Store,
    pid: Pid,
    processed_logs: u64,
    /// Open fd of the database WAL file, when durability is attached:
    /// every group commit appends its frame here and fsyncs.
    db_fd: Option<Fd>,
    /// Commit frames that failed to persist (write or fsync error).
    wal_errors: u64,
    /// True while the latest commit frame has not been durably
    /// persisted; unlinking is blocked until a (re)persist succeeds.
    frame_dirty: bool,
    /// The durable home (`wal` + `checkpoints/`), when attached via
    /// [`Waldo::attach_db_dir`]. `None` = legacy device or
    /// memory-only; no checkpoints, no log retention.
    db_dir: Option<String>,
    /// Bytes appended to the WAL since its last truncation (drives
    /// the `checkpoint_wal_bytes` trigger).
    wal_len: u64,
    /// Group commits since the last published checkpoint (drives the
    /// `checkpoint_commits` trigger).
    commits_since_checkpoint: u64,
    /// The newest published manifest; its segment refs make the next
    /// checkpoint incremental.
    last_manifest: Option<Manifest>,
    /// Manifest sequences retained on disk, ascending. Once a full
    /// complement of `keep_checkpoints` exists, the oldest of them is
    /// the **retention floor** (see [`Waldo::checkpoint`] internals):
    /// logs retired at or below it survive in every checkpoint a
    /// restart could fall back to. Until then nothing is unlinked.
    retained: Vec<u64>,
    /// Fully committed logs gated on the retention floor.
    retired_logs: Vec<RetiredLog>,
    /// Logs drained by [`Waldo::ingest_images_offline`] whose
    /// retirement (unlink / retention queueing) is deferred to the
    /// next [`Waldo::flush_durable`] — offline ingest runs without a
    /// kernel, so it cannot unlink. `(source handle, path, total
    /// entries)`, in drain order.
    pending_retire: Vec<(usize, String, usize)>,
    /// True from manifest publication until truncation, garbage
    /// collection and covered-log unlinking complete — a failure in
    /// that window is retried by the next [`Waldo::checkpoint`] call
    /// even when there is nothing new to publish.
    post_publish_pending: bool,
    ckpt_stats: CheckpointStats,
    restart_report: Option<RestartReport>,
    /// Logs whose parse stopped at a truncated tail (clean cut inside
    /// a frame) — the detection counter for log-truncation tampers.
    log_tails_truncated: u64,
    /// Logs whose parse stopped at a corrupt frame (CRC mismatch) —
    /// the detection counter for log bit-flip tampers.
    log_tails_corrupt: u64,
    /// Cumulative planner counters for queries served by this daemon.
    query_ops: QueryOps,
    scope: provscope::Scope,
}

impl Waldo {
    /// Creates a daemon running as `pid`, with the default storage
    /// configuration. The caller must exempt the pid from provenance
    /// observation (otherwise Waldo's own reads of the log would
    /// generate provenance about provenance).
    pub fn new(pid: Pid) -> Waldo {
        Waldo::with_config(pid, WaldoConfig::default())
    }

    /// Creates a daemon with explicit storage tuning.
    pub fn with_config(pid: Pid, cfg: WaldoConfig) -> Waldo {
        Waldo {
            db: Store::with_config(cfg),
            pid,
            processed_logs: 0,
            db_fd: None,
            wal_errors: 0,
            frame_dirty: false,
            db_dir: None,
            wal_len: 0,
            commits_since_checkpoint: 0,
            last_manifest: None,
            retained: Vec::new(),
            retired_logs: Vec::new(),
            pending_retire: Vec::new(),
            post_publish_pending: false,
            ckpt_stats: CheckpointStats::default(),
            restart_report: None,
            log_tails_truncated: 0,
            log_tails_corrupt: 0,
            query_ops: QueryOps::default(),
            scope: provscope::Scope::default(),
        }
    }

    /// Attaches a tracing scope. The daemon records its drain /
    /// group-commit / WAL-persist / checkpoint / query work in it,
    /// and links each ingested group frame to the trace of the
    /// disclosure transaction that produced it (the frame's batch id
    /// *is* the trace id).
    pub fn set_scope(&mut self, scope: provscope::Scope) {
        self.scope = scope;
    }

    /// Serves one PQL query from the daemon's database through the
    /// planned, index-backed pipeline (`pql::plan`), accumulating the
    /// planner counters into [`Waldo::query_ops`]. This is the query
    /// path of the paper's §5.6 — "Waldo is also responsible for
    /// accessing the database on behalf of the query engine" — now
    /// with predicate pushdown into the store's secondary indexes.
    pub fn query(&mut self, text: &str) -> Result<pql::QueryOutput, pql::PqlError> {
        let span = self.scope.open("waldo", "query");
        let out = pql::query_traced(text, &self.db, &self.scope);
        self.scope.close(span);
        let out = out?;
        self.query_ops.queries += 1;
        self.query_ops.planner.absorb(&out.stats);
        Ok(out)
    }

    /// Cumulative query/planner counters for this daemon's lifetime.
    pub fn query_ops(&self) -> QueryOps {
        self.query_ops
    }

    /// Adopts a database that survived a daemon restart (the committed
    /// state of a crashed predecessor). Staged-but-uncommitted entries
    /// are discarded — the next poll replays them from the logs that
    /// were, by design, not yet unlinked.
    pub fn resume(pid: Pid, db: Store) -> Waldo {
        db.drop_staged();
        let cfg = db.config();
        let mut w = Waldo::with_config(pid, cfg);
        w.db = db;
        w
    }

    /// Cold start after a **machine** crash: nothing survives in
    /// memory, only `db_dir` (WAL + checkpoints) and the retained
    /// Lasagna logs on disk. Loads the newest complete checkpoint
    /// (falling back past damaged ones), validates the surviving WAL
    /// frames, reattaches the WAL, then replays retained logs from
    /// the per-log high-water marks by rescanning each mount in
    /// `mount_paths` (`"/"` or `"/mnt/x"`). The result provably
    /// equals the store of a daemon that never crashed — see the
    /// crash matrix in `tests/group_commit.rs`.
    ///
    /// With no loadable checkpoint the store starts empty and
    /// everything is rebuilt from the logs (full replay) — but only
    /// when the checkpoint directory holds no manifests at all. A
    /// directory with manifests that are *all* unreadable is
    /// [`RestartError::NoReadableCheckpoint`], and a `db_dir` that
    /// does not exist is [`RestartError::MissingDbDir`]: both would
    /// otherwise masquerade data loss (or tampering) as a clean cold
    /// start. Other errors mean the durable home could not be
    /// attached (directories or WAL unusable) — restarting without
    /// durability would silently unlink replayed logs, so that is
    /// refused rather than degraded.
    pub fn restart(
        pid: Pid,
        kernel: &mut Kernel,
        cfg: WaldoConfig,
        db_dir: &str,
        mount_paths: &[&str],
    ) -> Result<Waldo, RestartError> {
        if kernel.stat(pid, db_dir).is_err() {
            return Err(RestartError::MissingDbDir {
                path: db_dir.to_string(),
            });
        }
        let dir = checkpoint::checkpoint_dir(db_dir);
        let mut report = RestartReport::default();
        let mut w = Waldo::with_config(pid, cfg);
        if let Some(loaded) = checkpoint::load_latest(kernel, pid, &dir, cfg) {
            report.loaded_seq = Some(loaded.manifest.seq);
            report.checkpoints_skipped = loaded.skipped;
            w.db = loaded.store;
            w.last_manifest = Some(loaded.manifest);
        } else {
            let manifests = checkpoint::list_manifests(kernel, pid, &dir).len();
            if manifests > 0 {
                return Err(RestartError::NoReadableCheckpoint { manifests });
            }
        }
        let wal = checkpoint::wal_path(db_dir);
        let wal_data = kernel.read_file(pid, &wal).unwrap_or_default();
        let (frames, wal_tail) = crate::wal::parse_wal(&wal_data);
        report.wal_frames = frames.len() as u64;
        report.wal_tail_torn = wal_tail != crate::wal::WalTail::Clean;
        let base = report.loaded_seq.unwrap_or(0);
        report.wal_frames_beyond_checkpoint = frames.iter().filter(|f| f.seq > base).count() as u64;
        // Reset the WAL before reattaching: frames at or below the
        // checkpoint are superseded by it, and frames beyond it
        // describe commits whose in-memory effects died with the
        // crash — the replay below re-derives them under fresh,
        // monotonic sequence numbers. Appending onto the stale frames
        // instead would duplicate sequences and double-count
        // `wal_len`. Gated on the file's *bytes*, not on parsed
        // frames: a torn partial frame (a crash mid-append) parses as
        // zero frames but would corrupt every frame appended after it.
        if !wal_data.is_empty() {
            checkpoint::reset_wal_temp(kernel, pid, &wal)?;
            checkpoint::rename_wal(kernel, pid, &wal)?;
            w.ckpt_stats.frames_truncated += frames.len() as u64;
        }
        // attach_db_dir below also deletes every manifest ahead of the
        // store's restored history — which here is exactly the set of
        // damaged manifests load_latest tried and skipped. They can
        // never load again, and left on disk they would inflate the
        // retention floor and shadow fresh checkpoints in GC.
        w.attach_db_dir(kernel, db_dir)?;
        // A manifest snapshots source marks *before* covered logs are
        // unlinked, so it can carry slots for files that no longer
        // exist; drop those tombstones like the uncrashed daemon did
        // when it unlinked the files.
        for (slot, (path, _)) in w.db.source_state().into_iter().enumerate() {
            if !path.is_empty() && kernel.stat(pid, &path).is_err() {
                w.db.forget_source(slot);
            }
        }
        let mut replayed = 0usize;
        for mount in mount_paths {
            replayed += w.recover_volume(kernel, mount).applied;
        }
        report.replayed_entries = replayed;
        w.restart_report = Some(report);
        Ok(w)
    }

    /// What the last [`Waldo::restart`] found (`None` on daemons that
    /// never cold-started).
    pub fn restart_report(&self) -> Option<&RestartReport> {
        self.restart_report.as_ref()
    }

    /// Attaches the legacy database durability device: `path` becomes
    /// the WAL file every group commit appends its frame to (and
    /// fsyncs). No checkpoints, no log retention — the PR 1 behavior,
    /// kept for comparison. Prefer [`Waldo::attach_db_dir`].
    pub fn attach_db_device(&mut self, kernel: &mut Kernel, path: &str) -> Result<(), FsError> {
        let fd = kernel.open(self.pid, path, OpenFlags::WRONLY_CREATE)?;
        self.db_fd = Some(fd);
        Ok(())
    }

    /// Attaches the daemon's durable home: `db_dir/wal` becomes the
    /// durability WAL (opened append, surviving restarts) and
    /// `db_dir/checkpoints` holds segments and manifests. Enables the
    /// checkpoint policy in [`WaldoConfig`] and gates log unlinking on
    /// checkpoint coverage.
    pub fn attach_db_dir(&mut self, kernel: &mut Kernel, db_dir: &str) -> Result<(), FsError> {
        kernel.mkdir_p(self.pid, db_dir)?;
        let ckpt = checkpoint::checkpoint_dir(db_dir);
        kernel.mkdir_p(self.pid, &ckpt)?;
        let wal = checkpoint::wal_path(db_dir);
        let seq_now = self.db.commit_seq();
        // A WAL holding frames ahead of this store's history (a
        // foreign incarnation's leftovers) or a torn tail must be
        // reset before appending: sequence numbers would duplicate,
        // the size trigger would fire off stale bytes, and truncation
        // (which drops frames *at or below* the checkpoint sequence)
        // would never release the stale suffix. Frames are pure
        // accounting — never recovery state — so a reset loses
        // nothing.
        let wal_data = kernel.read_file(self.pid, &wal).unwrap_or_default();
        if !wal_data.is_empty() {
            let (frames, tail) = crate::wal::parse_wal(&wal_data);
            if tail != crate::wal::WalTail::Clean || frames.iter().any(|f| f.seq > seq_now) {
                checkpoint::reset_wal_temp(kernel, self.pid, &wal)?;
                checkpoint::rename_wal(kernel, self.pid, &wal)?;
            }
        }
        let fd = kernel.open(self.pid, &wal, OpenFlags::APPEND_CREATE)?;
        self.db_fd = Some(fd);
        self.wal_len = kernel.stat(self.pid, &wal).map(|a| a.size).unwrap_or(0);
        // Manifests ahead of this store's own history are likewise
        // foreign (a fresh daemon attached to a stale directory — use
        // `Waldo::restart` to *adopt* checkpoints) or were tried and
        // found damaged by a restart's loader. They must be deleted,
        // not merely ignored: counted into the retention floor they
        // would unlink new, uncheckpointed logs; left on disk,
        // garbage collection would later prefer their high sequences
        // over this daemon's real checkpoints and a future restart
        // would resurrect the stale store.
        let mut retained = Vec::new();
        for seq in checkpoint::list_manifests(kernel, self.pid, &ckpt) {
            if seq <= seq_now {
                retained.push(seq);
            } else {
                checkpoint::remove_manifest(kernel, self.pid, &ckpt, seq);
            }
        }
        self.retained = retained;
        self.db_dir = Some(db_dir.to_string());
        Ok(())
    }

    /// Persists the latest commit frame: one append plus one fsync on
    /// the database device — the per-commit durability cost that group
    /// commit amortizes. Returns false (and counts the failure) if
    /// either operation errored; the caller must then keep the source
    /// logs so the commit remains replayable.
    fn persist_commit(&mut self, kernel: &mut Kernel) -> bool {
        let span = self.scope.open("waldo", "wal_persist");
        let ok = self.persist_commit_inner(kernel);
        self.scope.close(span);
        ok
    }

    fn persist_commit_inner(&mut self, kernel: &mut Kernel) -> bool {
        let Some(fd) = self.db_fd else {
            // Memory-only daemons have nothing to persist; a durable
            // daemon without a WAL descriptor is an error state (a
            // failed truncation that could not reopen) and must not
            // report false durability.
            if self.db_dir.is_some() {
                self.wal_errors += 1;
                return false;
            }
            return true;
        };
        let frame = self.db.last_commit_frame().to_vec();
        let wrote = kernel.write(self.pid, fd, &frame).is_ok();
        if wrote {
            // The bytes are in the file whether or not the fsync
            // below succeeds — the size trigger must track the file.
            self.wal_len += frame.len() as u64;
        }
        let ok = wrote && kernel.fsync(self.pid, fd).is_ok();
        if !ok {
            self.wal_errors += 1;
        }
        ok
    }

    /// Commits staged entries and persists the latest frame. Returns
    /// true when it is safe to retire fully committed source logs —
    /// i.e. the newest frame is durably on the WAL device. A frame
    /// whose persist failed earlier is retried here (each frame
    /// carries the complete current marks, so persisting the latest
    /// one supersedes any lost predecessor); until a persist succeeds,
    /// every call keeps returning false and no log is unlinked.
    fn commit_and_persist(&mut self, kernel: &mut Kernel, stats: &mut IngestStats) -> bool {
        let span = self.scope.open("waldo", "group_commit");
        let r = self.commit_and_persist_inner(kernel, stats);
        self.scope.close(span);
        r
    }

    fn commit_and_persist_inner(&mut self, kernel: &mut Kernel, stats: &mut IngestStats) -> bool {
        let before = self.db.commit_seq();
        self.db.commit_staged(stats);
        if self.db.commit_seq() != before {
            self.frame_dirty = true;
            self.commits_since_checkpoint += self.db.commit_seq() - before;
        }
        if self.frame_dirty && self.persist_commit(kernel) {
            self.frame_dirty = false;
        }
        !self.frame_dirty
    }

    /// Commit frames that failed to persist. Nonzero means some fully
    /// committed logs were retained instead of unlinked.
    pub fn wal_errors(&self) -> u64 {
        self.wal_errors
    }

    /// Checkpoint-subsystem counters (segments and bytes written, WAL
    /// frames truncated, logs retired).
    pub fn checkpoint_stats(&self) -> CheckpointStats {
        self.ckpt_stats
    }

    /// The daemon's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Number of log files processed so far.
    pub fn processed_logs(&self) -> u64 {
        self.processed_logs
    }

    /// Cumulative `(truncated, corrupt)` log-tail counts across every
    /// log this daemon has drained — the lifetime view of the
    /// per-poll [`IngestStats::tails_truncated`] /
    /// [`IngestStats::tails_corrupt`]. Nonzero means some log's tail
    /// was cut or damaged and its surviving prefix alone was
    /// ingested: the tamper-detection signal for log truncation and
    /// bit flips.
    pub fn log_tail_errors(&self) -> (u64, u64) {
        (self.log_tails_truncated, self.log_tails_corrupt)
    }

    // ---- checkpointing ----------------------------------------------------

    /// The retention floor: the sequence of the oldest checkpoint
    /// that survives garbage collection once a full complement of
    /// `keep_checkpoints` manifests exists — and 0 (retain
    /// everything) before then. Unlinking is gated on a *full*
    /// complement, not merely on the oldest manifest present:
    /// otherwise the first checkpoint alone would release its logs,
    /// and one damaged manifest would lose data — the configured
    /// tolerance is `keep_checkpoints - 1` damaged checkpoints.
    fn checkpoint_floor(&self) -> u64 {
        let keep = self.db.config().keep_checkpoints.max(1);
        if self.retained.len() >= keep {
            self.retained[self.retained.len() - keep]
        } else {
            0
        }
    }

    /// True when the configured policy asks for a checkpoint.
    fn should_checkpoint(&self) -> bool {
        if self.db_dir.is_none() {
            return false;
        }
        let cfg = self.db.config();
        (cfg.checkpoint_commits > 0 && self.commits_since_checkpoint >= cfg.checkpoint_commits)
            || (cfg.checkpoint_wal_bytes > 0 && self.wal_len >= cfg.checkpoint_wal_bytes)
    }

    /// Publishes a checkpoint now (segments for shards that advanced,
    /// manifest rename, WAL truncation, garbage collection, covered-
    /// log unlinking). Returns `Ok(true)` if one was published,
    /// `Ok(false)` if there was nothing new to checkpoint or no
    /// database directory is attached.
    pub fn checkpoint(&mut self, kernel: &mut Kernel) -> Result<bool, FsError> {
        self.checkpoint_inner(kernel, None)
    }

    /// Crash-injection variant of [`Waldo::checkpoint`] for the crash
    /// matrix: performs the checkpoint only up to `crash`, then stops
    /// as a simulated machine crash would.
    #[doc(hidden)]
    pub fn checkpoint_crashing_at(
        &mut self,
        kernel: &mut Kernel,
        crash: CheckpointCrash,
    ) -> Result<(), FsError> {
        self.checkpoint_inner(kernel, Some(crash)).map(|_| ())
    }

    fn checkpoint_inner(
        &mut self,
        kernel: &mut Kernel,
        crash: Option<CheckpointCrash>,
    ) -> Result<bool, FsError> {
        let span = self.scope.open("waldo", "checkpoint");
        let r = self.checkpoint_guts(kernel, crash);
        self.scope.close(span);
        r
    }

    fn checkpoint_guts(
        &mut self,
        kernel: &mut Kernel,
        crash: Option<CheckpointCrash>,
    ) -> Result<bool, FsError> {
        let Some(db_dir) = self.db_dir.clone() else {
            return Ok(false);
        };
        let seq = self.db.commit_seq();
        if seq == 0 || self.last_manifest.as_ref().map(|m| m.seq) == Some(seq) {
            // Nothing new to publish — but a prior attempt may have
            // errored after publication (a WAL rename failure),
            // leaving truncation, garbage collection and covered-log
            // unlinking undone. Finish that work now instead of
            // holding the WAL and retained logs hostage until new
            // commits arrive.
            if self.post_publish_pending {
                self.finish_checkpoint(kernel, &db_dir, crash)?;
            }
            return Ok(false);
        }
        let dir = checkpoint::checkpoint_dir(&db_dir);
        let (segments, written, bytes) = checkpoint::write_segments(
            kernel,
            self.pid,
            &self.db,
            &dir,
            self.last_manifest.as_ref(),
        )?;
        self.ckpt_stats.segments_written += written;
        self.ckpt_stats.segment_bytes += bytes;
        if crash == Some(CheckpointCrash::AfterSegments) {
            return Ok(false);
        }
        let (txns, commit_txn) = self.db.open_txn_state();
        let (batch_hw, replay_skip) = self.db.batch_state();
        let manifest = Manifest {
            seq,
            segments,
            txns,
            commit_txn,
            sources: self.db.source_state(),
            batch_hw,
            replay_skip,
        };
        checkpoint::write_temp_manifest(kernel, self.pid, &dir, &manifest)?;
        if crash == Some(CheckpointCrash::AfterTempManifest) {
            return Ok(false);
        }
        checkpoint::rename_manifest(kernel, self.pid, &dir, seq)?;
        self.ckpt_stats.checkpoints += 1;
        self.last_manifest = Some(manifest);
        self.commits_since_checkpoint = 0;
        self.post_publish_pending = true;
        if crash == Some(CheckpointCrash::AfterPublish) {
            return Ok(true);
        }
        self.finish_checkpoint(kernel, &db_dir, crash)?;
        Ok(true)
    }

    /// The post-publication phase of a checkpoint: WAL truncation,
    /// garbage collection and covered-log unlinking. Idempotent, so a
    /// failure part-way (or a simulated crash) can be retried by a
    /// later [`Waldo::checkpoint`] call.
    fn finish_checkpoint(
        &mut self,
        kernel: &mut Kernel,
        db_dir: &str,
        crash: Option<CheckpointCrash>,
    ) -> Result<(), FsError> {
        let seq = self
            .last_manifest
            .as_ref()
            .map(|m| m.seq)
            .expect("finish_checkpoint only runs after a publication");
        let dir = checkpoint::checkpoint_dir(db_dir);
        // Truncate the WAL: frames at or below the manifest's
        // sequence are superseded by the checkpoint. Written to a
        // temporary name and renamed, so a crash leaves either WAL
        // intact; the open descriptor must be reopened because the
        // rename replaces the inode.
        let wal = checkpoint::wal_path(db_dir);
        let dropped = checkpoint::truncate_wal_temp(kernel, self.pid, &wal, seq)?;
        if crash == Some(CheckpointCrash::MidWalTruncate) {
            return Ok(());
        }
        if let Some(fd) = self.db_fd.take() {
            let _ = kernel.close(self.pid, fd);
        }
        let renamed = checkpoint::rename_wal(kernel, self.pid, &wal);
        // Reopen the WAL regardless of the rename's outcome — on
        // failure the original file still sits at `wal`, and leaving
        // `db_fd` empty would make `persist_commit` report false
        // durability ever after.
        self.db_fd = Some(kernel.open(self.pid, &wal, OpenFlags::APPEND_CREATE)?);
        renamed?;
        self.ckpt_stats.frames_truncated += dropped;
        self.wal_len = kernel.stat(self.pid, &wal).map(|a| a.size).unwrap_or(0);
        if crash == Some(CheckpointCrash::AfterWalTruncate) {
            return Ok(());
        }
        self.retained =
            checkpoint::collect_garbage(kernel, self.pid, &dir, self.db.config().keep_checkpoints);
        self.unlink_covered(kernel);
        self.post_publish_pending = false;
        Ok(())
    }

    // ---- polling ----------------------------------------------------------

    /// Polls one volume for rotated logs, ingesting (in group-commit
    /// batches that may span files) and removing each fully committed
    /// log once checkpoint coverage allows. `mount_path` is the
    /// volume's mount point (`"/"` or `"/mnt/x"`).
    pub fn poll_volume(
        &mut self,
        kernel: &mut Kernel,
        mount: MountId,
        mount_path: &str,
    ) -> IngestStats {
        let rotated = match kernel.dpapi_at(mount) {
            Some(d) => d.take_log_rotations(),
            None => return IngestStats::default(),
        };
        let paths: Vec<String> = rotated
            .into_iter()
            .map(|rel| {
                if mount_path == "/" {
                    format!("/{rel}")
                } else {
                    format!("{mount_path}/{rel}")
                }
            })
            .collect();
        self.drain_logs(kernel, paths)
    }

    /// Reads, ingests and unlinks one log file, committing in the
    /// configured batches. The observable database matches the
    /// original record-at-a-time daemon; only commit granularity (and
    /// therefore durability cost) differs.
    pub fn ingest_log_file(&mut self, kernel: &mut Kernel, path: &str) -> IngestStats {
        self.drain_logs(kernel, vec![path.to_string()])
    }

    /// The shared ingestion loop: stages each log's entries (skipping
    /// any prefix a pre-crash predecessor already committed),
    /// group-commits every `ingest_batch` entries — batches may span
    /// files — retires each log as soon as all of its entries have
    /// committed, and publishes checkpoints as the policy fires.
    fn drain_logs(&mut self, kernel: &mut Kernel, paths: Vec<String>) -> IngestStats {
        let drain_span = self.scope.open("waldo", "drain_logs");
        let mut total = IngestStats::default();
        // (source handle, path, total entries) of each log read so
        // far, for post-commit retirement.
        let mut files: Vec<(usize, String, usize)> = Vec::new();
        // Linked per-batch ingest spans, open between a group frame's
        // TxnBegin and its TxnEnd — joining the trace of the
        // disclosure transaction whose batch id frames the group.
        let mut batch_spans: Vec<(u64, provscope::SpanHandle)> = Vec::new();
        let batch = self.db.config().ingest_batch.max(1);
        for abs in paths {
            let Ok(bytes) = kernel.read_file(self.pid, &abs) else {
                continue;
            };
            let (entries, tail) = lasagna::parse_log(&bytes);
            match tail {
                lasagna::LogTail::Clean => {}
                lasagna::LogTail::Truncated { .. } => {
                    total.tails_truncated += 1;
                    self.log_tails_truncated += 1;
                }
                lasagna::LogTail::Corrupt { .. } => {
                    total.tails_corrupt += 1;
                    self.log_tails_corrupt += 1;
                }
            }
            let (src, mark) = self.db.register_source(&abs);
            if mark == 0 {
                // Fresh file: a new log image starts a new transaction
                // scope. (A nonzero mark means we are resuming a
                // partially committed file after a crash — the store's
                // committed transaction context already sits exactly
                // at the mark, so no reset.)
                self.db.begin_stream();
            }
            let n = entries.len();
            for e in entries.into_iter().skip(mark) {
                if self.scope.is_enabled() {
                    match &e {
                        lasagna::LogEntry::TxnBegin { id } => {
                            let h = self.scope.open_linked(
                                "waldo",
                                "ingest_batch",
                                provscope::TraceId(*id),
                            );
                            batch_spans.push((*id, h));
                        }
                        lasagna::LogEntry::TxnEnd { id } => {
                            if let Some(pos) = batch_spans.iter().rposition(|(b, _)| b == id) {
                                let (_, h) = batch_spans.remove(pos);
                                self.scope.close(h);
                            }
                        }
                        _ => {}
                    }
                }
                self.db.stage(e, Some(src));
                if self.db.staged_len() >= batch && self.commit_and_persist(kernel, &mut total) {
                    self.retire_committed(kernel, &mut files);
                    self.maybe_checkpoint(kernel, &mut total);
                }
            }
            files.push((src, abs, n));
            self.processed_logs += 1;
        }
        if self.commit_and_persist(kernel, &mut total) {
            self.retire_committed(kernel, &mut files);
            self.maybe_checkpoint(kernel, &mut total);
        }
        // Frames torn before their TxnEnd leave their span open;
        // close them so the trace stays well-formed.
        for (_, h) in batch_spans {
            self.scope.close(h);
        }
        self.scope.close(drain_span);
        total
    }

    /// Ingests one raw Lasagna log image that arrives **by value**
    /// rather than through the file system — the PA-NFS server drains
    /// its export's logs ([`NfsServer::drain_provenance_logs`]) and
    /// hands the images to the server-side daemon. Semantically one
    /// [`Waldo::ingest_log_file`] of an unnamed, already-unlinked log:
    /// entries are staged without a replay source (the image cannot be
    /// re-read after a crash) and group-committed in the configured
    /// batches.
    ///
    /// [`NfsServer::drain_provenance_logs`]: ../pa_nfs/struct.NfsServer.html#method.drain_provenance_logs
    pub fn ingest_log_image(&mut self, kernel: &mut Kernel, image: &[u8]) -> IngestStats {
        let drain_span = self.scope.open("waldo", "drain_logs");
        let mut total = IngestStats::default();
        let mut batch_spans: Vec<(u64, provscope::SpanHandle)> = Vec::new();
        let batch = self.db.config().ingest_batch.max(1);
        let (entries, tail) = lasagna::parse_log(image);
        match tail {
            lasagna::LogTail::Clean => {}
            lasagna::LogTail::Truncated { .. } => {
                total.tails_truncated += 1;
                self.log_tails_truncated += 1;
            }
            lasagna::LogTail::Corrupt { .. } => {
                total.tails_corrupt += 1;
                self.log_tails_corrupt += 1;
            }
        }
        self.db.begin_stream();
        for e in entries {
            if self.scope.is_enabled() {
                match &e {
                    lasagna::LogEntry::TxnBegin { id } => {
                        let h = self.scope.open_linked(
                            "waldo",
                            "ingest_batch",
                            provscope::TraceId(*id),
                        );
                        batch_spans.push((*id, h));
                    }
                    lasagna::LogEntry::TxnEnd { id } => {
                        if let Some(pos) = batch_spans.iter().rposition(|(b, _)| b == id) {
                            let (_, h) = batch_spans.remove(pos);
                            self.scope.close(h);
                        }
                    }
                    _ => {}
                }
            }
            self.db.stage(e, None);
            if self.db.staged_len() >= batch {
                self.commit_and_persist(kernel, &mut total);
            }
        }
        self.commit_and_persist(kernel, &mut total);
        self.processed_logs += 1;
        for (_, h) in batch_spans {
            self.scope.close(h);
        }
        self.scope.close(drain_span);
        total
    }

    /// The kernel-free half of `Waldo::drain_logs`: stages and
    /// group-commits pre-read log images **without touching the
    /// kernel**, so it can run on a worker thread while the
    /// coordinator keeps the (single-threaded) kernel. The store this
    /// produces is byte-identical to `drain_logs` over the same files
    /// in the same order — entries stage at the same positions and
    /// commits fire at the same batch boundaries — only durability
    /// (WAL persist), log retirement and checkpoints are deferred to
    /// the next [`Waldo::flush_durable`] on the coordinator. Each
    /// commit frame carries the complete current replay marks, so
    /// persisting only the final frame supersedes the skipped ones;
    /// frames are accounting, never recovery state.
    pub fn ingest_images_offline(&mut self, images: &[LogImage]) -> IngestStats {
        let drain_span = self.scope.open("waldo", "drain_logs");
        let mut total = IngestStats::default();
        let mut batch_spans: Vec<(u64, provscope::SpanHandle)> = Vec::new();
        let batch = self.db.config().ingest_batch.max(1);
        for image in images {
            let (entries, tail) = lasagna::parse_log(&image.bytes);
            match tail {
                lasagna::LogTail::Clean => {}
                lasagna::LogTail::Truncated { .. } => {
                    total.tails_truncated += 1;
                    self.log_tails_truncated += 1;
                }
                lasagna::LogTail::Corrupt { .. } => {
                    total.tails_corrupt += 1;
                    self.log_tails_corrupt += 1;
                }
            }
            let (src, mark) = self.db.register_source(&image.path);
            if mark == 0 {
                self.db.begin_stream();
            }
            let n = entries.len();
            for e in entries.into_iter().skip(mark) {
                if self.scope.is_enabled() {
                    match &e {
                        lasagna::LogEntry::TxnBegin { id } => {
                            let h = self.scope.open_linked(
                                "waldo",
                                "ingest_batch",
                                provscope::TraceId(*id),
                            );
                            batch_spans.push((*id, h));
                        }
                        lasagna::LogEntry::TxnEnd { id } => {
                            if let Some(pos) = batch_spans.iter().rposition(|(b, _)| b == id) {
                                let (_, h) = batch_spans.remove(pos);
                                self.scope.close(h);
                            }
                        }
                        _ => {}
                    }
                }
                self.db.stage(e, Some(src));
                if self.db.staged_len() >= batch {
                    self.commit_offline(&mut total);
                }
            }
            self.pending_retire.push((src, image.path.clone(), n));
            self.processed_logs += 1;
        }
        self.commit_offline(&mut total);
        for (_, h) in batch_spans {
            self.scope.close(h);
        }
        self.scope.close(drain_span);
        total
    }

    /// Commits staged entries without persisting — the worker-thread
    /// half of [`Waldo::commit_and_persist`]. Leaves `frame_dirty`
    /// set so the coordinator's [`Waldo::flush_durable`] persists the
    /// (cumulative) latest frame.
    fn commit_offline(&mut self, stats: &mut IngestStats) {
        let span = self.scope.open("waldo", "group_commit");
        let before = self.db.commit_seq();
        self.db.commit_staged(stats);
        if self.db.commit_seq() != before {
            self.frame_dirty = true;
            self.commits_since_checkpoint += self.db.commit_seq() - before;
        }
        self.scope.close(span);
    }

    /// The coordinator-side completion of offline ingest: persists
    /// the latest commit frame (one append + fsync — the durability
    /// cost the deferral amortized), retires the logs
    /// [`Waldo::ingest_images_offline`] fully committed, and runs the
    /// checkpoint policy. Returns the checkpoint counters the flush
    /// produced. A persist failure leaves everything queued — no log
    /// is unlinked until a later flush (or ordinary drain) succeeds,
    /// exactly like the sequential path.
    pub fn flush_durable(&mut self, kernel: &mut Kernel) -> IngestStats {
        let mut stats = IngestStats::default();
        if self.frame_dirty && self.persist_commit(kernel) {
            self.frame_dirty = false;
        }
        if !self.frame_dirty {
            let mut files = std::mem::take(&mut self.pending_retire);
            self.retire_committed(kernel, &mut files);
            self.pending_retire = files;
            self.maybe_checkpoint(kernel, &mut stats);
        }
        stats
    }

    fn maybe_checkpoint(&mut self, kernel: &mut Kernel, stats: &mut IngestStats) {
        if self.should_checkpoint() {
            match self.checkpoint(kernel) {
                Ok(true) => stats.checkpoints += 1,
                Ok(false) => {}
                // A failed checkpoint must be visible: the WAL bound
                // and log retirement silently stop holding otherwise.
                Err(_) => self.ckpt_stats.failures += 1,
            }
        }
    }

    /// Rescans a volume's log directory after a restart and replays
    /// every surviving *closed* log (all `log.N` except the
    /// highest-numbered, which is the active log Lasagna is still
    /// appending to). `poll_volume` cannot do this: it consumes the
    /// in-memory rotation queue, which dies with the crashed daemon.
    /// Logs a predecessor fully committed are skipped via their
    /// recorded marks; partially committed ones resume from their
    /// high-water mark.
    pub fn recover_volume(&mut self, kernel: &mut Kernel, mount_path: &str) -> IngestStats {
        let dir = if mount_path == "/" {
            "/.pass".to_string()
        } else {
            format!("{mount_path}/.pass")
        };
        let Ok(entries) = kernel.readdir(self.pid, &dir) else {
            return IngestStats::default();
        };
        let mut logs: Vec<u64> = entries
            .iter()
            .filter_map(|e| e.name.strip_prefix("log.").and_then(|n| n.parse().ok()))
            .collect();
        logs.sort_unstable();
        logs.pop(); // the active log stays
        let paths = logs.into_iter().map(|n| format!("{dir}/log.{n}")).collect();
        self.drain_logs(kernel, paths)
    }

    /// Moves fully committed logs out of the working set: without a
    /// database directory they are unlinked immediately (nothing more
    /// durable than the in-memory store exists to cover them); with
    /// one they enter the retirement queue until the retention floor
    /// covers them — unlinking a log before a checkpoint captures its
    /// effects would make a machine crash unrecoverable.
    fn retire_committed(&mut self, kernel: &mut Kernel, files: &mut Vec<(usize, String, usize)>) {
        let durable = self.db_dir.is_some();
        let seq = self.db.commit_seq();
        files.retain(|(src, path, total)| {
            if self.db.source_fully_committed(*src, *total) {
                if durable {
                    // The same log can be drained twice while it
                    // awaits coverage (a rotation-queue entry after a
                    // restart already replayed it); queueing it twice
                    // would unlink and forget it twice.
                    if !self.retired_logs.iter().any(|l| l.src == *src) {
                        self.retired_logs.push(RetiredLog {
                            src: *src,
                            path: path.clone(),
                            retired_seq: seq,
                        });
                    }
                } else if kernel.unlink(self.pid, path).is_ok() {
                    self.db.forget_source(*src);
                }
                false
            } else {
                true
            }
        });
        self.unlink_covered(kernel);
    }

    /// Unlinks retired logs the retention floor has covered.
    fn unlink_covered(&mut self, kernel: &mut Kernel) {
        if self.db_dir.is_none() || self.retired_logs.is_empty() {
            return;
        }
        let floor = self.checkpoint_floor();
        let retired = std::mem::take(&mut self.retired_logs);
        for log in retired {
            // Forget the replay mark only once the file is really
            // gone: forgetting a surviving log would replay it from
            // scratch on the next recovery, duplicating its records.
            if log.retired_seq <= floor && kernel.unlink(self.pid, &log.path).is_ok() {
                self.db.forget_source(log.src);
                self.ckpt_stats.logs_retired += 1;
            } else {
                // Not yet covered — or covered but the unlink
                // failed; either way, retry on a later sweep.
                self.retired_logs.push(log);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Attribute, Value};
    use passv2::System;

    /// End-to-end: syscalls → observer → Lasagna log → Waldo → DB.
    #[test]
    fn pipeline_from_syscalls_to_database() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("/usr/bin/convert");
        sys.kernel
            .execve(
                pid,
                "/usr/bin/convert",
                &["convert".into(), "in".into(), "out".into()],
                &[],
            )
            .ok();
        sys.kernel
            .write_file(pid, "/in.dat", b"input bytes")
            .unwrap();
        let data = sys.kernel.read_file(pid, "/in.dat").unwrap();
        sys.kernel.write_file(pid, "/out.dat", &data).unwrap();
        sys.kernel.exit(pid);

        let mut waldo = sys.spawn_waldo();
        for (mount, logs) in sys.rotate_all_logs() {
            let _ = mount;
            for log in logs {
                waldo.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        assert!(waldo.processed_logs() >= 1);

        // The output file is in the database, named, with an ancestry
        // that reaches the input file through the process.
        let outs = waldo.db.find_by_name("/out.dat");
        assert_eq!(outs.len(), 1, "output file must be indexed by name");
        let out_obj = waldo.db.object(outs[0]).unwrap();
        let v = dpapi::Version(out_obj.current);
        let anc = waldo.db.ancestors(dpapi::ObjectRef::new(outs[0], v));
        let ins = waldo.db.find_by_name("/in.dat");
        assert_eq!(ins.len(), 1);
        assert!(
            anc.iter().any(|r| r.pnode == ins[0]),
            "ancestry of /out.dat must include /in.dat; got {anc:?}"
        );
        // The process appears as a typed object on the path.
        let procs = waldo.db.find_by_type("PROC");
        assert!(
            !procs.is_empty(),
            "the writing process must be materialized"
        );
        assert!(anc.iter().any(|r| procs.contains(&r.pnode)));
    }

    #[test]
    fn poll_volume_drains_rotations_and_removes_logs() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("sh");
        sys.kernel.write_file(pid, "/f", b"x").unwrap();
        let mut waldo = sys.spawn_waldo();

        let (_, m, _) = sys.volumes[0];
        // Force rotation through the volume, then poll.
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
        let stats = waldo.poll_volume(&mut sys.kernel, m, "/");
        assert!(stats.applied > 0);
        // The processed log is gone from the log directory.
        let entries = sys.kernel.readdir(waldo.pid(), "/.pass").unwrap();
        assert_eq!(
            entries.iter().filter(|e| e.name == "log.0").count(),
            0,
            "processed log must be unlinked"
        );
        // Second poll: nothing new.
        let stats = waldo.poll_volume(&mut sys.kernel, m, "/");
        assert_eq!(stats.applied, 0);
    }

    /// With a database directory attached, a fully committed log is
    /// retained until a checkpoint covers it, then unlinked.
    #[test]
    fn durable_daemon_retains_logs_until_checkpoint_covers_them() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("sh");
        sys.kernel.write_file(pid, "/f", b"x").unwrap();
        let (_, m, _) = sys.volumes[0];
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();

        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let mut waldo = Waldo::with_config(
            waldo_pid,
            WaldoConfig {
                checkpoint_commits: 0, // manual checkpoints only
                checkpoint_wal_bytes: 0,
                // Single-checkpoint retention: the first checkpoint
                // alone releases covered logs (keep 2, the default,
                // would hold them until a second one exists).
                keep_checkpoints: 1,
                ..WaldoConfig::default()
            },
        );
        waldo.attach_db_dir(&mut sys.kernel, "/waldo-db").unwrap();
        waldo.poll_volume(&mut sys.kernel, m, "/");
        // Fully committed, but no checkpoint yet: the log survives.
        let names = |sys: &mut System| -> Vec<String> {
            sys.kernel
                .readdir(waldo_pid, "/.pass")
                .unwrap()
                .into_iter()
                .map(|e| e.name)
                .collect()
        };
        assert!(
            names(&mut sys).contains(&"log.0".to_string()),
            "log must be retained until checkpointed"
        );
        assert!(waldo.checkpoint(&mut sys.kernel).unwrap());
        assert!(
            !names(&mut sys).contains(&"log.0".to_string()),
            "covered log must be unlinked after the checkpoint"
        );
        assert_eq!(waldo.checkpoint_stats().logs_retired, 1);
        // Nothing new: a second checkpoint is a no-op.
        assert!(!waldo.checkpoint(&mut sys.kernel).unwrap());
    }

    /// A fresh daemon attached to a directory holding a foreign
    /// incarnation's checkpoints deletes them instead of inheriting
    /// their sequences: otherwise their high retention floor would
    /// unlink new logs and a later restart would resurrect the stale
    /// store over the live one.
    #[test]
    fn fresh_attach_discards_foreign_checkpoints() {
        let mut sys = System::single_volume();
        let pid = sys.kernel.spawn_init("setup");
        sys.pass.exempt(pid);
        sys.kernel.mkdir_p(pid, "/waldo-db/checkpoints").unwrap();
        sys.kernel
            .write_file(pid, "/waldo-db/checkpoints/manifest.100", b"stale garbage")
            .unwrap();
        sys.kernel
            .write_file(pid, "/waldo-db/wal", b"torn foreign frames")
            .unwrap();

        let waldo_pid = sys.kernel.spawn_init("waldo");
        sys.pass.exempt(waldo_pid);
        let mut waldo = Waldo::with_config(
            waldo_pid,
            WaldoConfig {
                checkpoint_commits: 0,
                checkpoint_wal_bytes: 0,
                keep_checkpoints: 1,
                ..WaldoConfig::default()
            },
        );
        waldo.attach_db_dir(&mut sys.kernel, "/waldo-db").unwrap();
        let names: Vec<String> = sys
            .kernel
            .readdir(waldo_pid, "/waldo-db/checkpoints")
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert!(
            !names.contains(&"manifest.100".to_string()),
            "foreign manifest must be deleted at attach"
        );
        assert_eq!(
            sys.kernel.stat(waldo_pid, "/waldo-db/wal").unwrap().size,
            0,
            "foreign/torn WAL must be reset at attach"
        );

        // The daemon's own first checkpoint proceeds normally and a
        // cold restart loads it, not the (deleted) foreign one.
        let worker = sys.spawn("sh");
        sys.kernel.write_file(worker, "/fresh", b"x").unwrap();
        let (_, m, _) = sys.volumes[0];
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
        waldo.poll_volume(&mut sys.kernel, m, "/");
        assert!(waldo.checkpoint(&mut sys.kernel).unwrap());
        let images = waldo.db.segment_images();
        let seq = waldo.db.commit_seq();
        drop(waldo);
        let pid2 = sys.kernel.spawn_init("waldo2");
        sys.pass.exempt(pid2);
        let cfg = WaldoConfig {
            checkpoint_commits: 0,
            checkpoint_wal_bytes: 0,
            keep_checkpoints: 1,
            ..WaldoConfig::default()
        };
        let restarted = Waldo::restart(pid2, &mut sys.kernel, cfg, "/waldo-db", &["/"]).unwrap();
        assert_eq!(restarted.restart_report().unwrap().loaded_seq, Some(seq));
        assert_eq!(restarted.db.segment_images(), images);
    }

    /// A tiny ingest batch forces commits (and unlinks) that straddle
    /// log files; the resulting database is identical to a one-shot
    /// ingest.
    #[test]
    fn small_batches_span_files_and_match_one_shot_ingest() {
        let run = |cfg: WaldoConfig| {
            let mut sys = System::single_volume();
            let pid = sys.spawn("sh");
            for i in 0..10 {
                sys.kernel
                    .write_file(pid, &format!("/f{i}"), b"contents")
                    .unwrap();
            }
            let (_, m, _) = sys.volumes[0];
            sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
            let waldo_pid = sys.kernel.spawn_init("waldo");
            sys.pass.exempt(waldo_pid);
            let mut waldo = Waldo::with_config(waldo_pid, cfg);
            let stats = waldo.poll_volume(&mut sys.kernel, m, "/");
            (waldo, stats)
        };
        let (batched, bstats) = run(WaldoConfig {
            shards: 8,
            ingest_batch: 3,
            ancestry_cache: 0,
            ..WaldoConfig::default()
        });
        let (oneshot, ostats) = run(WaldoConfig {
            shards: 1,
            ingest_batch: 1 << 20,
            ancestry_cache: 0,
            ..WaldoConfig::default()
        });
        assert_eq!(bstats.applied, ostats.applied);
        assert!(bstats.group_commits > ostats.group_commits);
        assert_eq!(batched.db.object_count(), oneshot.db.object_count());
        assert_eq!(batched.db.size(), oneshot.db.size());
        for i in 0..10 {
            assert_eq!(
                batched.db.find_by_name(&format!("/f{i}")),
                oneshot.db.find_by_name(&format!("/f{i}")),
            );
        }
    }

    #[test]
    fn process_records_include_argv_and_name() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("init");
        sys.kernel
            .write_file(pid, "/bin-tool", b"ELF binary")
            .unwrap();
        sys.kernel
            .execve(
                pid,
                "/bin-tool",
                &["tool".into(), "--flag".into()],
                &["HOME=/root".into()],
            )
            .unwrap();
        sys.kernel.write_file(pid, "/result", b"out").unwrap();
        sys.kernel.exit(pid);

        let mut waldo = sys.spawn_waldo();
        for (_, logs) in sys.rotate_all_logs() {
            for log in logs {
                waldo.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        let procs = waldo.db.find_by_type("PROC");
        let tool = procs
            .iter()
            .find(|p| {
                waldo
                    .db
                    .object(**p)
                    .and_then(|o| o.first_attr(&Attribute::Name).cloned())
                    .map(|v| v == Value::str("/bin-tool"))
                    .unwrap_or(false)
            })
            .expect("the exec'd process must be recorded with its NAME");
        let obj = waldo.db.object(*tool).unwrap();
        let argv = obj.first_attr(&Attribute::Argv).expect("ARGV recorded");
        assert_eq!(argv, &Value::StrList(vec!["tool".into(), "--flag".into()]));
        let env = obj.first_attr(&Attribute::Env).expect("ENV recorded");
        assert_eq!(env, &Value::StrList(vec!["HOME=/root".into()]));
        // Both the binary file and the process bear the name (a
        // process's NAME is its executable path, per Table 1); the
        // file is distinguishable by TYPE.
        let bins = waldo.db.find_by_name("/bin-tool");
        let files = waldo.db.find_by_type("FILE");
        assert!(
            bins.iter().any(|p| files.contains(p)),
            "a FILE object named /bin-tool must exist"
        );
    }
}
