//! The Waldo daemon.
//!
//! Waldo is "a user-level daemon that reads provenance records from
//! the log and stores them in a database" (paper §5.6). In the
//! simulation Waldo runs as an ordinary (but observation-exempt)
//! process: it learns about closed log files from the volume's
//! rotation queue (the inotify stand-in), reads them through normal
//! system calls, ingests them into the sharded [`Store`] and removes
//! them.
//!
//! Ingestion is *batched with group commit*: entries parsed from
//! rotated logs are staged and committed in groups of
//! [`WaldoConfig::ingest_batch`] (spanning log files within one poll),
//! instead of the original record-at-a-time inserts. A log file is
//! unlinked only once every one of its entries has committed, and the
//! store keeps a per-file committed high-water mark, so a daemon that
//! crashes between group commits replays only the uncommitted suffix
//! of each surviving log — see
//! `tests/group_commit.rs::crash_mid_batch_recovers_exactly_once`.

use sim_os::proc::{Fd, MountId, Pid};
use sim_os::syscall::{Kernel, OpenFlags};

use crate::db::{IngestStats, WaldoConfig};
use crate::store::Store;

/// The Waldo daemon state.
pub struct Waldo {
    /// The database Waldo maintains and serves to the query engine.
    pub db: Store,
    pid: Pid,
    processed_logs: u64,
    /// Open fd of the database WAL file, when durability is attached:
    /// every group commit appends its frame here and fsyncs.
    db_fd: Option<Fd>,
    /// Commit frames that failed to persist (write or fsync error).
    wal_errors: u64,
    /// True while the latest commit frame has not been durably
    /// persisted; unlinking is blocked until a (re)persist succeeds.
    frame_dirty: bool,
}

impl Waldo {
    /// Creates a daemon running as `pid`, with the default storage
    /// configuration. The caller must exempt the pid from provenance
    /// observation (otherwise Waldo's own reads of the log would
    /// generate provenance about provenance).
    pub fn new(pid: Pid) -> Waldo {
        Waldo::with_config(pid, WaldoConfig::default())
    }

    /// Creates a daemon with explicit storage tuning.
    pub fn with_config(pid: Pid, cfg: WaldoConfig) -> Waldo {
        Waldo {
            db: Store::with_config(cfg),
            pid,
            processed_logs: 0,
            db_fd: None,
            wal_errors: 0,
            frame_dirty: false,
        }
    }

    /// Adopts a database that survived a daemon restart (the committed
    /// state of a crashed predecessor). Staged-but-uncommitted entries
    /// are discarded — the next poll replays them from the logs that
    /// were, by design, not yet unlinked.
    pub fn resume(pid: Pid, mut db: Store) -> Waldo {
        db.drop_staged();
        Waldo {
            db,
            pid,
            processed_logs: 0,
            db_fd: None,
            wal_errors: 0,
            frame_dirty: false,
        }
    }

    /// Attaches the database's durability device: `path` becomes the
    /// WAL file every group commit appends its frame to (and fsyncs).
    /// Without a device the store is memory-only, as before.
    pub fn attach_db_device(
        &mut self,
        kernel: &mut Kernel,
        path: &str,
    ) -> Result<(), sim_os::fs::FsError> {
        let fd = kernel.open(self.pid, path, OpenFlags::WRONLY_CREATE)?;
        self.db_fd = Some(fd);
        Ok(())
    }

    /// Persists the latest commit frame: one append plus one fsync on
    /// the database device — the per-commit durability cost that group
    /// commit amortizes. Returns false (and counts the failure) if
    /// either operation errored; the caller must then keep the source
    /// logs so the commit remains replayable.
    fn persist_commit(&mut self, kernel: &mut Kernel) -> bool {
        let Some(fd) = self.db_fd else { return true };
        let frame = self.db.last_commit_frame().to_vec();
        let ok = kernel.write(self.pid, fd, &frame).is_ok() && kernel.fsync(self.pid, fd).is_ok();
        if !ok {
            self.wal_errors += 1;
        }
        ok
    }

    /// Commits staged entries and persists the latest frame. Returns
    /// true when it is safe to unlink fully committed source logs —
    /// i.e. the newest frame is durably on the WAL device. A frame
    /// whose persist failed earlier is retried here (each frame
    /// carries the complete current marks, so persisting the latest
    /// one supersedes any lost predecessor); until a persist succeeds,
    /// every call keeps returning false and no log is unlinked.
    fn commit_and_persist(&mut self, kernel: &mut Kernel, stats: &mut IngestStats) -> bool {
        let before = self.db.commit_seq();
        self.db.commit_staged(stats);
        if self.db.commit_seq() != before {
            self.frame_dirty = true;
        }
        if self.frame_dirty && self.persist_commit(kernel) {
            self.frame_dirty = false;
        }
        !self.frame_dirty
    }

    /// Commit frames that failed to persist. Nonzero means some fully
    /// committed logs were retained instead of unlinked.
    pub fn wal_errors(&self) -> u64 {
        self.wal_errors
    }

    /// The daemon's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Number of log files processed so far.
    pub fn processed_logs(&self) -> u64 {
        self.processed_logs
    }

    /// Polls one volume for rotated logs, ingesting (in group-commit
    /// batches that may span files) and removing each fully committed
    /// log. `mount_path` is the volume's mount point (`"/"` or
    /// `"/mnt/x"`).
    pub fn poll_volume(
        &mut self,
        kernel: &mut Kernel,
        mount: MountId,
        mount_path: &str,
    ) -> IngestStats {
        let rotated = match kernel.dpapi_at(mount) {
            Some(d) => d.take_log_rotations(),
            None => return IngestStats::default(),
        };
        let paths: Vec<String> = rotated
            .into_iter()
            .map(|rel| {
                if mount_path == "/" {
                    format!("/{rel}")
                } else {
                    format!("{mount_path}/{rel}")
                }
            })
            .collect();
        self.drain_logs(kernel, paths)
    }

    /// Reads, ingests and unlinks one log file, committing in the
    /// configured batches. The observable database matches the
    /// original record-at-a-time daemon; only commit granularity (and
    /// therefore durability cost) differs.
    pub fn ingest_log_file(&mut self, kernel: &mut Kernel, path: &str) -> IngestStats {
        self.drain_logs(kernel, vec![path.to_string()])
    }

    /// The shared ingestion loop: stages each log's entries (skipping
    /// any prefix a pre-crash predecessor already committed),
    /// group-commits every `ingest_batch` entries — batches may span
    /// files — and unlinks each log as soon as all of its entries have
    /// committed.
    fn drain_logs(&mut self, kernel: &mut Kernel, paths: Vec<String>) -> IngestStats {
        let mut total = IngestStats::default();
        // (source handle, path, total entries) of each log read so
        // far, for post-commit unlinking.
        let mut files: Vec<(usize, String, usize)> = Vec::new();
        let batch = self.db.config().ingest_batch.max(1);
        for abs in paths {
            let Ok(bytes) = kernel.read_file(self.pid, &abs) else {
                continue;
            };
            let (entries, _tail) = lasagna::parse_log(&bytes);
            let (src, mark) = self.db.register_source(&abs);
            if mark == 0 {
                // Fresh file: a new log image starts a new transaction
                // scope. (A nonzero mark means we are resuming a
                // partially committed file after a crash — the store's
                // committed transaction context already sits exactly
                // at the mark, so no reset.)
                self.db.begin_stream();
            }
            let n = entries.len();
            for e in entries.into_iter().skip(mark) {
                self.db.stage(e, Some(src));
                if self.db.staged_len() >= batch && self.commit_and_persist(kernel, &mut total) {
                    self.unlink_committed(kernel, &mut files);
                }
            }
            files.push((src, abs, n));
            self.processed_logs += 1;
        }
        if self.commit_and_persist(kernel, &mut total) {
            self.unlink_committed(kernel, &mut files);
        }
        total
    }

    /// Rescans a volume's log directory after a restart and replays
    /// every surviving *closed* log (all `log.N` except the
    /// highest-numbered, which is the active log Lasagna is still
    /// appending to). `poll_volume` cannot do this: it consumes the
    /// in-memory rotation queue, which dies with the crashed daemon.
    /// Logs a predecessor fully committed but did not unlink are
    /// skipped via their recorded marks and removed; partially
    /// committed ones resume from their high-water mark.
    pub fn recover_volume(&mut self, kernel: &mut Kernel, mount_path: &str) -> IngestStats {
        let dir = if mount_path == "/" {
            "/.pass".to_string()
        } else {
            format!("{mount_path}/.pass")
        };
        let Ok(entries) = kernel.readdir(self.pid, &dir) else {
            return IngestStats::default();
        };
        let mut logs: Vec<u64> = entries
            .iter()
            .filter_map(|e| e.name.strip_prefix("log.").and_then(|n| n.parse().ok()))
            .collect();
        logs.sort_unstable();
        logs.pop(); // the active log stays
        let paths = logs.into_iter().map(|n| format!("{dir}/log.{n}")).collect();
        self.drain_logs(kernel, paths)
    }

    fn unlink_committed(&mut self, kernel: &mut Kernel, files: &mut Vec<(usize, String, usize)>) {
        files.retain(|(src, path, total)| {
            if self.db.source_fully_committed(*src, *total) {
                let _ = kernel.unlink(self.pid, path);
                self.db.forget_source(*src);
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Attribute, Value};
    use passv2::System;

    /// End-to-end: syscalls → observer → Lasagna log → Waldo → DB.
    #[test]
    fn pipeline_from_syscalls_to_database() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("/usr/bin/convert");
        sys.kernel
            .execve(
                pid,
                "/usr/bin/convert",
                &["convert".into(), "in".into(), "out".into()],
                &[],
            )
            .ok();
        sys.kernel
            .write_file(pid, "/in.dat", b"input bytes")
            .unwrap();
        let data = sys.kernel.read_file(pid, "/in.dat").unwrap();
        sys.kernel.write_file(pid, "/out.dat", &data).unwrap();
        sys.kernel.exit(pid);

        let mut waldo = sys.spawn_waldo();
        for (mount, logs) in sys.rotate_all_logs() {
            let _ = mount;
            for log in logs {
                waldo.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        assert!(waldo.processed_logs() >= 1);

        // The output file is in the database, named, with an ancestry
        // that reaches the input file through the process.
        let outs = waldo.db.find_by_name("/out.dat");
        assert_eq!(outs.len(), 1, "output file must be indexed by name");
        let out_obj = waldo.db.object(outs[0]).unwrap();
        let v = dpapi::Version(out_obj.current);
        let anc = waldo.db.ancestors(dpapi::ObjectRef::new(outs[0], v));
        let ins = waldo.db.find_by_name("/in.dat");
        assert_eq!(ins.len(), 1);
        assert!(
            anc.iter().any(|r| r.pnode == ins[0]),
            "ancestry of /out.dat must include /in.dat; got {anc:?}"
        );
        // The process appears as a typed object on the path.
        let procs = waldo.db.find_by_type("PROC");
        assert!(
            !procs.is_empty(),
            "the writing process must be materialized"
        );
        assert!(anc.iter().any(|r| procs.contains(&r.pnode)));
    }

    #[test]
    fn poll_volume_drains_rotations_and_removes_logs() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("sh");
        sys.kernel.write_file(pid, "/f", b"x").unwrap();
        let mut waldo = sys.spawn_waldo();

        let (_, m, _) = sys.volumes[0];
        // Force rotation through the volume, then poll.
        sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
        let stats = waldo.poll_volume(&mut sys.kernel, m, "/");
        assert!(stats.applied > 0);
        // The processed log is gone from the log directory.
        let entries = sys.kernel.readdir(waldo.pid(), "/.pass").unwrap();
        assert_eq!(
            entries.iter().filter(|e| e.name == "log.0").count(),
            0,
            "processed log must be unlinked"
        );
        // Second poll: nothing new.
        let stats = waldo.poll_volume(&mut sys.kernel, m, "/");
        assert_eq!(stats.applied, 0);
    }

    /// A tiny ingest batch forces commits (and unlinks) that straddle
    /// log files; the resulting database is identical to a one-shot
    /// ingest.
    #[test]
    fn small_batches_span_files_and_match_one_shot_ingest() {
        let run = |cfg: WaldoConfig| {
            let mut sys = System::single_volume();
            let pid = sys.spawn("sh");
            for i in 0..10 {
                sys.kernel
                    .write_file(pid, &format!("/f{i}"), b"contents")
                    .unwrap();
            }
            let (_, m, _) = sys.volumes[0];
            sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
            let waldo_pid = sys.kernel.spawn_init("waldo");
            sys.pass.exempt(waldo_pid);
            let mut waldo = Waldo::with_config(waldo_pid, cfg);
            let stats = waldo.poll_volume(&mut sys.kernel, m, "/");
            (waldo, stats)
        };
        let (batched, bstats) = run(WaldoConfig {
            shards: 8,
            ingest_batch: 3,
            ancestry_cache: 0,
        });
        let (oneshot, ostats) = run(WaldoConfig {
            shards: 1,
            ingest_batch: 1 << 20,
            ancestry_cache: 0,
        });
        assert_eq!(bstats.applied, ostats.applied);
        assert!(bstats.group_commits > ostats.group_commits);
        assert_eq!(batched.db.object_count(), oneshot.db.object_count());
        assert_eq!(batched.db.size(), oneshot.db.size());
        for i in 0..10 {
            assert_eq!(
                batched.db.find_by_name(&format!("/f{i}")),
                oneshot.db.find_by_name(&format!("/f{i}")),
            );
        }
    }

    #[test]
    fn process_records_include_argv_and_name() {
        let mut sys = System::single_volume();
        let pid = sys.spawn("init");
        sys.kernel
            .write_file(pid, "/bin-tool", b"ELF binary")
            .unwrap();
        sys.kernel
            .execve(
                pid,
                "/bin-tool",
                &["tool".into(), "--flag".into()],
                &["HOME=/root".into()],
            )
            .unwrap();
        sys.kernel.write_file(pid, "/result", b"out").unwrap();
        sys.kernel.exit(pid);

        let mut waldo = sys.spawn_waldo();
        for (_, logs) in sys.rotate_all_logs() {
            for log in logs {
                waldo.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        let procs = waldo.db.find_by_type("PROC");
        let tool = procs
            .iter()
            .find(|p| {
                waldo
                    .db
                    .object(**p)
                    .and_then(|o| o.first_attr(&Attribute::Name))
                    .map(|v| v == &Value::str("/bin-tool"))
                    .unwrap_or(false)
            })
            .expect("the exec'd process must be recorded with its NAME");
        let obj = waldo.db.object(*tool).unwrap();
        let argv = obj.first_attr(&Attribute::Argv).expect("ARGV recorded");
        assert_eq!(argv, &Value::StrList(vec!["tool".into(), "--flag".into()]));
        let env = obj.first_attr(&Attribute::Env).expect("ENV recorded");
        assert_eq!(env, &Value::StrList(vec!["HOME=/root".into()]));
        // Both the binary file and the process bear the name (a
        // process's NAME is its executable path, per Table 1); the
        // file is distinguishable by TYPE.
        let bins = waldo.db.find_by_name("/bin-tool");
        let files = waldo.db.find_by_type("FILE");
        assert!(
            bins.iter().any(|p| files.contains(p)),
            "a FILE object named /bin-tool must exist"
        );
    }
}
