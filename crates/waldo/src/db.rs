//! Core storage types of the provenance database.
//!
//! The store is an OEM-style object database: objects (pnodes) carry
//! per-version attribute lists and ancestry edges, plus secondary
//! indexes by name, by type and by ancestor (the reverse edge index
//! that makes descendant queries — "find everything tainted by this
//! file" — cheap).
//!
//! The engine itself lives in two layers: the `shard` module owns one
//! hash partition's object table and indexes, and
//! [`crate::store::Store`] is the facade that routes, batches and
//! caches across shards. This module keeps the storage value types
//! they share. `ProvDb`, the name the rest of the workspace uses, is
//! the sharded store.

use std::collections::BTreeMap;

use dpapi::{Attribute, ObjectRef, Value, Version};

pub use crate::store::{Store, WaldoConfig};

/// The provenance database. Historically a single map; now the
/// sharded, batched [`Store`].
pub type ProvDb = Store;

/// One version of one object.
#[derive(Clone, Debug, Default)]
pub struct VersionEntry {
    /// Scalar attributes recorded at this version.
    pub attrs: Vec<(Attribute, Value)>,
    /// Ancestry edges: this version depends on those objects.
    pub inputs: Vec<(Attribute, ObjectRef)>,
    /// Number of data writes logged at this version.
    pub writes: u64,
    /// Bytes of data written at this version.
    pub bytes_written: u64,
}

/// One object (pnode) across all its versions.
#[derive(Clone, Debug, Default)]
pub struct ObjectEntry {
    /// Version-indexed state.
    pub versions: BTreeMap<u32, VersionEntry>,
    /// Highest version seen.
    pub current: u32,
}

impl ObjectEntry {
    pub(crate) fn at(&mut self, v: Version) -> &mut VersionEntry {
        self.current = self.current.max(v.0);
        self.versions.entry(v.0).or_default()
    }

    /// Attributes of a version (empty slice if unknown).
    pub fn attrs(&self, v: Version) -> &[(Attribute, Value)] {
        self.versions
            .get(&v.0)
            .map(|e| e.attrs.as_slice())
            .unwrap_or(&[])
    }

    /// Ancestry edges of a version.
    pub fn inputs(&self, v: Version) -> &[(Attribute, ObjectRef)] {
        self.versions
            .get(&v.0)
            .map(|e| e.inputs.as_slice())
            .unwrap_or(&[])
    }

    /// The first value of `attr` across all versions (names and types
    /// are version-independent in practice).
    pub fn first_attr(&self, attr: &Attribute) -> Option<&Value> {
        self.versions
            .values()
            .flat_map(|v| v.attrs.iter())
            .find(|(a, _)| a == attr)
            .map(|(_, v)| v)
    }
}

/// Approximate on-disk footprint of the store, for Table 3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbSize {
    /// Bytes of record data (the "provenance database" column).
    pub db_bytes: u64,
    /// Bytes of secondary indexes (the "+Indexes" delta).
    pub index_bytes: u64,
}

/// Statistics for one ingest batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Entries applied to the store.
    pub applied: usize,
    /// Entries buffered inside still-open transactions.
    pub pending: usize,
    /// Transactions committed.
    pub txns_committed: usize,
    /// Group commits that processed at least one entry (including
    /// commits that only buffered transaction members).
    pub group_commits: usize,
    /// Checkpoints published while draining (daemon ingest only —
    /// requires an attached database directory and a firing policy;
    /// see [`WaldoConfig::checkpoint_commits`]).
    pub checkpoints: usize,
    /// Disclosure batches recognized as replays of already-committed
    /// group frames (per-volume high-water check) and skipped
    /// wholesale instead of applied twice.
    pub replayed_batches: usize,
    /// Log images whose tail parsed as cleanly truncated (a torn
    /// final frame — the write-ahead crash shape).
    pub tails_truncated: usize,
    /// Log images whose tail failed its CRC — bit-level corruption,
    /// never a legitimate crash artifact.
    pub tails_corrupt: usize,
}

impl provscope::MetricSource for IngestStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("applied", self.applied as u64);
        out("pending", self.pending as u64);
        out("txns_committed", self.txns_committed as u64);
        out("group_commits", self.group_commits as u64);
        out("checkpoints", self.checkpoints as u64);
        out("replayed_batches", self.replayed_batches as u64);
        out("tails_truncated", self.tails_truncated as u64);
        out("tails_corrupt", self.tails_corrupt as u64);
    }
}

impl std::ops::AddAssign for IngestStats {
    /// Folds another batch's counters into these — the roll-up the
    /// cluster fan-in and the bench rig use to aggregate per-member
    /// (or per-log) stats without hand-written field adds.
    fn add_assign(&mut self, other: IngestStats) {
        self.applied += other.applied;
        self.pending += other.pending;
        self.txns_committed += other.txns_committed;
        self.group_commits += other.group_commits;
        self.checkpoints += other.checkpoints;
        self.replayed_batches += other.replayed_batches;
        self.tails_truncated += other.tails_truncated;
        self.tails_corrupt += other.tails_corrupt;
    }
}

impl std::iter::Sum for IngestStats {
    fn sum<I: Iterator<Item = IngestStats>>(iter: I) -> IngestStats {
        iter.fold(IngestStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Pnode, ProvenanceRecord, VolumeId};
    use lasagna::LogEntry;

    fn p(n: u64) -> Pnode {
        Pnode::new(VolumeId(1), n)
    }

    fn r(n: u64, v: u32) -> ObjectRef {
        ObjectRef::new(p(n), Version(v))
    }

    fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
        LogEntry::Prov {
            subject,
            record: ProvenanceRecord::new(attr, value),
        }
    }

    #[test]
    fn name_and_type_indexes() {
        let db = ProvDb::new();
        db.ingest(&[
            prov(r(1, 0), Attribute::Name, Value::str("/data/out.gif")),
            prov(r(1, 0), Attribute::Type, Value::str("FILE")),
            prov(r(2, 0), Attribute::Type, Value::str("PROC")),
        ]);
        assert_eq!(db.find_by_name("/data/out.gif"), vec![p(1)]);
        assert_eq!(db.find_by_name_suffix("out.gif"), vec![p(1)]);
        assert_eq!(db.find_by_type("PROC"), vec![p(2)]);
        assert!(db.find_by_name("missing").is_empty());
    }

    #[test]
    fn ancestry_and_reverse_index() {
        let db = ProvDb::new();
        // file(1) <- proc(2) <- file(3): 1 depends on 2 depends on 3.
        db.ingest(&[
            prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 0))),
            prov(r(2, 0), Attribute::Input, Value::Xref(r(3, 0))),
        ]);
        let anc = db.ancestors(r(1, 0));
        assert!(anc.contains(&r(2, 0)));
        assert!(anc.contains(&r(3, 0)));
        let desc = db.descendants(p(3));
        assert!(desc.contains(&r(2, 0)));
        assert!(desc.contains(&r(1, 0)));
    }

    #[test]
    fn freeze_creates_version_and_implicit_edges() {
        let db = ProvDb::new();
        db.ingest(&[
            prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 0))),
            prov(r(1, 0), Attribute::Freeze, Value::Int(1)),
            prov(r(1, 1), Attribute::Input, Value::Xref(r(4, 0))),
        ]);
        // v1 depends on v0 implicitly, and on 4 explicitly.
        let inputs = db.inputs_of(r(1, 1));
        assert!(inputs.iter().any(|(_, a)| *a == r(4, 0)));
        assert!(inputs.iter().any(|(_, a)| *a == r(1, 0)));
        // Ancestors of v1 include everything v0 depended on.
        let anc = db.ancestors(r(1, 1));
        assert!(anc.contains(&r(2, 0)));
        // And v1 is a descendant of pnode 2 (via v0).
        assert!(db.descendants(p(2)).contains(&r(1, 1)));
    }

    #[test]
    fn version_specific_reverse_lookups() {
        let db = ProvDb::new();
        db.ingest(&[prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 3)))]);
        // Outputs of 2@3 include 1@0; outputs of 2@1 do not.
        assert_eq!(db.outputs_of(r(2, 3)).len(), 1);
        assert!(db.outputs_of(r(2, 1)).is_empty());
    }

    #[test]
    fn transactions_buffer_until_end() {
        let db = ProvDb::new();
        let stats = db.ingest(&[
            LogEntry::TxnBegin { id: 9 },
            prov(r(1, 0), Attribute::Name, Value::str("x")),
        ]);
        assert_eq!(stats.applied, 0);
        assert_eq!(stats.pending, 1);
        assert!(db.find_by_name("x").is_empty());
        assert_eq!(db.open_txns(), vec![9]);
        // The end can arrive in a later log image.
        let stats = db.ingest(&[LogEntry::TxnEnd { id: 9 }]);
        assert_eq!(stats.applied, 1);
        assert_eq!(stats.txns_committed, 1);
        assert_eq!(db.find_by_name("x"), vec![p(1)]);
        assert!(db.open_txns().is_empty());
    }

    #[test]
    fn orphaned_txns_can_be_discarded() {
        let db = ProvDb::new();
        db.ingest(&[
            LogEntry::TxnBegin { id: 5 },
            prov(r(1, 0), Attribute::Name, Value::str("ghost")),
        ]);
        assert_eq!(db.discard_txn(5), 1);
        assert!(db.find_by_name("ghost").is_empty());
        assert_eq!(db.discard_txn(5), 0);
    }

    #[test]
    fn size_grows_with_ingestion() {
        let db = ProvDb::new();
        let before = db.size();
        db.ingest(&[
            prov(
                r(1, 0),
                Attribute::Name,
                Value::str("/a/long/path/name.dat"),
            ),
            prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 0))),
        ]);
        let after = db.size();
        assert!(after.db_bytes > before.db_bytes);
        assert!(after.index_bytes > before.index_bytes);
    }

    #[test]
    fn data_writes_accumulate_per_version() {
        let db = ProvDb::new();
        db.ingest(&[
            LogEntry::DataWrite {
                subject: r(1, 0),
                offset: 0,
                len: 100,
                digest: [0u8; 16],
            },
            LogEntry::DataWrite {
                subject: r(1, 0),
                offset: 100,
                len: 50,
                digest: [0u8; 16],
            },
        ]);
        let obj = db.object(p(1)).unwrap();
        let v = obj.versions.get(&0).unwrap();
        assert_eq!(v.writes, 2);
        assert_eq!(v.bytes_written, 150);
    }

    #[test]
    fn first_attr_spans_versions() {
        let db = ProvDb::new();
        db.ingest(&[
            prov(r(1, 0), Attribute::Freeze, Value::Int(1)),
            prov(r(1, 1), Attribute::Name, Value::str("late-name")),
        ]);
        let obj = db.object(p(1)).unwrap();
        assert_eq!(
            obj.first_attr(&Attribute::Name),
            Some(&Value::str("late-name"))
        );
    }

    // ---- sharded-store semantics -----------------------------------------

    /// The same stream ingested at any batch granularity, with any
    /// shard count, produces an identical database.
    #[test]
    fn batching_and_sharding_do_not_change_results() {
        let entries: Vec<LogEntry> = (0..40u64)
            .flat_map(|i| {
                vec![
                    prov(r(i, 0), Attribute::Name, Value::str(format!("/f{i}"))),
                    prov(r(i, 0), Attribute::Type, Value::str("FILE")),
                    prov(r(i, 0), Attribute::Input, Value::Xref(r(i / 2, 0))),
                ]
            })
            .collect();
        let reference = ProvDb::with_config(WaldoConfig::record_at_a_time());
        for e in &entries {
            reference.ingest(std::slice::from_ref(e));
        }
        for shards in [1, 4, 64] {
            let db = ProvDb::with_config(WaldoConfig {
                shards,
                ingest_batch: 7,
                ancestry_cache: 16,
                ..WaldoConfig::default()
            });
            db.ingest(&entries);
            assert_eq!(db.object_count(), reference.object_count());
            assert_eq!(db.size(), reference.size());
            for i in 0..40u64 {
                assert_eq!(
                    db.find_by_name(&format!("/f{i}")),
                    reference.find_by_name(&format!("/f{i}")),
                );
                assert_eq!(db.ancestors(r(i, 0)), reference.ancestors(r(i, 0)));
                assert_eq!(db.descendants(p(i)), reference.descendants(p(i)));
            }
            assert_eq!(db.find_by_type("FILE"), reference.find_by_type("FILE"));
        }
    }

    /// Repeated ancestry queries hit the cache; ingest into a touched
    /// shard invalidates exactly the affected traversals.
    #[test]
    fn ancestry_cache_hits_and_per_shard_invalidation() {
        let db = ProvDb::with_config(WaldoConfig {
            shards: 8,
            ingest_batch: 64,
            ancestry_cache: 128,
            ..WaldoConfig::default()
        });
        db.ingest(&[
            prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 0))),
            prov(r(2, 0), Attribute::Input, Value::Xref(r(3, 0))),
        ]);
        let first = db.ancestors(r(1, 0));
        let again = db.ancestors(r(1, 0));
        assert_eq!(first, again);
        let stats = db.cache_stats();
        assert_eq!(stats.hits, 1, "second traversal must be a cache hit");
        assert_eq!(stats.misses, 1);

        // Extend the chain: 3 now depends on 4. The cached traversal
        // for 1@0 read 3's shard, so it must be recomputed.
        db.ingest(&[prov(r(3, 0), Attribute::Input, Value::Xref(r(4, 0)))]);
        let extended = db.ancestors(r(1, 0));
        assert!(extended.contains(&r(4, 0)), "stale cache entry served");
        assert!(db.cache_stats().invalidated >= 1);
    }

    /// A query over shards untouched by an ingest stays cached.
    #[test]
    fn unrelated_ingest_keeps_cache_entries() {
        let db = ProvDb::with_config(WaldoConfig {
            shards: 64,
            ingest_batch: 64,
            ancestry_cache: 128,
            ..WaldoConfig::default()
        });
        db.ingest(&[prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 0)))]);
        let _ = db.ancestors(r(1, 0));
        // Find a pnode routed to a shard the cached traversal did not
        // touch, and ingest an unrelated record there.
        let used: Vec<usize> = [1u64, 2].iter().map(|n| db.shard_of(p(*n))).collect();
        let other = (10..1000u64)
            .find(|n| !used.contains(&db.shard_of(p(*n))))
            .expect("some pnode routes elsewhere in 64 shards");
        db.ingest(&[prov(r(other, 0), Attribute::Name, Value::str("/unrelated"))]);
        let _ = db.ancestors(r(1, 0));
        let stats = db.cache_stats();
        assert_eq!(stats.hits, 1, "unrelated ingest must not invalidate");
        assert_eq!(stats.invalidated, 0);
    }
}
