//! The provenance database.
//!
//! Waldo moves provenance from the Lasagna log into an indexed store
//! that the query engine reads. The store is an OEM-style object
//! database: objects (pnodes) carry per-version attribute lists and
//! ancestry edges, plus secondary indexes by name, by type and by
//! ancestor (the reverse edge index that makes descendant queries —
//! "find everything tainted by this file" — cheap).

use std::collections::{BTreeMap, HashMap, HashSet};

use dpapi::wire::record_wire_size;
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version};
use lasagna::LogEntry;

/// One version of one object.
#[derive(Clone, Debug, Default)]
pub struct VersionEntry {
    /// Scalar attributes recorded at this version.
    pub attrs: Vec<(Attribute, Value)>,
    /// Ancestry edges: this version depends on those objects.
    pub inputs: Vec<(Attribute, ObjectRef)>,
    /// Number of data writes logged at this version.
    pub writes: u64,
    /// Bytes of data written at this version.
    pub bytes_written: u64,
}

/// One object (pnode) across all its versions.
#[derive(Clone, Debug, Default)]
pub struct ObjectEntry {
    /// Version-indexed state.
    pub versions: BTreeMap<u32, VersionEntry>,
    /// Highest version seen.
    pub current: u32,
}

impl ObjectEntry {
    fn at(&mut self, v: Version) -> &mut VersionEntry {
        self.current = self.current.max(v.0);
        self.versions.entry(v.0).or_default()
    }

    /// Attributes of a version (empty slice if unknown).
    pub fn attrs(&self, v: Version) -> &[(Attribute, Value)] {
        self.versions
            .get(&v.0)
            .map(|e| e.attrs.as_slice())
            .unwrap_or(&[])
    }

    /// Ancestry edges of a version.
    pub fn inputs(&self, v: Version) -> &[(Attribute, ObjectRef)] {
        self.versions
            .get(&v.0)
            .map(|e| e.inputs.as_slice())
            .unwrap_or(&[])
    }

    /// The first value of `attr` across all versions (names and types
    /// are version-independent in practice).
    pub fn first_attr(&self, attr: &Attribute) -> Option<&Value> {
        self.versions
            .values()
            .flat_map(|v| v.attrs.iter())
            .find(|(a, _)| a == attr)
            .map(|(_, v)| v)
    }
}

/// Approximate on-disk footprint of the store, for Table 3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbSize {
    /// Bytes of record data (the "provenance database" column).
    pub db_bytes: u64,
    /// Bytes of secondary indexes (the "+Indexes" delta).
    pub index_bytes: u64,
}

/// Statistics for one ingest batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Entries applied to the store.
    pub applied: usize,
    /// Entries buffered inside still-open transactions.
    pub pending: usize,
    /// Transactions committed.
    pub txns_committed: usize,
}

/// The indexed provenance store.
#[derive(Debug, Default)]
pub struct ProvDb {
    objects: HashMap<Pnode, ObjectEntry>,
    /// name -> objects that bore it (at any version).
    name_index: HashMap<String, Vec<Pnode>>,
    /// type -> objects.
    type_index: HashMap<String, Vec<Pnode>>,
    /// ancestor pnode -> (descendant version-ref, edge attribute,
    /// ancestor version).
    reverse_index: HashMap<Pnode, Vec<(ObjectRef, Attribute, Version)>>,
    /// Open provenance transactions (NFS chunked bundles).
    pending_txns: HashMap<u64, Vec<LogEntry>>,
    size: DbSize,
}

impl ProvDb {
    /// Creates an empty store.
    pub fn new() -> ProvDb {
        ProvDb::default()
    }

    /// Number of objects known.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Approximate store footprint.
    pub fn size(&self) -> DbSize {
        self.size
    }

    /// Transaction ids currently open (orphans if the stream ended).
    pub fn open_txns(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.pending_txns.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Drops an orphaned transaction's buffered records (the server
    /// Waldo's garbage collection of §6.1.2).
    pub fn discard_txn(&mut self, id: u64) -> usize {
        self.pending_txns.remove(&id).map(|v| v.len()).unwrap_or(0)
    }

    /// Ingests a parsed log image.
    pub fn ingest(&mut self, entries: &[LogEntry]) -> IngestStats {
        let mut stats = IngestStats::default();
        let mut current_txn: Option<u64> = None;
        for e in entries {
            match e {
                LogEntry::TxnBegin { id } => {
                    self.pending_txns.entry(*id).or_default();
                    current_txn = Some(*id);
                }
                LogEntry::TxnEnd { id } => {
                    if let Some(buf) = self.pending_txns.remove(id) {
                        for b in &buf {
                            self.apply(b);
                            stats.applied += 1;
                        }
                        stats.txns_committed += 1;
                    }
                    if current_txn == Some(*id) {
                        current_txn = None;
                    }
                }
                other => match current_txn {
                    Some(id) => {
                        self.pending_txns.entry(id).or_default().push(other.clone());
                        stats.pending += 1;
                    }
                    None => {
                        self.apply(other);
                        stats.applied += 1;
                    }
                },
            }
        }
        stats
    }

    fn apply(&mut self, entry: &LogEntry) {
        match entry {
            LogEntry::Prov { subject, record } => self.apply_record(*subject, record),
            LogEntry::DataWrite { subject, len, .. } => {
                let e = self.objects.entry(subject.pnode).or_default().at(subject.version);
                e.writes += 1;
                e.bytes_written += u64::from(*len);
                self.size.db_bytes += 44; // subject + offset + len + digest
            }
            LogEntry::TxnBegin { .. } | LogEntry::TxnEnd { .. } => {}
        }
    }

    fn apply_record(&mut self, subject: ObjectRef, record: &ProvenanceRecord) {
        self.size.db_bytes += record_wire_size(record) as u64 + 16;
        match (&record.attribute, &record.value) {
            (Attribute::Freeze, Value::Int(v)) => {
                let obj = self.objects.entry(subject.pnode).or_default();
                obj.at(Version(*v as u32));
            }
            (attr, Value::Xref(ancestor)) if attr.is_ancestry() => {
                let obj = self.objects.entry(subject.pnode).or_default();
                obj.at(subject.version)
                    .inputs
                    .push((attr.clone(), *ancestor));
                self.reverse_index.entry(ancestor.pnode).or_default().push((
                    subject,
                    attr.clone(),
                    ancestor.version,
                ));
                self.size.index_bytes += 36;
            }
            (Attribute::Name, Value::Str(name)) => {
                let obj = self.objects.entry(subject.pnode).or_default();
                obj.at(subject.version)
                    .attrs
                    .push((Attribute::Name, record.value.clone()));
                let list = self.name_index.entry(name.clone()).or_default();
                if !list.contains(&subject.pnode) {
                    list.push(subject.pnode);
                    self.size.index_bytes += name.len() as u64 + 12;
                }
            }
            (Attribute::Type, Value::Str(ty)) => {
                let obj = self.objects.entry(subject.pnode).or_default();
                obj.at(subject.version)
                    .attrs
                    .push((Attribute::Type, record.value.clone()));
                let list = self.type_index.entry(ty.clone()).or_default();
                if !list.contains(&subject.pnode) {
                    list.push(subject.pnode);
                    self.size.index_bytes += ty.len() as u64 + 12;
                }
            }
            _ => {
                let obj = self.objects.entry(subject.pnode).or_default();
                obj.at(subject.version)
                    .attrs
                    .push((record.attribute.clone(), record.value.clone()));
            }
        }
    }

    // ---- queries ----------------------------------------------------------

    /// The object entry for `p`.
    pub fn object(&self, p: Pnode) -> Option<&ObjectEntry> {
        self.objects.get(&p)
    }

    /// All objects (unordered).
    pub fn objects(&self) -> impl Iterator<Item = (&Pnode, &ObjectEntry)> {
        self.objects.iter()
    }

    /// Objects that ever bore `name` — exact match. Names are path
    /// strings; the query layer also supports suffix matching.
    pub fn find_by_name(&self, name: &str) -> Vec<Pnode> {
        self.name_index.get(name).cloned().unwrap_or_default()
    }

    /// Objects whose NAME ends with `suffix` (e.g. a file name without
    /// its directory).
    pub fn find_by_name_suffix(&self, suffix: &str) -> Vec<Pnode> {
        let mut out: Vec<Pnode> = self
            .name_index
            .iter()
            .filter(|(n, _)| n.ends_with(suffix))
            .flat_map(|(_, ps)| ps.iter().copied())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Objects of TYPE `ty`.
    pub fn find_by_type(&self, ty: &str) -> Vec<Pnode> {
        self.type_index.get(ty).cloned().unwrap_or_default()
    }

    /// Direct ancestry edges of one version, including the implicit
    /// edge to the previous version of the same object.
    pub fn inputs_of(&self, r: ObjectRef) -> Vec<(Attribute, ObjectRef)> {
        let mut out = Vec::new();
        if let Some(obj) = self.objects.get(&r.pnode) {
            out.extend(obj.inputs(r.version).iter().cloned());
            if r.version.0 > 0 {
                out.push((
                    Attribute::Other("version".into()),
                    ObjectRef::new(r.pnode, Version(r.version.0 - 1)),
                ));
            }
        }
        out
    }

    /// Direct descendants: version-refs that recorded `p` (at the
    /// given version) as an input.
    pub fn outputs_of(&self, r: ObjectRef) -> Vec<(Attribute, ObjectRef)> {
        let mut out: Vec<(Attribute, ObjectRef)> = self
            .reverse_index
            .get(&r.pnode)
            .map(|v| {
                v.iter()
                    .filter(|(_, _, av)| *av == r.version)
                    .map(|(d, a, _)| (a.clone(), *d))
                    .collect()
            })
            .unwrap_or_default();
        // Implicit: the next version of the object descends from r.
        if let Some(obj) = self.objects.get(&r.pnode) {
            if obj.versions.contains_key(&(r.version.0 + 1)) {
                out.push((
                    Attribute::Other("version".into()),
                    ObjectRef::new(r.pnode, Version(r.version.0 + 1)),
                ));
            }
        }
        out
    }

    /// Every descendant of `p` at any version — the transitive
    /// closure over outputs (the malware-spread query of §3.2).
    pub fn descendants(&self, p: Pnode) -> Vec<ObjectRef> {
        let mut seen: HashSet<ObjectRef> = HashSet::new();
        // Roots: every version of p recorded as a subject, plus every
        // version of p some other object referenced as an ancestor
        // (objects only ever seen as ancestors have no entry).
        let mut roots: HashSet<ObjectRef> = self
            .objects
            .get(&p)
            .map(|o| {
                o.versions
                    .keys()
                    .map(|v| ObjectRef::new(p, Version(*v)))
                    .collect()
            })
            .unwrap_or_default();
        if let Some(refs) = self.reverse_index.get(&p) {
            for (_, _, av) in refs {
                roots.insert(ObjectRef::new(p, *av));
            }
        }
        let mut work: Vec<ObjectRef> = roots.iter().copied().collect();
        while let Some(r) = work.pop() {
            for (_, d) in self.outputs_of(r) {
                if seen.insert(d) {
                    work.push(d);
                }
            }
        }
        let mut out: Vec<ObjectRef> = seen.into_iter().filter(|r| !roots.contains(r)).collect();
        out.sort();
        out
    }

    /// Every ancestor of `r` — transitive closure over inputs (the
    /// anomaly-tracing query of §3.1).
    pub fn ancestors(&self, r: ObjectRef) -> Vec<ObjectRef> {
        let mut seen: HashSet<ObjectRef> = HashSet::new();
        let mut work = vec![r];
        while let Some(x) = work.pop() {
            for (_, a) in self.inputs_of(x) {
                if seen.insert(a) {
                    work.push(a);
                }
            }
        }
        let mut out: Vec<ObjectRef> = seen.into_iter().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::VolumeId;

    fn p(n: u64) -> Pnode {
        Pnode::new(VolumeId(1), n)
    }

    fn r(n: u64, v: u32) -> ObjectRef {
        ObjectRef::new(p(n), Version(v))
    }

    fn prov(subject: ObjectRef, attr: Attribute, value: Value) -> LogEntry {
        LogEntry::Prov {
            subject,
            record: ProvenanceRecord::new(attr, value),
        }
    }

    #[test]
    fn name_and_type_indexes() {
        let mut db = ProvDb::new();
        db.ingest(&[
            prov(r(1, 0), Attribute::Name, Value::str("/data/out.gif")),
            prov(r(1, 0), Attribute::Type, Value::str("FILE")),
            prov(r(2, 0), Attribute::Type, Value::str("PROC")),
        ]);
        assert_eq!(db.find_by_name("/data/out.gif"), vec![p(1)]);
        assert_eq!(db.find_by_name_suffix("out.gif"), vec![p(1)]);
        assert_eq!(db.find_by_type("PROC"), vec![p(2)]);
        assert!(db.find_by_name("missing").is_empty());
    }

    #[test]
    fn ancestry_and_reverse_index() {
        let mut db = ProvDb::new();
        // file(1) <- proc(2) <- file(3): 1 depends on 2 depends on 3.
        db.ingest(&[
            prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 0))),
            prov(r(2, 0), Attribute::Input, Value::Xref(r(3, 0))),
        ]);
        let anc = db.ancestors(r(1, 0));
        assert!(anc.contains(&r(2, 0)));
        assert!(anc.contains(&r(3, 0)));
        let desc = db.descendants(p(3));
        assert!(desc.contains(&r(2, 0)));
        assert!(desc.contains(&r(1, 0)));
    }

    #[test]
    fn freeze_creates_version_and_implicit_edges() {
        let mut db = ProvDb::new();
        db.ingest(&[
            prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 0))),
            prov(r(1, 0), Attribute::Freeze, Value::Int(1)),
            prov(r(1, 1), Attribute::Input, Value::Xref(r(4, 0))),
        ]);
        // v1 depends on v0 implicitly, and on 4 explicitly.
        let inputs = db.inputs_of(r(1, 1));
        assert!(inputs.iter().any(|(_, a)| *a == r(4, 0)));
        assert!(inputs.iter().any(|(_, a)| *a == r(1, 0)));
        // Ancestors of v1 include everything v0 depended on.
        let anc = db.ancestors(r(1, 1));
        assert!(anc.contains(&r(2, 0)));
        // And v1 is a descendant of pnode 2 (via v0).
        assert!(db.descendants(p(2)).contains(&r(1, 1)));
    }

    #[test]
    fn version_specific_reverse_lookups() {
        let mut db = ProvDb::new();
        db.ingest(&[
            prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 3))),
        ]);
        // Outputs of 2@3 include 1@0; outputs of 2@1 do not.
        assert_eq!(db.outputs_of(r(2, 3)).len(), 1);
        assert!(db.outputs_of(r(2, 1)).is_empty());
    }

    #[test]
    fn transactions_buffer_until_end() {
        let mut db = ProvDb::new();
        let stats = db.ingest(&[
            LogEntry::TxnBegin { id: 9 },
            prov(r(1, 0), Attribute::Name, Value::str("x")),
        ]);
        assert_eq!(stats.applied, 0);
        assert_eq!(stats.pending, 1);
        assert!(db.find_by_name("x").is_empty());
        assert_eq!(db.open_txns(), vec![9]);
        // The end can arrive in a later log image.
        let stats = db.ingest(&[LogEntry::TxnEnd { id: 9 }]);
        assert_eq!(stats.applied, 1);
        assert_eq!(stats.txns_committed, 1);
        assert_eq!(db.find_by_name("x"), vec![p(1)]);
        assert!(db.open_txns().is_empty());
    }

    #[test]
    fn orphaned_txns_can_be_discarded() {
        let mut db = ProvDb::new();
        db.ingest(&[
            LogEntry::TxnBegin { id: 5 },
            prov(r(1, 0), Attribute::Name, Value::str("ghost")),
        ]);
        assert_eq!(db.discard_txn(5), 1);
        assert!(db.find_by_name("ghost").is_empty());
        assert_eq!(db.discard_txn(5), 0);
    }

    #[test]
    fn size_grows_with_ingestion() {
        let mut db = ProvDb::new();
        let before = db.size();
        db.ingest(&[
            prov(r(1, 0), Attribute::Name, Value::str("/a/long/path/name.dat")),
            prov(r(1, 0), Attribute::Input, Value::Xref(r(2, 0))),
        ]);
        let after = db.size();
        assert!(after.db_bytes > before.db_bytes);
        assert!(after.index_bytes > before.index_bytes);
    }

    #[test]
    fn data_writes_accumulate_per_version() {
        let mut db = ProvDb::new();
        db.ingest(&[
            LogEntry::DataWrite {
                subject: r(1, 0),
                offset: 0,
                len: 100,
                digest: [0u8; 16],
            },
            LogEntry::DataWrite {
                subject: r(1, 0),
                offset: 100,
                len: 50,
                digest: [0u8; 16],
            },
        ]);
        let obj = db.object(p(1)).unwrap();
        let v = obj.versions.get(&0).unwrap();
        assert_eq!(v.writes, 2);
        assert_eq!(v.bytes_written, 150);
    }

    #[test]
    fn first_attr_spans_versions() {
        let mut db = ProvDb::new();
        db.ingest(&[
            prov(r(1, 0), Attribute::Freeze, Value::Int(1)),
            prov(r(1, 1), Attribute::Name, Value::str("late-name")),
        ]);
        let obj = db.object(p(1)).unwrap();
        assert_eq!(
            obj.first_attr(&Attribute::Name),
            Some(&Value::str("late-name"))
        );
    }
}
