//! Waldo: the provenance database daemon.
//!
//! Waldo consumes the provenance logs Lasagna rotates, builds the
//! indexed provenance database, and serves it to the query engine
//! (PQL). It runs as an ordinary user-level process that the PASS
//! module exempts from observation.

pub mod daemon;
pub mod graph;
pub mod db;

pub use daemon::Waldo;
pub use db::{DbSize, IngestStats, ObjectEntry, ProvDb, VersionEntry};
