//! Waldo: the provenance database daemon.
//!
//! Waldo consumes the provenance logs [Lasagna](lasagna) rotates,
//! builds the indexed provenance database, and serves it to the query
//! engine ([PQL](pql)). It runs as an ordinary user-level process that
//! the PASS module exempts from observation.
//!
//! # Architecture
//!
//! The storage engine is layered (see `DESIGN.md` at the repository
//! root for the full data flow):
//!
//! * `shard` *(internal)* — N independent pnode-hash partitions,
//!   each owning its object table and secondary indexes (by name, by
//!   type, the generalized string-attribute index serving PQL
//!   predicate pushdown, and the reverse ancestry index);
//! * [`store::Store`] — the facade: stable shard routing, staged
//!   ingestion with **group commit** (one atomic apply per
//!   [`store::WaldoConfig::ingest_batch`] entries, with per-log-file
//!   replay marks for crash recovery), and fan-out queries;
//! * [`cache`] — LRU caches for ancestry closures and per-node edge
//!   expansions, invalidated *per shard* via generation counters;
//! * [`daemon::Waldo`] — the polling process that drains rotated logs
//!   into the store and unlinks each log only once fully committed
//!   *and* covered by a checkpoint (when durably attached);
//! * [`wal`] — the length-prefixed, CRC-closed codec for the
//!   per-commit durability frames on the database WAL;
//! * [`checkpoint`] — durable per-shard segments (format v2 carries
//!   the attribute index, so indexed queries survive cold restart
//!   without a rebuild scan), atomically published manifests, WAL
//!   truncation and the cold-restart path
//!   ([`daemon::Waldo::restart`]);
//! * [`graph`] — the store as a [`pql::GraphSource`], with cached
//!   edge expansion and index-backed predicate pushdown
//!   (`lookup_attr`), the fast path behind [`daemon::Waldo::query`];
//! * [`cluster`] — the multi-daemon fan-in tier: N daemons consume
//!   distinct volumes concurrently (deterministic volume→member
//!   routing), consolidate via [`store::Store::merge`], and serve
//!   scatter-gather PQL through [`cluster::ClusterGraphSource`]
//!   without materializing the merge.
//!
//! # Example
//!
//! Ingest a small provenance stream and ask the two queries of the
//! paper's §3 — "where did this come from" and "what did this taint":
//!
//! ```
//! use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
//! use lasagna::LogEntry;
//! use waldo::{ProvDb, WaldoConfig};
//!
//! let node = |n: u64| ObjectRef::new(Pnode::new(VolumeId(1), n), Version(0));
//! let prov = |s, a, v| LogEntry::Prov {
//!     subject: s,
//!     record: ProvenanceRecord::new(a, v),
//! };
//!
//! // out.gif <- convert(proc) <- in.img
//! let mut db = ProvDb::with_config(WaldoConfig::default());
//! db.ingest(&[
//!     prov(node(1), Attribute::Name, Value::str("/out.gif")),
//!     prov(node(2), Attribute::Type, Value::str("PROC")),
//!     prov(node(3), Attribute::Name, Value::str("/in.img")),
//!     prov(node(1), Attribute::Input, Value::Xref(node(2))),
//!     prov(node(2), Attribute::Input, Value::Xref(node(3))),
//! ]);
//!
//! // Ancestry of the output reaches the input through the process.
//! let out = db.find_by_name("/out.gif")[0];
//! let ancestors = db.ancestors(ObjectRef::new(out, Version(0)));
//! assert!(ancestors.contains(&node(3)));
//!
//! // Everything tainted by the input (the malware-spread query).
//! let input = db.find_by_name("/in.img")[0];
//! let tainted = db.descendants(input);
//! assert!(tainted.contains(&node(1)));
//!
//! // Repeating a traversal hits the ancestry cache.
//! let _ = db.ancestors(ObjectRef::new(out, Version(0)));
//! assert_eq!(db.cache_stats().hits, 1);
//! ```

pub mod cache;
pub mod checkpoint;
pub mod cluster;
pub mod contention;
pub mod daemon;
pub mod db;
pub mod graph;
pub(crate) mod manifest;
pub(crate) mod segment;
pub(crate) mod shard;
pub mod store;
pub mod wal;

pub use cache::CacheStats;
pub use checkpoint::{CheckpointCrash, CheckpointStats, RestartReport};
pub use cluster::{
    ingest_images_threaded, route_volume, Cluster, ClusterCheckpointError, ClusterGraphSource,
    ClusterMemberError, ClusterPollReport, ClusterRuntime, MemberTiming, VolumePoll,
};
pub use contention::{AtomicHist, Contention, ContentionStats};
pub use daemon::{LogImage, QueryOps, RestartError, Waldo};
pub use db::{DbSize, IngestStats, ObjectEntry, ProvDb, VersionEntry};
pub use store::{MergeError, Store, WaldoConfig};
