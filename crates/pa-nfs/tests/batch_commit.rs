//! End-to-end tests for `OP_PASSCOMMIT`: a disclosure transaction
//! crosses the PA-NFS wire as one COMPOUND, matches the single-shot
//! path record for record, and aborts atomically with the failing
//! op's index.

use dpapi::{
    Attribute, Bundle, Dpapi, DpapiError, Pnode, ProvenanceRecord, Value, Version, VolumeId,
};
use lasagna::LogEntry;
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::{DpapiVolume, FileSystem};

type ServerRc = std::rc::Rc<std::cell::RefCell<pa_nfs::NfsServer>>;

fn setup(volume: u32) -> (pa_nfs::NfsClient, sim_os::fs::Ino, ServerRc) {
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(volume));
    let mut client = pa_nfs::client(&server, clock, model);
    let root = client.root();
    let ino = client.create(root, "target").unwrap();
    (client, ino, server)
}

fn record(i: usize) -> ProvenanceRecord {
    ProvenanceRecord::new(
        Attribute::Other(format!("ATTR{i}")),
        Value::str(format!("payload number {i}")),
    )
}

/// Drains `server` and returns the parsed entries.
fn drain(server: &ServerRc) -> Vec<LogEntry> {
    let logs = server.borrow_mut().drain_provenance_logs();
    let all: Vec<u8> = logs.concat();
    let (entries, tail) = lasagna::parse_log(&all);
    assert_eq!(tail, lasagna::LogTail::Clean);
    entries
}

#[test]
fn batched_commit_is_one_rpc_and_matches_singles() {
    const N: usize = 32;

    // Single-shot: one OP_PASSWRITE RPC per record.
    let (mut single, ino_s, single_srv) = setup(7);
    let h = single.handle_for_ino(ino_s).unwrap();
    let base = single.stats();
    for i in 0..N {
        let b = Bundle::single(h, record(i));
        single.pass_write(h, 0, &[], b).unwrap();
    }
    let s = single.stats();
    let single_rpcs = s.rpcs - base.rpcs;
    let single_bytes = (s.bytes_sent + s.bytes_received) - (base.bytes_sent + base.bytes_received);

    // Batched: the same N disclosures in one transaction.
    let (mut batched, ino_b, batched_srv) = setup(7);
    let h = batched.handle_for_ino(ino_b).unwrap();
    let base = batched.stats();
    let mut txn = dpapi::Txn::new();
    for i in 0..N {
        txn.disclose(h, Bundle::single(h, record(i)));
    }
    let results = batched.pass_commit(txn).unwrap();
    assert_eq!(results.len(), N);
    let b = batched.stats();
    let batch_rpcs = b.rpcs - base.rpcs;
    let batch_bytes = (b.bytes_sent + b.bytes_received) - (base.bytes_sent + base.bytes_received);
    assert_eq!(b.batch_rpcs, 1);
    assert_eq!(b.batched_ops, N as u64);

    assert_eq!(single_rpcs, N as u64);
    assert_eq!(batch_rpcs, 1, "a transaction is one COMPOUND");
    assert!(
        single_bytes as f64 >= 1.5 * batch_bytes as f64,
        "batched disclosure must save >=1.5x wire bytes at N={N}: \
         single={single_bytes}, batched={batch_bytes}"
    );

    // Both paths leave the same provenance records on the export
    // (the batch adds its transaction markers around them).
    let recs = |entries: &[LogEntry]| -> Vec<ProvenanceRecord> {
        entries
            .iter()
            .filter_map(|e| match e {
                LogEntry::Prov { record, .. }
                    if matches!(record.attribute, Attribute::Other(_)) =>
                {
                    Some(record.clone())
                }
                _ => None,
            })
            .collect()
    };
    let from_singles = recs(&drain(&single_srv));
    let batched_entries = drain(&batched_srv);
    let from_batch = recs(&batched_entries);
    assert_eq!(from_singles, from_batch);
    assert!(
        batched_entries
            .iter()
            .any(|e| matches!(e, LogEntry::TxnBegin { .. })),
        "the batch must be bracketed by transaction markers"
    );
}

#[test]
fn server_abort_names_failing_op_and_applies_nothing() {
    let (mut client, ino, server) = setup(9);
    let h = client.handle_for_ino(ino).unwrap();
    let mut txn = dpapi::Txn::new();
    txn.write(h, 0, b"must not land".to_vec(), Bundle::new())
        .revive(Pnode::new(VolumeId(9), 424_242), Version(0));
    let err = client.pass_commit(txn).unwrap_err();
    match err {
        DpapiError::TxnAborted { failed_op, .. } => assert_eq!(failed_op, 1),
        other => panic!("expected TxnAborted, got {other:?}"),
    }
    // Atomicity: the valid write before the failing op never landed.
    assert!(client.read(ino, 0, 64).unwrap().is_empty());
    let entries = drain(&server);
    assert!(
        !entries
            .iter()
            .any(|e| matches!(e, LogEntry::DataWrite { .. })),
        "no data write may reach the log from an aborted batch"
    );
}

#[test]
fn client_abort_on_unresolvable_handle_sends_nothing() {
    let (mut client, _ino, _server) = setup(3);
    let bogus = dpapi::Handle::from_raw(555);
    let before = client.stats();
    let mut txn = dpapi::Txn::new();
    txn.mkobj(None).freeze(bogus);
    let err = client.pass_commit(txn).unwrap_err();
    assert_eq!(err, DpapiError::aborted_at(1, DpapiError::InvalidHandle));
    let after = client.stats();
    assert_eq!(before.rpcs, after.rpcs, "nothing crossed the wire");
}

#[test]
fn batched_mkobj_and_revive_roundtrip() {
    let (mut client, ino, _server) = setup(4);
    let file_h = client.handle_for_ino(ino).unwrap();
    let mut txn = dpapi::Txn::new();
    txn.mkobj(None).freeze(file_h).sync(file_h);
    let results = client.pass_commit(txn).unwrap();
    let session = results[0].as_handle().expect("mkobj handle");
    assert_eq!(results[1].as_version(), Some(Version(1)));
    // The new object is usable immediately after the commit.
    let id = client.pass_read(session, 0, 0).unwrap().identity;
    let mut txn = dpapi::Txn::new();
    txn.revive(id.pnode, id.version);
    let results = client.pass_commit(txn).unwrap();
    let revived = results[0].as_handle().expect("revive handle");
    let id2 = client.pass_read(revived, 0, 0).unwrap().identity;
    assert_eq!(id.pnode, id2.pnode);
}
