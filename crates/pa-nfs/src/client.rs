//! The PA-NFS client.
//!
//! Mounted into a client machine's kernel as an ordinary file system,
//! the client forwards VFS operations over the simulated network and
//! exports the DPAPI downward to the server (paper §6.1.2):
//!
//! * `pass_write` sends data and provenance together in
//!   `OP_PASSWRITE`; bundles exceeding the 64 KB wire block are
//!   chunked through an `OP_BEGINTXN` / `OP_PASSPROV` /
//!   `OP_PASSWRITE`-with-`ENDTXN` transaction so the server can
//!   garbage-collect orphans after a client crash;
//! * `pass_freeze` increments the version *locally* and attaches a
//!   freeze record to the file, which ships inside the next
//!   `OP_PASSWRITE` — a record rather than an operation, because
//!   operations may arrive out of order;
//! * `pass_mkobj` obtains a pnode from the server, which needs no
//!   other state, making crash recovery on either side trivial.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use dpapi::{
    Attribute, Bundle, Dpapi, DpapiError, Handle, ObjectRef, Pnode, ProvenanceRecord, ReadResult,
    Value, Version, VolumeId, WriteResult,
};
use sim_os::clock::Clock;
use sim_os::cost::NetParams;
use sim_os::fs::{
    DirEntry, DpapiVolume, FileAttr, FileSystem, FileType, FsError, FsResult, FsUsage, Ino,
};

use crate::proto::{
    chunk_records, Request, Response, WireObj, WireOp, WireOpResult, WireRecord, WIRE_BLOCK,
};
use crate::server::NfsServer;

/// Counters for one client.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClientStats {
    /// RPCs issued.
    pub rpcs: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Provenance transactions started.
    pub txns: u64,
    /// `OP_PASSCOMMIT` batches shipped (one RPC each).
    pub batch_rpcs: u64,
    /// Operations carried by those batches.
    pub batched_ops: u64,
}

impl provscope::MetricSource for ClientStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("rpcs", self.rpcs);
        out("bytes_sent", self.bytes_sent);
        out("bytes_received", self.bytes_received);
        out("txns", self.txns);
        out("batch_rpcs", self.batch_rpcs);
        out("batched_ops", self.batched_ops);
    }
}

/// The client file system.
pub struct NfsClient {
    server: Rc<RefCell<NfsServer>>,
    clock: Clock,
    net: NetParams,
    volume: Option<VolumeId>,
    root: Ino,
    handles: HashMap<u64, WireObj>,
    handle_of_ino: HashMap<u64, Handle>,
    next_handle: u64,
    /// Client-side version cache: server version + local freezes.
    versions: HashMap<u64, Version>,
    pnode_of_ino: HashMap<u64, Pnode>,
    app_versions: HashMap<Pnode, Version>,
    stats: ClientStats,
    scope: provscope::Scope,
}

impl NfsClient {
    /// Mounts a client against `server` over a link with `net`
    /// parameters, advancing `clock` per RPC.
    pub fn new(server: Rc<RefCell<NfsServer>>, clock: Clock, net: NetParams) -> NfsClient {
        let (root, volume) = {
            let mut s = server.borrow_mut();
            (s.root(), s.volume())
        };
        NfsClient {
            server,
            clock,
            net,
            volume,
            root,
            handles: HashMap::new(),
            handle_of_ino: HashMap::new(),
            next_handle: 1,
            versions: HashMap::new(),
            pnode_of_ino: HashMap::new(),
            app_versions: HashMap::new(),
            stats: ClientStats::default(),
            scope: provscope::Scope::default(),
        }
    }

    /// Client statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// One synchronous RPC, charging round trip and transfer time.
    fn rpc(&mut self, req: Request) -> Response {
        let req_size = req.wire_size();
        let resp = self.server.borrow_mut().handle(req);
        let resp_size = resp.wire_size();
        self.clock
            .advance(self.net.rtt_ns + (req_size + resp_size) as u64 * self.net.per_byte_ns);
        self.stats.rpcs += 1;
        self.stats.bytes_sent += req_size as u64;
        self.stats.bytes_received += resp_size as u64;
        resp
    }

    fn rpc_fs(&mut self, req: Request) -> FsResult<Response> {
        match self.rpc(req) {
            Response::Error { kind, msg } => Err(match kind {
                crate::proto::ErrKind::NotFound => FsError::NotFound(msg),
                crate::proto::ErrKind::Exists => FsError::Exists(msg),
                crate::proto::ErrKind::NotEmpty => FsError::NotEmpty(msg),
                crate::proto::ErrKind::NotDir => FsError::NotADirectory(msg),
                crate::proto::ErrKind::Invalid => FsError::Invalid(format!("nfs: {msg}")),
                crate::proto::ErrKind::Provenance => {
                    FsError::Provenance(DpapiError::Io(format!("nfs: {msg}")))
                }
                crate::proto::ErrKind::NoSpace => FsError::NoSpace,
            }),
            ok => Ok(ok),
        }
    }

    fn rpc_dp(&mut self, req: Request) -> dpapi::Result<Response> {
        match self.rpc(req) {
            Response::Error { msg, .. } => Err(DpapiError::Io(format!("nfs: {msg}"))),
            ok => Ok(ok),
        }
    }

    fn resolve(&self, h: Handle) -> dpapi::Result<WireObj> {
        self.handles
            .get(&h.raw())
            .copied()
            .ok_or(DpapiError::InvalidHandle)
    }

    fn new_handle(&mut self, obj: WireObj) -> Handle {
        let h = Handle::from_raw(self.next_handle);
        self.next_handle += 1;
        self.handles.insert(h.raw(), obj);
        h
    }

    /// Translates a client-side bundle into wire records, noticing
    /// freeze records so the local version cache stays correct.
    fn bundle_to_wire(&mut self, bundle: &Bundle) -> dpapi::Result<Vec<WireRecord>> {
        let mut out = Vec::new();
        for (h, rec) in bundle.iter() {
            let subject = self.resolve(h)?;
            if rec.attribute == Attribute::Freeze {
                match subject {
                    WireObj::File(ino) => {
                        let v = self.versions.entry(ino.0).or_insert(Version(0));
                        *v = v.next();
                    }
                    WireObj::App(p) => {
                        let v = self.app_versions.entry(p).or_insert(Version(0));
                        *v = v.next();
                    }
                }
            }
            out.push(WireRecord {
                subject,
                record: rec.clone(),
            });
        }
        Ok(out)
    }
}

impl NfsClient {
    fn pass_commit_inner(&mut self, txn: dpapi::Txn) -> dpapi::Result<Vec<dpapi::OpResult>> {
        use dpapi::{DpapiOp, OpResult};
        let ops = txn.into_ops();
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        // Client-side op shape, for post-commit cache updates.
        enum Shape {
            WroteFile(Ino),
            Froze(WireObj),
            Revive(Version),
            Other,
        }
        let mut wire_ops = Vec::with_capacity(ops.len());
        let mut shapes = Vec::with_capacity(ops.len());
        for (i, op) in ops.into_iter().enumerate() {
            let aborted = |e| DpapiError::aborted_at(i, e);
            match op {
                DpapiOp::Write {
                    handle,
                    offset,
                    data,
                    bundle,
                } => {
                    let obj = self.resolve(handle).map_err(aborted)?;
                    let records = self.bundle_to_wire(&bundle).map_err(aborted)?;
                    shapes.push(match obj {
                        WireObj::File(ino) => Shape::WroteFile(ino),
                        WireObj::App(_) => Shape::Other,
                    });
                    wire_ops.push(WireOp::Write {
                        obj,
                        offset,
                        data,
                        records,
                    });
                }
                DpapiOp::Mkobj { .. } => {
                    shapes.push(Shape::Other);
                    wire_ops.push(WireOp::Mkobj);
                }
                DpapiOp::Freeze { handle } => {
                    let obj = self.resolve(handle).map_err(aborted)?;
                    shapes.push(Shape::Froze(obj));
                    wire_ops.push(WireOp::Freeze { obj });
                }
                DpapiOp::Revive { pnode, version } => {
                    shapes.push(Shape::Revive(version));
                    wire_ops.push(WireOp::Revive { pnode, version });
                }
                DpapiOp::Sync { handle } => {
                    let obj = self.resolve(handle).map_err(aborted)?;
                    shapes.push(Shape::Other);
                    wire_ops.push(WireOp::Sync { obj });
                }
            }
        }
        self.stats.batch_rpcs += 1;
        self.stats.batched_ops += wire_ops.len() as u64;
        let resp = self.rpc(Request::PassCommit { ops: wire_ops });
        let results = match resp {
            Response::Committed(rs) => rs,
            Response::TxnAborted { failed_op, msg, .. } => {
                return Err(DpapiError::aborted_at(
                    failed_op as usize,
                    DpapiError::Io(format!("nfs: {msg}")),
                ));
            }
            Response::Error { msg, .. } => return Err(DpapiError::Io(format!("nfs: {msg}"))),
            _ => return Err(DpapiError::Io("bad PASSCOMMIT reply".into())),
        };
        if results.len() != shapes.len() {
            return Err(DpapiError::Io("short PASSCOMMIT reply".into()));
        }
        let mut out = Vec::with_capacity(results.len());
        for (r, shape) in results.into_iter().zip(shapes) {
            let mapped = match (r, shape) {
                (WireOpResult::Written { n, pnode, version }, shape) => {
                    if let Shape::WroteFile(ino) = shape {
                        self.versions.insert(ino.0, version);
                        self.pnode_of_ino.insert(ino.0, pnode);
                    }
                    OpResult::Written(WriteResult {
                        written: n,
                        identity: ObjectRef::new(pnode, version),
                    })
                }
                (WireOpResult::Made(p), _) => {
                    self.app_versions.insert(p, Version(0));
                    OpResult::Made(self.new_handle(WireObj::App(p)))
                }
                (WireOpResult::Frozen(v), Shape::Froze(obj)) => {
                    // The server's version is authoritative for the
                    // batch, but a local freeze may already be ahead.
                    let slot = match obj {
                        WireObj::File(ino) => self.versions.entry(ino.0).or_insert(Version(0)),
                        WireObj::App(p) => self.app_versions.entry(p).or_insert(Version(0)),
                    };
                    *slot = (*slot).max(v);
                    OpResult::Frozen(*slot)
                }
                (WireOpResult::Frozen(v), _) => OpResult::Frozen(v),
                (WireOpResult::Revived(p), Shape::Revive(version)) => {
                    self.app_versions.entry(p).or_insert(version);
                    OpResult::Revived(self.new_handle(WireObj::App(p)))
                }
                (WireOpResult::Revived(p), _) => {
                    OpResult::Revived(self.new_handle(WireObj::App(p)))
                }
                (WireOpResult::Synced, _) => OpResult::Synced,
            };
            out.push(mapped);
        }
        Ok(out)
    }
}

impl Dpapi for NfsClient {
    /// Ships a whole disclosure transaction as **one** COMPOUND
    /// request (`OP_PASSCOMMIT`), amortizing the 96-byte RPC header
    /// across the batch, and maps the per-op reply back onto client
    /// handles and version caches. A server abort surfaces as
    /// [`DpapiError::TxnAborted`] with the failing op's index.
    fn pass_commit(&mut self, txn: dpapi::Txn) -> dpapi::Result<Vec<dpapi::OpResult>> {
        let span = self.scope.open("pa-nfs", "client_commit");
        let r = self.pass_commit_inner(txn);
        self.scope.close(span);
        r
    }

    fn pass_read(&mut self, h: Handle, offset: u64, len: usize) -> dpapi::Result<ReadResult> {
        match self.resolve(h)? {
            WireObj::File(ino) => {
                let resp = self.rpc_dp(Request::PassRead { ino, offset, len })?;
                let Response::PassData {
                    data,
                    pnode,
                    version,
                } = resp
                else {
                    return Err(DpapiError::Io("bad PASSREAD reply".into()));
                };
                // Local freezes may be ahead of the server; the cache
                // wins (the freeze records are attached to the file
                // and will reach the server with the next write).
                let local = self.versions.get(&ino.0).copied();
                let version = local.filter(|l| *l > version).unwrap_or(version);
                self.versions.insert(ino.0, version);
                self.pnode_of_ino.insert(ino.0, pnode);
                Ok(ReadResult {
                    data,
                    identity: ObjectRef::new(pnode, version),
                })
            }
            WireObj::App(p) => {
                let version = self.app_versions.get(&p).copied().unwrap_or(Version(0));
                Ok(ReadResult {
                    data: Vec::new(),
                    identity: ObjectRef::new(p, version),
                })
            }
        }
    }

    fn pass_write(
        &mut self,
        h: Handle,
        offset: u64,
        data: &[u8],
        bundle: Bundle,
    ) -> dpapi::Result<WriteResult> {
        let subject = self.resolve(h)?;
        let records = self.bundle_to_wire(&bundle)?;
        let ino = match subject {
            WireObj::File(ino) => ino,
            WireObj::App(p) => {
                // Provenance-only disclosure for an app object rides
                // OP_PASSPROV directly.
                if !records.is_empty() {
                    self.rpc_dp(Request::PassProv { txn: None, records })?;
                }
                let version = self.app_versions.get(&p).copied().unwrap_or(Version(0));
                return Ok(WriteResult {
                    written: 0,
                    identity: ObjectRef::new(p, version),
                });
            }
        };
        let prov_size: usize = records.iter().map(WireRecord::wire_size).sum();
        let (final_records, txn_used) = if data.len() + prov_size <= WIRE_BLOCK {
            (records, None)
        } else {
            // Chunked transaction: BEGINTXN, n × PASSPROV, then the
            // data write carrying the ENDTXN record.
            let resp = self.rpc_dp(Request::BeginTxn)?;
            let Response::Txn(txn) = resp else {
                return Err(DpapiError::Io("bad BEGINTXN reply".into()));
            };
            self.stats.txns += 1;
            for chunk in chunk_records(records) {
                self.rpc_dp(Request::PassProv {
                    txn: Some(txn),
                    records: chunk,
                })?;
            }
            let end = WireRecord {
                subject,
                record: ProvenanceRecord::new(Attribute::EndTxn, Value::Int(txn as i64)),
            };
            (vec![end], Some(txn))
        };
        let _ = txn_used;
        let resp = self.rpc_dp(Request::PassWrite {
            ino,
            offset,
            data: data.to_vec(),
            records: final_records,
        })?;
        let Response::Written { n, pnode, version } = resp else {
            return Err(DpapiError::Io("bad PASSWRITE reply".into()));
        };
        self.versions.insert(ino.0, version);
        self.pnode_of_ino.insert(ino.0, pnode);
        Ok(WriteResult {
            written: n,
            identity: ObjectRef::new(pnode, version),
        })
    }

    fn pass_freeze(&mut self, h: Handle) -> dpapi::Result<Version> {
        // Version locally; the freeze record travels with the next
        // write (no round trip).
        match self.resolve(h)? {
            WireObj::File(ino) => {
                let v = self.versions.entry(ino.0).or_insert(Version(0));
                *v = v.next();
                let new = *v;
                let rec = ProvenanceRecord::freeze(new);
                // Attach the record to the file immediately so the
                // order relative to subsequent writes is preserved.
                let wire = WireRecord {
                    subject: WireObj::File(ino),
                    record: rec,
                };
                self.rpc_dp(Request::PassProv {
                    txn: None,
                    records: vec![wire],
                })?;
                Ok(new)
            }
            WireObj::App(p) => {
                let v = self.app_versions.entry(p).or_insert(Version(0));
                *v = v.next();
                Ok(*v)
            }
        }
    }

    fn pass_mkobj(&mut self, _volume_hint: Option<VolumeId>) -> dpapi::Result<Handle> {
        let resp = self.rpc_dp(Request::PassMkobj)?;
        let Response::PnodeReply(p) = resp else {
            return Err(DpapiError::Io("bad PASSMKOBJ reply".into()));
        };
        self.app_versions.insert(p, Version(0));
        Ok(self.new_handle(WireObj::App(p)))
    }

    fn pass_reviveobj(&mut self, pnode: Pnode, version: Version) -> dpapi::Result<Handle> {
        let resp = self.rpc_dp(Request::PassReviveObj { pnode, version })?;
        let Response::PnodeReply(p) = resp else {
            return Err(DpapiError::Io("bad PASSREVIVEOBJ reply".into()));
        };
        self.app_versions.entry(p).or_insert(version);
        Ok(self.new_handle(WireObj::App(p)))
    }

    fn pass_sync(&mut self, h: Handle) -> dpapi::Result<()> {
        let obj = self.resolve(h)?;
        if let WireObj::File(ino) = obj {
            self.rpc_dp(Request::Commit { ino })?;
        }
        Ok(())
    }

    fn pass_close(&mut self, h: Handle) -> dpapi::Result<()> {
        let obj = self.resolve(h)?;
        self.handles.remove(&h.raw());
        if let WireObj::File(ino) = obj {
            if self.handle_of_ino.get(&ino.0) == Some(&h) {
                self.handle_of_ino.remove(&ino.0);
            }
        }
        Ok(())
    }
}

impl DpapiVolume for NfsClient {
    fn volume(&self) -> VolumeId {
        self.volume.unwrap_or(VolumeId(0))
    }

    fn handle_for_ino(&mut self, ino: Ino) -> dpapi::Result<Handle> {
        if let Some(h) = self.handle_of_ino.get(&ino.0) {
            return Ok(*h);
        }
        let h = self.new_handle(WireObj::File(ino));
        self.handle_of_ino.insert(ino.0, h);
        Ok(h)
    }

    fn identity_of_ino(&mut self, ino: Ino) -> dpapi::Result<ObjectRef> {
        if let (Some(p), Some(v)) = (
            self.pnode_of_ino.get(&ino.0).copied(),
            self.versions.get(&ino.0).copied(),
        ) {
            return Ok(ObjectRef::new(p, v));
        }
        let h = self.handle_for_ino(ino)?;
        let r = self.pass_read(h, 0, 0)?;
        Ok(r.identity)
    }

    /// Shares the scope with the server side too, so one trace covers
    /// both halves of the RPC boundary.
    fn set_scope(&mut self, scope: provscope::Scope) {
        self.server.borrow_mut().set_scope(scope.clone());
        self.scope = scope;
    }
}

impl FileSystem for NfsClient {
    fn root(&self) -> Ino {
        self.root
    }

    fn lookup(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        match self.rpc_fs(Request::Lookup {
            dir,
            name: name.into(),
        })? {
            Response::Handle(ino) => Ok(ino),
            _ => Err(FsError::Invalid("bad LOOKUP reply".into())),
        }
    }

    fn create(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        match self.rpc_fs(Request::Create {
            dir,
            name: name.into(),
        })? {
            Response::Handle(ino) => Ok(ino),
            _ => Err(FsError::Invalid("bad CREATE reply".into())),
        }
    }

    fn mkdir(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        match self.rpc_fs(Request::Mkdir {
            dir,
            name: name.into(),
        })? {
            Response::Handle(ino) => Ok(ino),
            _ => Err(FsError::Invalid("bad MKDIR reply".into())),
        }
    }

    fn unlink(&mut self, dir: Ino, name: &str) -> FsResult<()> {
        self.rpc_fs(Request::Remove {
            dir,
            name: name.into(),
        })?;
        Ok(())
    }

    fn rename(&mut self, from: Ino, name: &str, to: Ino, to_name: &str) -> FsResult<()> {
        self.rpc_fs(Request::Rename {
            from,
            name: name.into(),
            to,
            to_name: to_name.into(),
        })?;
        Ok(())
    }

    fn read(&mut self, ino: Ino, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        match self.rpc_fs(Request::Read { ino, offset, len })? {
            Response::Data(d) => Ok(d),
            _ => Err(FsError::Invalid("bad READ reply".into())),
        }
    }

    fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        if self.volume.is_some() {
            // A PA export keeps WAP coverage even for plain writes.
            let h = self.handle_for_ino(ino)?;
            let w = self.pass_write(h, offset, data, Bundle::new())?;
            return Ok(w.written);
        }
        match self.rpc_fs(Request::Write {
            ino,
            offset,
            data: data.to_vec(),
        })? {
            Response::Written { n, .. } => Ok(n),
            _ => Err(FsError::Invalid("bad WRITE reply".into())),
        }
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        self.rpc_fs(Request::Truncate { ino, size })?;
        Ok(())
    }

    fn getattr(&mut self, ino: Ino) -> FsResult<FileAttr> {
        match self.rpc_fs(Request::Getattr { ino })? {
            Response::Attr { size, is_dir } => Ok(FileAttr {
                ino,
                ftype: if is_dir {
                    FileType::Directory
                } else {
                    FileType::Regular
                },
                size,
                nlink: 1,
            }),
            _ => Err(FsError::Invalid("bad GETATTR reply".into())),
        }
    }

    fn readdir(&mut self, dir: Ino) -> FsResult<Vec<DirEntry>> {
        match self.rpc_fs(Request::Readdir { dir })? {
            Response::Entries(es) => Ok(es
                .into_iter()
                .map(|(name, ino, is_dir)| DirEntry {
                    name,
                    ino,
                    ftype: if is_dir {
                        FileType::Directory
                    } else {
                        FileType::Regular
                    },
                })
                .collect()),
            _ => Err(FsError::Invalid("bad READDIR reply".into())),
        }
    }

    fn sync(&mut self) -> FsResult<()> {
        let root = self.root;
        self.rpc_fs(Request::Commit { ino: root })?;
        Ok(())
    }

    fn fsync(&mut self, ino: Ino) -> FsResult<()> {
        self.rpc_fs(Request::Commit { ino })?;
        Ok(())
    }

    fn close_hint(&mut self, ino: Ino) -> FsResult<()> {
        // Close-to-open consistency: flush the file at the server
        // when a writer closes it.
        self.rpc_fs(Request::Commit { ino })?;
        Ok(())
    }

    fn usage(&self) -> FsUsage {
        self.server.borrow().fs_usage()
    }

    fn as_dpapi(&mut self) -> Option<&mut dyn DpapiVolume> {
        if self.volume.is_some() {
            Some(self)
        } else {
            None
        }
    }
}
