//! PA-NFS: provenance-aware network storage.
//!
//! "Developing provenance-aware NFS helped us understand how to
//! extend provenance outside a single machine" (paper §3). This crate
//! provides the NFSv4-style client and server with the six DPAPI
//! extension operations, provenance transactions for bundles larger
//! than the wire block, client-local versioning with freeze-as-record
//! semantics, and a server-side analyzer instance that stacks beneath
//! client-side ones.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientStats, NfsClient};
pub use proto::{
    chunk_records, Request, Response, WireObj, WireOp, WireOpResult, WireRecord, WIRE_BLOCK,
};
pub use server::{NfsServer, ServerStats};

use std::cell::RefCell;
use std::rc::Rc;

use dpapi::VolumeId;
use lasagna::{Lasagna, LasagnaConfig};
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::basefs::BaseFs;

/// Builds a provenance-aware server exporting a fresh Lasagna volume.
pub fn pa_server(clock: Clock, model: CostModel, volume: VolumeId) -> Rc<RefCell<NfsServer>> {
    let base = BaseFs::new(clock.clone(), model);
    let fs = Lasagna::new(Box::new(base), clock, model, LasagnaConfig::new(volume))
        .expect("fresh lasagna volume");
    Rc::new(RefCell::new(NfsServer::new(Box::new(fs))))
}

/// Builds a plain (baseline) server exporting a fresh base volume.
pub fn plain_server(clock: Clock, model: CostModel) -> Rc<RefCell<NfsServer>> {
    let base = BaseFs::new(clock.clone(), model);
    Rc::new(RefCell::new(NfsServer::new(Box::new(base))))
}

/// Mounts a client on `server`.
pub fn client(server: &Rc<RefCell<NfsServer>>, clock: Clock, model: CostModel) -> NfsClient {
    NfsClient::new(server.clone(), clock, model.net)
}
