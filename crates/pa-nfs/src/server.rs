//! The PA-NFS server.
//!
//! The server exports one volume — Lasagna-backed when provenance-
//! aware — and runs its own analyzer instance, because records from
//! *different clients* meet only here (paper §6.1.1: "we must have an
//! analyzer on every client and also an analyzer on every server",
//! which works precisely because both speak the DPAPI and share one
//! record representation).

use std::collections::HashMap;

use dpapi::{
    Attribute, Bundle, DpapiError, OpResult, Pnode, ProvenanceRecord, Txn, Value, Version,
};
use lasagna::PASS_DIR;
use passv2::analyzer::{CycleAvoidance, NodeId};
use sim_os::fs::{FileSystem, FsError, Ino};

use crate::proto::{ErrKind, Request, Response, WireObj, WireOp, WireOpResult, WireRecord};

/// Counters for one server.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Requests handled.
    pub requests: u64,
    /// Provenance transactions begun.
    pub txns: u64,
    /// Records accepted (after server-side dedup).
    pub records_accepted: u64,
    /// Records dropped as duplicates by the server analyzer.
    pub records_deduped: u64,
    /// `OP_PASSCOMMIT` batches handled.
    pub batch_requests: u64,
    /// Operations carried by those batches.
    pub batched_ops: u64,
}

impl provscope::MetricSource for ServerStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("requests", self.requests);
        out("txns", self.txns);
        out("records_accepted", self.records_accepted);
        out("records_deduped", self.records_deduped);
        out("batch_requests", self.batch_requests);
        out("batched_ops", self.batched_ops);
    }
}

/// The server.
pub struct NfsServer {
    fs: Box<dyn FileSystem>,
    next_txn: u64,
    analyzer: CycleAvoidance,
    nodes: HashMap<WireObj, NodeId>,
    pnode_nodes: HashMap<Pnode, NodeId>,
    next_node: NodeId,
    stats: ServerStats,
    scope: provscope::Scope,
}

impl NfsServer {
    /// Creates a server exporting `fs`.
    pub fn new(fs: Box<dyn FileSystem>) -> NfsServer {
        NfsServer {
            fs,
            next_txn: 1,
            analyzer: CycleAvoidance::new(),
            nodes: HashMap::new(),
            pnode_nodes: HashMap::new(),
            next_node: 1,
            stats: ServerStats::default(),
            scope: provscope::Scope::default(),
        }
    }

    /// Attaches a tracing scope to the server and to its exported
    /// volume, so one trace covers the RPC boundary and the export's
    /// log commit.
    pub fn set_scope(&mut self, scope: provscope::Scope) {
        if let Some(d) = self.fs.as_dpapi() {
            d.set_scope(scope.clone());
        }
        self.scope = scope;
    }

    /// Server statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The export's root filehandle.
    pub fn root(&self) -> Ino {
        self.fs.root()
    }

    /// True if the export is provenance-aware.
    pub fn is_pass(&mut self) -> bool {
        self.fs.as_dpapi().is_some()
    }

    /// The exported volume id, if provenance-aware.
    pub fn volume(&mut self) -> Option<dpapi::VolumeId> {
        self.fs.as_dpapi().map(|d| d.volume())
    }

    /// Direct access to the exported file system (Waldo, tests).
    pub fn fs_mut(&mut self) -> &mut dyn FileSystem {
        &mut *self.fs
    }

    /// Space usage of the export.
    pub fn fs_usage(&self) -> sim_os::fs::FsUsage {
        self.fs.usage()
    }

    /// Rotates and drains the provenance logs of the exported volume,
    /// returning raw log images for the server-side Waldo. Processed
    /// logs are removed, as Waldo would.
    pub fn drain_provenance_logs(&mut self) -> Vec<Vec<u8>> {
        let Some(d) = self.fs.as_dpapi() else {
            return Vec::new();
        };
        d.force_log_rotation();
        let rotated = d.take_log_rotations();
        let mut out = Vec::new();
        let root = self.fs.root();
        let Ok(dir) = self.fs.lookup(root, PASS_DIR) else {
            return out;
        };
        for rel in rotated {
            let name = rel.rsplit('/').next().unwrap_or(&rel).to_string();
            if let Ok(ino) = self.fs.lookup(dir, &name) {
                if let Ok(attr) = self.fs.getattr(ino) {
                    if let Ok(bytes) = self.fs.read(ino, 0, attr.size as usize) {
                        out.push(bytes);
                    }
                }
                let _ = self.fs.unlink(dir, &name);
            }
        }
        out
    }

    fn node_for(&mut self, obj: WireObj) -> NodeId {
        if let Some(&n) = self.nodes.get(&obj) {
            return n;
        }
        let n = self.next_node;
        self.next_node += 1;
        self.nodes.insert(obj, n);
        if let WireObj::App(p) = obj {
            self.pnode_nodes.insert(p, n);
        }
        n
    }

    fn node_for_pnode(&mut self, p: Pnode) -> NodeId {
        if let Some(&n) = self.pnode_nodes.get(&p) {
            return n;
        }
        let n = self.next_node;
        self.next_node += 1;
        self.pnode_nodes.insert(p, n);
        n
    }

    /// Runs incoming records through the server analyzer and converts
    /// them to a volume bundle. Freeze records bump the analyzer's
    /// mirror of the version; duplicate ancestry records are dropped.
    fn apply_records(&mut self, records: Vec<WireRecord>) -> Result<Bundle, FsError> {
        let mut bundle = Bundle::new();
        for wr in records {
            let subject_node = self.node_for(wr.subject);
            // Analyzer bookkeeping.
            match (&wr.record.attribute, &wr.record.value) {
                (Attribute::Freeze, Value::Int(v)) => {
                    self.analyzer.set_version(subject_node, *v as u32);
                }
                (attr, Value::Xref(ancestor)) if attr.is_ancestry() => {
                    let src = self.node_for_pnode(ancestor.pnode);
                    self.analyzer.set_version(src, ancestor.version.0);
                    let out = self.analyzer.add_dependency(subject_node, src);
                    if out.duplicate {
                        self.stats.records_deduped += 1;
                        continue;
                    }
                }
                _ => {}
            }
            // Resolve the subject to a volume handle.
            let d = self
                .fs
                .as_dpapi()
                .ok_or(FsError::Provenance(dpapi::DpapiError::NotPassVolume))?;
            let h = match wr.subject {
                WireObj::File(ino) => d.handle_for_ino(ino)?,
                WireObj::App(p) => d.pass_reviveobj(p, Version(0))?,
            };
            self.stats.records_accepted += 1;
            bundle.push(h, wr.record);
        }
        Ok(bundle)
    }

    /// Handles one request.
    pub fn handle(&mut self, req: Request) -> Response {
        self.stats.requests += 1;
        match self.try_handle(req) {
            Ok(resp) => resp,
            Err(e) => {
                let kind = match &e {
                    FsError::NotFound(_) => crate::proto::ErrKind::NotFound,
                    FsError::Exists(_) => crate::proto::ErrKind::Exists,
                    FsError::NotEmpty(_) => crate::proto::ErrKind::NotEmpty,
                    FsError::NotADirectory(_) => crate::proto::ErrKind::NotDir,
                    FsError::Invalid(_) => crate::proto::ErrKind::Invalid,
                    FsError::Provenance(_) => crate::proto::ErrKind::Provenance,
                    FsError::NoSpace => crate::proto::ErrKind::NoSpace,
                };
                Response::Error {
                    kind,
                    msg: e.to_string(),
                }
            }
        }
    }

    fn try_handle(&mut self, req: Request) -> Result<Response, FsError> {
        match req {
            Request::Lookup { dir, name } => Ok(Response::Handle(self.fs.lookup(dir, &name)?)),
            Request::Create { dir, name } => Ok(Response::Handle(self.fs.create(dir, &name)?)),
            Request::Mkdir { dir, name } => Ok(Response::Handle(self.fs.mkdir(dir, &name)?)),
            Request::Remove { dir, name } => {
                self.fs.unlink(dir, &name)?;
                Ok(Response::Ok)
            }
            Request::Rename {
                from,
                name,
                to,
                to_name,
            } => {
                self.fs.rename(from, &name, to, &to_name)?;
                Ok(Response::Ok)
            }
            Request::Read { ino, offset, len } => {
                Ok(Response::Data(self.fs.read(ino, offset, len)?))
            }
            Request::Write { ino, offset, data } => {
                let n = self.fs.write(ino, offset, &data)?;
                Ok(Response::Written {
                    n,
                    pnode: Pnode::NULL,
                    version: Version(0),
                })
            }
            Request::Truncate { ino, size } => {
                self.fs.truncate(ino, size)?;
                Ok(Response::Ok)
            }
            Request::Getattr { ino } => {
                let a = self.fs.getattr(ino)?;
                Ok(Response::Attr {
                    size: a.size,
                    is_dir: matches!(a.ftype, sim_os::fs::FileType::Directory),
                })
            }
            Request::Readdir { dir } => {
                let entries = self
                    .fs
                    .readdir(dir)?
                    .into_iter()
                    .map(|e| {
                        (
                            e.name,
                            e.ino,
                            matches!(e.ftype, sim_os::fs::FileType::Directory),
                        )
                    })
                    .collect();
                Ok(Response::Entries(entries))
            }
            Request::Commit { ino } => {
                self.fs.fsync(ino)?;
                Ok(Response::Ok)
            }
            Request::PassRead { ino, offset, len } => {
                let d = self
                    .fs
                    .as_dpapi()
                    .ok_or(FsError::Provenance(dpapi::DpapiError::NotPassVolume))?;
                let h = d.handle_for_ino(ino)?;
                let r = d.pass_read(h, offset, len)?;
                Ok(Response::PassData {
                    data: r.data,
                    pnode: r.identity.pnode,
                    version: r.identity.version,
                })
            }
            Request::PassWrite {
                ino,
                offset,
                data,
                records,
            } => {
                let bundle = self.apply_records(records)?;
                let d = self
                    .fs
                    .as_dpapi()
                    .ok_or(FsError::Provenance(dpapi::DpapiError::NotPassVolume))?;
                let h = d.handle_for_ino(ino)?;
                let w = d.pass_write(h, offset, &data, bundle)?;
                Ok(Response::Written {
                    n: w.written,
                    pnode: w.identity.pnode,
                    version: w.identity.version,
                })
            }
            Request::BeginTxn => {
                let id = self.next_txn;
                self.next_txn += 1;
                self.stats.txns += 1;
                // Record the transaction id in a BEGINTXN record at
                // the server.
                let root = self.fs.root();
                let d = self
                    .fs
                    .as_dpapi()
                    .ok_or(FsError::Provenance(dpapi::DpapiError::NotPassVolume))?;
                let h = d.handle_for_ino(root)?;
                d.disclose(
                    h,
                    Bundle::single(
                        h,
                        ProvenanceRecord::new(Attribute::BeginTxn, Value::Int(id as i64)),
                    ),
                )?;
                Ok(Response::Txn(id))
            }
            Request::PassProv { txn: _, records } => {
                let bundle = self.apply_records(records)?;
                if !bundle.is_empty() {
                    let root = self.fs.root();
                    let d = self
                        .fs
                        .as_dpapi()
                        .ok_or(FsError::Provenance(dpapi::DpapiError::NotPassVolume))?;
                    let h = d.handle_for_ino(root)?;
                    d.disclose(h, bundle)?;
                }
                Ok(Response::Ok)
            }
            Request::PassMkobj => {
                let d = self
                    .fs
                    .as_dpapi()
                    .ok_or(FsError::Provenance(dpapi::DpapiError::NotPassVolume))?;
                let h = d.pass_mkobj(None)?;
                let id = d.pass_read(h, 0, 0)?.identity;
                Ok(Response::PnodeReply(id.pnode))
            }
            Request::PassReviveObj { pnode, version } => {
                let d = self
                    .fs
                    .as_dpapi()
                    .ok_or(FsError::Provenance(dpapi::DpapiError::NotPassVolume))?;
                // The server only needs enough state to verify that
                // the pnode is valid (§6.1.2).
                let _h = d.pass_reviveobj(pnode, version)?;
                Ok(Response::PnodeReply(pnode))
            }
            Request::PassCommit { ops } => Ok(self.handle_pass_commit(ops)),
        }
    }

    fn abort_at(i: usize, e: DpapiError) -> Response {
        Response::TxnAborted {
            failed_op: i as u32,
            kind: ErrKind::Provenance,
            msg: e.to_string(),
        }
    }

    /// `OP_PASSCOMMIT`: translates the batch into one volume-level
    /// disclosure transaction (running every record through the server
    /// analyzer, as the single-shot paths do) and commits it with a
    /// single `pass_commit` — one contiguous log group on the export.
    /// Any failure aborts the whole batch with the failing op's index.
    fn handle_pass_commit(&mut self, ops: Vec<WireOp>) -> Response {
        let span = self.scope.open("pa-nfs", "server_commit");
        let r = self.handle_pass_commit_inner(ops);
        self.scope.close(span);
        r
    }

    fn handle_pass_commit_inner(&mut self, ops: Vec<WireOp>) -> Response {
        self.stats.batch_requests += 1;
        self.stats.batched_ops += ops.len() as u64;
        // Pre-validate every record up front so the analyzer
        // bookkeeping below cannot be spent on a batch that a later
        // op's malformed record would abort anyway.
        for (i, op) in ops.iter().enumerate() {
            if let WireOp::Write { records, .. } = op {
                for r in records {
                    if let Err(e) = dpapi::wire::validate_record(&r.record) {
                        return Self::abort_at(i, e);
                    }
                }
            }
        }
        if self.fs.as_dpapi().is_none() {
            return Self::abort_at(0, DpapiError::NotPassVolume);
        }
        // Resolve every addressed object — each op's own target *and*
        // the subject of every record a Write carries — and dry-run
        // every revive *before* any analyzer bookkeeping: apply_records
        // marks ancestry edges as seen, so an abort after it would make
        // a retried batch's records look like duplicates and silently
        // drop them. After this pass the translation and the volume
        // commit below cannot fail.
        for (i, op) in ops.iter().enumerate() {
            let resolve_obj = |server: &mut Self, obj: &WireObj| match obj {
                WireObj::File(_) => Ok(()),
                WireObj::App(p) => {
                    let d = server.fs.as_dpapi().expect("checked above");
                    d.pass_reviveobj(*p, Version(0)).map(|_| ())
                }
            };
            let check = match op {
                WireOp::Write { obj, records, .. } => resolve_obj(self, obj).and_then(|()| {
                    records
                        .iter()
                        .try_for_each(|wr| resolve_obj(self, &wr.subject))
                }),
                WireOp::Freeze { obj } | WireOp::Sync { obj } => resolve_obj(self, obj),
                WireOp::Revive { pnode, version } => {
                    let d = self.fs.as_dpapi().expect("checked above");
                    d.pass_reviveobj(*pnode, *version).map(|_| ())
                }
                WireOp::Mkobj => Ok(()),
            };
            if let Err(e) = check {
                return Self::abort_at(i, e);
            }
        }
        // Translate into a volume transaction, remembering per-op
        // shape details the wire result needs but the volume result
        // does not carry (the revived pnode, the frozen object).
        enum Shape {
            Plain,
            Revive(Pnode),
            Freeze(WireObj),
        }
        let mut vtxn = Txn::new();
        let mut shapes: Vec<Shape> = Vec::with_capacity(ops.len());
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                WireOp::Write {
                    obj,
                    offset,
                    data,
                    records,
                } => {
                    let bundle = match self.apply_records(records) {
                        Ok(b) => b,
                        Err(e) => return Self::abort_at(i, e.into()),
                    };
                    let d = self.fs.as_dpapi().expect("checked above");
                    let h = match obj {
                        WireObj::File(ino) => d.handle_for_ino(ino),
                        WireObj::App(p) => d.pass_reviveobj(p, Version(0)),
                    };
                    match h {
                        Ok(h) => vtxn.write(h, offset, data, bundle),
                        Err(e) => return Self::abort_at(i, e),
                    };
                    shapes.push(Shape::Plain);
                }
                WireOp::Mkobj => {
                    vtxn.mkobj(None);
                    shapes.push(Shape::Plain);
                }
                WireOp::Freeze { obj } => {
                    let d = self.fs.as_dpapi().expect("checked above");
                    let h = match obj {
                        WireObj::File(ino) => d.handle_for_ino(ino),
                        WireObj::App(p) => d.pass_reviveobj(p, Version(0)),
                    };
                    match h {
                        Ok(h) => vtxn.freeze(h),
                        Err(e) => return Self::abort_at(i, e),
                    };
                    shapes.push(Shape::Freeze(obj));
                }
                WireOp::Revive { pnode, version } => {
                    vtxn.revive(pnode, version);
                    shapes.push(Shape::Revive(pnode));
                }
                WireOp::Sync { obj } => {
                    let d = self.fs.as_dpapi().expect("checked above");
                    let h = match obj {
                        WireObj::File(ino) => d.handle_for_ino(ino),
                        WireObj::App(p) => d.pass_reviveobj(p, Version(0)),
                    };
                    match h {
                        Ok(h) => vtxn.sync(h),
                        Err(e) => return Self::abort_at(i, e),
                    };
                    shapes.push(Shape::Plain);
                }
            }
        }
        let d = self.fs.as_dpapi().expect("checked above");
        let results = match d.pass_commit(vtxn) {
            Ok(rs) => rs,
            Err(DpapiError::TxnAborted { failed_op, cause }) => {
                return Self::abort_at(failed_op, *cause);
            }
            Err(e) => return Self::abort_at(0, e),
        };
        let mut out = Vec::with_capacity(results.len());
        for (r, shape) in results.into_iter().zip(shapes) {
            let wire = match (r, shape) {
                (OpResult::Written(w), _) => WireOpResult::Written {
                    n: w.written,
                    pnode: w.identity.pnode,
                    version: w.identity.version,
                },
                (OpResult::Made(h), _) => {
                    let d = self.fs.as_dpapi().expect("checked above");
                    match d.pass_read(h, 0, 0) {
                        Ok(r) => WireOpResult::Made(r.identity.pnode),
                        Err(e) => return Self::abort_at(0, e),
                    }
                }
                (OpResult::Frozen(v), shape) => {
                    // Mirror the new version in the server analyzer,
                    // as freeze *records* do on the single-shot path.
                    if let Shape::Freeze(obj) = shape {
                        let node = self.node_for(obj);
                        self.analyzer.set_version(node, v.0);
                    }
                    WireOpResult::Frozen(v)
                }
                (OpResult::Revived(_), Shape::Revive(p)) => WireOpResult::Revived(p),
                (OpResult::Revived(_), _) => {
                    return Self::abort_at(0, DpapiError::Inconsistent("revive shape".into()));
                }
                (OpResult::Synced, _) => WireOpResult::Synced,
            };
            out.push(wire);
        }
        Response::Committed(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{ObjectRef, VolumeId};
    use lasagna::{Lasagna, LasagnaConfig};
    use sim_os::clock::Clock;
    use sim_os::cost::CostModel;
    use sim_os::fs::basefs::BaseFs;

    fn pa_server() -> NfsServer {
        let clock = Clock::new();
        let model = CostModel::default();
        let base = BaseFs::new(clock.clone(), model);
        let fs = Lasagna::new(
            Box::new(base),
            clock,
            model,
            LasagnaConfig::new(VolumeId(2)),
        )
        .unwrap();
        NfsServer::new(Box::new(fs))
    }

    fn plain_server() -> NfsServer {
        let clock = Clock::new();
        NfsServer::new(Box::new(BaseFs::new(clock, CostModel::default())))
    }

    #[test]
    fn basic_namespace_ops() {
        let mut s = pa_server();
        let root = s.root();
        let Response::Handle(f) = s.handle(Request::Create {
            dir: root,
            name: "a".into(),
        }) else {
            panic!("create failed")
        };
        s.handle(Request::Write {
            ino: f,
            offset: 0,
            data: b"hello".to_vec(),
        });
        let Response::Data(d) = s.handle(Request::Read {
            ino: f,
            offset: 0,
            len: 5,
        }) else {
            panic!("read failed")
        };
        assert_eq!(d, b"hello");
    }

    #[test]
    fn passread_returns_identity() {
        let mut s = pa_server();
        let root = s.root();
        let Response::Handle(f) = s.handle(Request::Create {
            dir: root,
            name: "x".into(),
        }) else {
            panic!()
        };
        let Response::PassData { pnode, version, .. } = s.handle(Request::PassRead {
            ino: f,
            offset: 0,
            len: 0,
        }) else {
            panic!("passread failed")
        };
        assert_eq!(pnode.volume, VolumeId(2));
        assert_eq!(version, Version(0));
    }

    #[test]
    fn pass_ops_fail_on_plain_export() {
        let mut s = plain_server();
        let resp = s.handle(Request::PassRead {
            ino: s.root(),
            offset: 0,
            len: 0,
        });
        assert!(matches!(resp, Response::Error { .. }));
        assert!(matches!(
            s.handle(Request::BeginTxn),
            Response::Error { .. }
        ));
    }

    #[test]
    fn server_analyzer_dedups_across_requests() {
        let mut s = pa_server();
        let root = s.root();
        let Response::Handle(f) = s.handle(Request::Create {
            dir: root,
            name: "f".into(),
        }) else {
            panic!()
        };
        let Response::PnodeReply(proc_pnode) = s.handle(Request::PassMkobj) else {
            panic!()
        };
        let edge = WireRecord {
            subject: WireObj::File(f),
            record: ProvenanceRecord::input(ObjectRef::new(proc_pnode, Version(0))),
        };
        for _ in 0..5 {
            s.handle(Request::PassWrite {
                ino: f,
                offset: 0,
                data: b"d".to_vec(),
                records: vec![edge.clone()],
            });
        }
        assert_eq!(s.stats().records_deduped, 4);
        assert_eq!(s.stats().records_accepted, 1);
    }

    #[test]
    fn freeze_records_bump_server_version() {
        let mut s = pa_server();
        let root = s.root();
        let Response::Handle(f) = s.handle(Request::Create {
            dir: root,
            name: "f".into(),
        }) else {
            panic!()
        };
        let freeze = WireRecord {
            subject: WireObj::File(f),
            record: ProvenanceRecord::freeze(Version(1)),
        };
        let Response::Written { version, .. } = s.handle(Request::PassWrite {
            ino: f,
            offset: 0,
            data: b"v1 data".to_vec(),
            records: vec![freeze],
        }) else {
            panic!()
        };
        assert_eq!(version, Version(1));
    }

    #[test]
    fn txn_markers_reach_the_log() {
        let mut s = pa_server();
        let Response::Txn(id) = s.handle(Request::BeginTxn) else {
            panic!()
        };
        assert_eq!(id, 1);
        let logs = s.drain_provenance_logs();
        assert!(!logs.is_empty());
        let all: Vec<u8> = logs.concat();
        let (entries, _) = lasagna::parse_log(&all);
        assert!(entries
            .iter()
            .any(|e| matches!(e, lasagna::LogEntry::TxnBegin { id: 1 })));
    }

    #[test]
    fn drain_removes_processed_logs() {
        let mut s = pa_server();
        let root = s.root();
        s.handle(Request::Create {
            dir: root,
            name: "f".into(),
        });
        let first = s.drain_provenance_logs();
        assert!(!first.is_empty());
        let second = s.drain_provenance_logs();
        assert!(second.is_empty(), "second drain must find nothing");
    }
}
