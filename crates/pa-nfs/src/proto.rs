//! The PA-NFS wire protocol.
//!
//! PA-NFS extends NFSv4 with six operations supporting the DPAPI
//! (paper §6.1.2): `OP_PASSREAD`, `OP_PASSWRITE`, `OP_BEGINTXN`,
//! `OP_PASSPROV`, `OP_PASSMKOBJ` and `OP_PASSREVIVEOBJ`. A
//! `pass_freeze` travels as a *record type* inside `OP_PASSWRITE`
//! rather than as an operation, because operations may be reordered
//! in flight while freeze is order-sensitive with respect to writes.
//!
//! DPAPI v2 adds `OP_PASSCOMMIT` ([`Request::PassCommit`]): a whole
//! disclosure transaction shipped as **one** COMPOUND request, with
//! per-op results ([`WireOpResult`]) or a per-op indexed abort
//! ([`Response::TxnAborted`]) in the reply. The 96-byte RPC/COMPOUND
//! header is paid once for the batch instead of once per op — the
//! wire-level face of the batch API. Within a COMPOUND the server
//! executes ops strictly in order, so a batched freeze *operation* is
//! safe (the record-not-operation rule exists for independently
//! shipped requests, which may be reordered in flight).
//!
//! Messages are modelled as enums with a `wire_size` accounting
//! method; the simulation charges network time per message rather
//! than serializing actual XDR.

use dpapi::wire::record_wire_size;
use dpapi::{Pnode, ProvenanceRecord, Version};
use sim_os::fs::Ino;

/// The NFSv4 client block size: bundles larger than this must be
/// chunked through a provenance transaction.
pub const WIRE_BLOCK: usize = 64 * 1024;

/// An object identifier on the wire: a file (by filehandle/ino) or a
/// provenance-only object (by pnode).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WireObj {
    /// A regular file on the exported volume.
    File(Ino),
    /// An application object identified by its pnode.
    App(Pnode),
}

/// A provenance record addressed to a wire object.
#[derive(Clone, Debug, PartialEq)]
pub struct WireRecord {
    /// The object the record describes.
    pub subject: WireObj,
    /// The record.
    pub record: ProvenanceRecord,
}

impl WireRecord {
    /// Serialized size of the record plus subject header.
    pub fn wire_size(&self) -> usize {
        16 + record_wire_size(&self.record)
    }
}

/// A request, as one NFSv4 COMPOUND would carry it.
#[derive(Clone, Debug)]
pub enum Request {
    /// Standard namespace and data operations.
    Lookup {
        /// Directory filehandle.
        dir: Ino,
        /// Component name.
        name: String,
    },
    /// Create a file.
    Create {
        /// Directory filehandle.
        dir: Ino,
        /// Component name.
        name: String,
    },
    /// Make a directory.
    Mkdir {
        /// Directory filehandle.
        dir: Ino,
        /// Component name.
        name: String,
    },
    /// Remove a name.
    Remove {
        /// Directory filehandle.
        dir: Ino,
        /// Component name.
        name: String,
    },
    /// Rename within the export.
    Rename {
        /// Source directory.
        from: Ino,
        /// Source name.
        name: String,
        /// Target directory.
        to: Ino,
        /// Target name.
        to_name: String,
    },
    /// Plain read.
    Read {
        /// File.
        ino: Ino,
        /// Offset.
        offset: u64,
        /// Length.
        len: usize,
    },
    /// Plain write.
    Write {
        /// File.
        ino: Ino,
        /// Offset.
        offset: u64,
        /// Data.
        data: Vec<u8>,
    },
    /// Truncate (SETATTR size).
    Truncate {
        /// File.
        ino: Ino,
        /// New size.
        size: u64,
    },
    /// Stat.
    Getattr {
        /// File.
        ino: Ino,
    },
    /// List a directory.
    Readdir {
        /// Directory.
        dir: Ino,
    },
    /// Flush server state (COMMIT).
    Commit {
        /// File to commit.
        ino: Ino,
    },
    /// `OP_PASSREAD`: read returning data plus exact identity.
    PassRead {
        /// File.
        ino: Ino,
        /// Offset.
        offset: u64,
        /// Length.
        len: usize,
    },
    /// `OP_PASSWRITE`: data plus provenance in one atomic operation.
    PassWrite {
        /// File.
        ino: Ino,
        /// Offset.
        offset: u64,
        /// Data.
        data: Vec<u8>,
        /// Records accompanying the data (must fit the wire block;
        /// larger bundles use a transaction).
        records: Vec<WireRecord>,
    },
    /// `OP_BEGINTXN`: obtain a transaction id for a chunked bundle.
    BeginTxn,
    /// `OP_PASSPROV`: one ≤ 64 KB chunk of provenance records within
    /// a transaction (also used for `pass_sync`).
    PassProv {
        /// Transaction id from [`Request::BeginTxn`], or `None` for
        /// an untransacted sync chunk.
        txn: Option<u64>,
        /// The records.
        records: Vec<WireRecord>,
    },
    /// `OP_PASSMKOBJ`: allocate a pnode for an application object.
    PassMkobj,
    /// `OP_PASSREVIVEOBJ`: validate a pnode and reopen it.
    PassReviveObj {
        /// The pnode.
        pnode: Pnode,
        /// The version to revive at.
        version: Version,
    },
    /// `OP_PASSCOMMIT`: a whole disclosure transaction as one
    /// COMPOUND — ops execute server-side in order, atomically.
    PassCommit {
        /// The transaction's operations.
        ops: Vec<WireOp>,
    },
}

/// One operation of an `OP_PASSCOMMIT` COMPOUND, mirroring
/// [`dpapi::DpapiOp`] with wire-level object addressing.
#[derive(Clone, Debug)]
pub enum WireOp {
    /// Data plus provenance records, moved together.
    Write {
        /// The object written.
        obj: WireObj,
        /// Byte offset.
        offset: u64,
        /// The data (empty for provenance-only disclosure).
        data: Vec<u8>,
        /// Records riding the write.
        records: Vec<WireRecord>,
    },
    /// Allocate a pnode for an application object.
    Mkobj,
    /// Open a new version of the object.
    Freeze {
        /// The object frozen.
        obj: WireObj,
    },
    /// Validate a pnode and reopen it.
    Revive {
        /// The pnode.
        pnode: Pnode,
        /// The version to revive at.
        version: Version,
    },
    /// Force the object's provenance durable (server COMMIT).
    Sync {
        /// The object synced.
        obj: WireObj,
    },
}

impl WireOp {
    /// Approximate bytes this op occupies inside the COMPOUND (no RPC
    /// header — that is paid once for the whole batch).
    pub fn wire_size(&self) -> usize {
        match self {
            WireOp::Write { data, records, .. } => {
                40 + data.len() + records.iter().map(WireRecord::wire_size).sum::<usize>()
            }
            WireOp::Mkobj => 8,
            WireOp::Freeze { .. } => 24,
            WireOp::Revive { .. } => 32,
            WireOp::Sync { .. } => 24,
        }
    }
}

/// Per-op result inside a [`Response::Committed`] reply, index-aligned
/// with the request's ops.
#[derive(Clone, Debug, PartialEq)]
pub enum WireOpResult {
    /// Write confirmation with resulting identity.
    Written {
        /// Bytes accepted.
        n: usize,
        /// Pnode of the object.
        pnode: Pnode,
        /// Version after the write.
        version: Version,
    },
    /// Pnode allocated by a `Mkobj`.
    Made(Pnode),
    /// New version opened by a `Freeze`.
    Frozen(Version),
    /// Pnode validated by a `Revive`.
    Revived(Pnode),
    /// A `Sync` completed.
    Synced,
}

impl Request {
    /// Approximate bytes this request occupies on the wire.
    pub fn wire_size(&self) -> usize {
        const HDR: usize = 96; // RPC + COMPOUND header
        match self {
            Request::Lookup { name, .. }
            | Request::Create { name, .. }
            | Request::Mkdir { name, .. }
            | Request::Remove { name, .. } => HDR + name.len() + 16,
            Request::Rename { name, to_name, .. } => HDR + name.len() + to_name.len() + 32,
            Request::Read { .. } | Request::PassRead { .. } => HDR + 24,
            Request::Write { data, .. } => HDR + 24 + data.len(),
            Request::Truncate { .. } => HDR + 16,
            Request::Getattr { .. } | Request::Commit { .. } | Request::Readdir { .. } => HDR + 8,
            Request::PassWrite { data, records, .. } => {
                HDR + 24 + data.len() + records.iter().map(WireRecord::wire_size).sum::<usize>()
            }
            Request::BeginTxn | Request::PassMkobj => HDR,
            Request::PassProv { records, .. } => {
                HDR + 16 + records.iter().map(WireRecord::wire_size).sum::<usize>()
            }
            Request::PassReviveObj { .. } => HDR + 24,
            Request::PassCommit { ops } => {
                // One header amortized over the whole batch.
                HDR + 8 + ops.iter().map(WireOp::wire_size).sum::<usize>()
            }
        }
    }
}

/// A reply.
#[derive(Clone, Debug)]
pub enum Response {
    /// A filehandle (lookup/create/mkdir).
    Handle(Ino),
    /// Nothing but success.
    Ok,
    /// Read data.
    Data(Vec<u8>),
    /// Read data plus identity — the `OP_PASSREAD` reply.
    PassData {
        /// The bytes.
        data: Vec<u8>,
        /// Pnode of the file.
        pnode: Pnode,
        /// Version as of the read.
        version: Version,
    },
    /// Write confirmation with resulting identity.
    Written {
        /// Bytes accepted.
        n: usize,
        /// Pnode of the file.
        pnode: Pnode,
        /// Version after the write.
        version: Version,
    },
    /// Stat data.
    Attr {
        /// Size in bytes.
        size: u64,
        /// True if a directory.
        is_dir: bool,
    },
    /// Directory listing.
    Entries(Vec<(String, Ino, bool)>),
    /// A transaction id.
    Txn(u64),
    /// A pnode (mkobj / reviveobj).
    PnodeReply(Pnode),
    /// Per-op results of an `OP_PASSCOMMIT`, index-aligned with the
    /// request's ops.
    Committed(Vec<WireOpResult>),
    /// An `OP_PASSCOMMIT` was aborted: the op at `failed_op` failed
    /// and nothing was applied.
    TxnAborted {
        /// Index of the failing op in the request's vector.
        failed_op: u32,
        /// Failure class, so the client rebuilds a faithful error.
        kind: ErrKind,
        /// Human-readable detail.
        msg: String,
    },
    /// The server failed the request.
    Error {
        /// What class of failure, so clients can reconstruct a
        /// faithful [`sim_os::fs::FsError`].
        kind: ErrKind,
        /// Human-readable detail.
        msg: String,
    },
}

/// Error classes carried over the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrKind {
    /// Name not found.
    NotFound,
    /// Name already exists.
    Exists,
    /// Directory not empty.
    NotEmpty,
    /// Not a directory.
    NotDir,
    /// Invalid argument.
    Invalid,
    /// Provenance subsystem failure.
    Provenance,
    /// Out of space.
    NoSpace,
}

impl Response {
    /// Approximate bytes this response occupies on the wire.
    pub fn wire_size(&self) -> usize {
        const HDR: usize = 64;
        match self {
            Response::Handle(_) | Response::Ok | Response::Txn(_) | Response::PnodeReply(_) => HDR,
            Response::Data(d) => HDR + d.len(),
            Response::PassData { data, .. } => HDR + 16 + data.len(),
            Response::Written { .. } => HDR + 16,
            Response::Attr { .. } => HDR + 16,
            Response::Entries(es) => HDR + es.iter().map(|(n, _, _)| n.len() + 16).sum::<usize>(),
            Response::Committed(rs) => HDR + 8 + rs.len() * 24,
            Response::TxnAborted { msg, .. } => HDR + 8 + msg.len(),
            Response::Error { msg, .. } => HDR + msg.len(),
        }
    }
}

/// Splits `records` into chunks whose wire size stays under the block
/// limit.
pub fn chunk_records(records: Vec<WireRecord>) -> Vec<Vec<WireRecord>> {
    let mut chunks = Vec::new();
    let mut cur = Vec::new();
    let mut cur_size = 0usize;
    for r in records {
        let s = r.wire_size();
        if cur_size + s > WIRE_BLOCK && !cur.is_empty() {
            chunks.push(std::mem::take(&mut cur));
            cur_size = 0;
        }
        cur_size += s;
        cur.push(r);
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Attribute, Value};

    fn rec(n: usize) -> WireRecord {
        WireRecord {
            subject: WireObj::File(Ino(1)),
            record: ProvenanceRecord::new(Attribute::Name, Value::Str("x".repeat(n))),
        }
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Request::Write {
            ino: Ino(1),
            offset: 0,
            data: vec![0; 10],
        };
        let big = Request::Write {
            ino: Ino(1),
            offset: 0,
            data: vec![0; 10_000],
        };
        assert!(big.wire_size() > small.wire_size() + 9_000);
    }

    #[test]
    fn chunking_respects_the_block_limit() {
        // 200 records of ~1 KB each: must split into ≥ 3 chunks.
        let records: Vec<WireRecord> = (0..200).map(|_| rec(1000)).collect();
        let chunks = chunk_records(records);
        assert!(chunks.len() >= 3, "got {} chunks", chunks.len());
        for c in &chunks {
            let size: usize = c.iter().map(WireRecord::wire_size).sum();
            assert!(size <= WIRE_BLOCK);
        }
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn oversized_single_record_still_ships() {
        let records = vec![rec(2 * WIRE_BLOCK)];
        let chunks = chunk_records(records);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 1);
    }

    #[test]
    fn empty_chunking() {
        assert!(chunk_records(Vec::new()).is_empty());
    }
}
