//! Unit tests against a counting stub substrate. The real-substrate
//! coverage (byte-equality to the synchronous path, backpressure over
//! a live system) lives in `tests/`.

use super::*;
use dpapi::{Bundle, Handle, ObjectRef, Pnode, ReadResult, Version, VolumeId, WriteResult};

/// A substrate that counts commits and can be poisoned: a commit
/// whose op vector names the poison handle aborts at that op's index
/// (validate-all-first, like the real layers).
#[derive(Default)]
struct StubLayer {
    commits: usize,
    committed_ops: usize,
    poison: Option<Handle>,
}

impl StubLayer {
    fn op_handle(op: &DpapiOp) -> Option<Handle> {
        match op {
            DpapiOp::Write { handle, .. }
            | DpapiOp::Freeze { handle }
            | DpapiOp::Sync { handle } => Some(*handle),
            _ => None,
        }
    }
}

impl Dpapi for StubLayer {
    fn pass_commit(&mut self, txn: Txn) -> dpapi::Result<Vec<OpResult>> {
        self.commits += 1;
        let ops = txn.into_ops();
        if let Some(poison) = self.poison {
            if let Some(i) = ops
                .iter()
                .position(|op| Self::op_handle(op) == Some(poison))
            {
                return Err(DpapiError::aborted_at(i, DpapiError::InvalidHandle));
            }
        }
        self.committed_ops += ops.len();
        Ok(ops
            .into_iter()
            .map(|op| match op {
                DpapiOp::Write { handle, data, .. } => OpResult::Written(WriteResult {
                    written: data.len(),
                    identity: ObjectRef::new(Pnode::new(VolumeId(1), handle.raw()), Version(0)),
                }),
                DpapiOp::Mkobj { .. } => OpResult::Made(Handle::from_raw(99)),
                DpapiOp::Freeze { .. } => OpResult::Frozen(Version(1)),
                DpapiOp::Revive { .. } => OpResult::Revived(Handle::from_raw(98)),
                DpapiOp::Sync { .. } => OpResult::Synced,
            })
            .collect())
    }

    fn pass_read(&mut self, _h: Handle, _o: u64, _l: usize) -> dpapi::Result<ReadResult> {
        Err(DpapiError::Unsupported("stub read"))
    }

    fn pass_close(&mut self, _h: Handle) -> dpapi::Result<()> {
        Ok(())
    }
}

fn write_txn(h: u64, nbytes: usize) -> Txn {
    let mut txn = Txn::new();
    txn.write(Handle::from_raw(h), 0, vec![0xab; nbytes], Bundle::new());
    txn
}

const C: ClientId = ClientId(7);

#[test]
fn coalescing_amortizes_commits_and_slices_results() {
    let mut layer = StubLayer::default();
    let mut s = Sluice::new(SluiceConfig {
        coalesce_ops: 32,
        ..SluiceConfig::default()
    });
    let tickets: Vec<Ticket> = (0..8)
        .map(|i| s.submit(&mut layer, C, write_txn(i, 4)).unwrap())
        .collect();
    assert_eq!(s.queue_depth(), 8);
    assert_eq!(layer.commits, 0, "submit must stay off the commit path");
    assert!(tickets
        .iter()
        .all(|t| s.poll(*t) == Some(TicketStatus::Pending)));

    let frames = s.drain(&mut layer);
    assert_eq!(frames, 1, "8 one-op txns coalesce into one frame");
    assert_eq!(layer.commits, 1);
    assert_eq!(layer.committed_ops, 8);
    for t in &tickets {
        assert_eq!(s.poll(*t), Some(TicketStatus::Done));
        let results = s.take(*t).unwrap().unwrap();
        assert_eq!(results.len(), 1, "each ticket gets exactly its own ops");
        assert_eq!(results[0].as_written().unwrap().written, 4);
        assert_eq!(s.poll(*t), None, "take consumes the completion");
    }
    let st = s.stats();
    assert_eq!((st.frames, st.frame_txns, st.frame_ops), (1, 8, 8));
    assert_eq!(st.completed, 8);
}

#[test]
fn coalesce_ceiling_splits_frames_without_splitting_txns() {
    let mut layer = StubLayer::default();
    let mut s = Sluice::new(SluiceConfig {
        coalesce_ops: 4,
        ..SluiceConfig::default()
    });
    // Three 3-op txns: frames must be [txn0], [txn1], [txn2] — a
    // 4-op ceiling fits one 3-op txn but not two, and txns never split.
    for i in 0..3 {
        let mut txn = Txn::new();
        for j in 0..3 {
            txn.sync(Handle::from_raw(i * 3 + j));
        }
        s.submit(&mut layer, C, txn).unwrap();
    }
    assert_eq!(s.drain(&mut layer), 3);
    assert_eq!(layer.commits, 3);
    assert_eq!(layer.committed_ops, 9);

    // A single txn larger than the ceiling still commits whole.
    let mut big = Txn::new();
    for j in 0..6 {
        big.sync(Handle::from_raw(100 + j));
    }
    let t = s.submit(&mut layer, C, big).unwrap();
    assert_eq!(s.drain(&mut layer), 1);
    assert_eq!(s.take(t).unwrap().unwrap().len(), 6);
}

#[test]
fn reject_policy_refuses_past_capacity_with_typed_errors() {
    let mut layer = StubLayer::default();
    let mut s = Sluice::new(SluiceConfig {
        max_queued_ops: 2,
        max_queued_bytes: 1 << 20,
        policy: BackpressurePolicy::Reject,
        ..SluiceConfig::default()
    });
    s.submit(&mut layer, C, write_txn(1, 1)).unwrap();
    s.submit(&mut layer, C, write_txn(2, 1)).unwrap();
    let err = s.submit(&mut layer, C, write_txn(3, 1)).unwrap_err();
    assert_eq!(
        err,
        DpapiError::Rejected(RejectReason::QueueFullOps {
            queued: 2,
            limit: 2
        })
    );
    assert_eq!(layer.commits, 0, "Reject never drains on the submit path");

    // Byte budget, independently.
    let mut s = Sluice::new(SluiceConfig {
        max_queued_ops: 1024,
        max_queued_bytes: 10,
        policy: BackpressurePolicy::Reject,
        ..SluiceConfig::default()
    });
    s.submit(&mut layer, C, write_txn(1, 8)).unwrap();
    let err = s.submit(&mut layer, C, write_txn(2, 8)).unwrap_err();
    assert_eq!(
        err,
        DpapiError::Rejected(RejectReason::QueueFullBytes {
            queued: 8,
            limit: 10
        })
    );
    // Capacity frees once the queue drains; the same txn then admits.
    s.drain(&mut layer);
    s.submit(&mut layer, C, write_txn(2, 8)).unwrap();
    assert_eq!(s.stats().rejected_queue_bytes, 1);
}

#[test]
fn block_policy_drains_inline_and_never_errors() {
    let mut layer = StubLayer::default();
    let mut s = Sluice::new(SluiceConfig {
        max_queued_ops: 2,
        policy: BackpressurePolicy::Block,
        ..SluiceConfig::default()
    });
    let t1 = s.submit(&mut layer, C, write_txn(1, 1)).unwrap();
    let t2 = s.submit(&mut layer, C, write_txn(2, 1)).unwrap();
    // Queue full: this submission drains inline to make room.
    let t3 = s.submit(&mut layer, C, write_txn(3, 1)).unwrap();
    assert!(layer.commits >= 1, "blocked submit paid for a drain");
    assert_eq!(s.poll(t1), Some(TicketStatus::Done));
    assert_eq!(s.poll(t2), Some(TicketStatus::Done));
    assert_eq!(s.poll(t3), Some(TicketStatus::Pending));
    assert_eq!(s.stats().blocked_submits, 1);
    s.drain(&mut layer);
    assert!(s.take(t3).unwrap().is_ok());
}

#[test]
fn oversized_txn_is_rejected_under_both_policies() {
    let mut layer = StubLayer::default();
    for policy in [BackpressurePolicy::Block, BackpressurePolicy::Reject] {
        let mut s = Sluice::new(SluiceConfig {
            max_queued_ops: 2,
            policy,
            ..SluiceConfig::default()
        });
        let mut txn = Txn::new();
        for j in 0..3 {
            txn.sync(Handle::from_raw(j));
        }
        let err = s.submit(&mut layer, C, txn).unwrap_err();
        assert_eq!(
            err,
            DpapiError::Rejected(RejectReason::QueueFullOps {
                queued: 0,
                limit: 2
            }),
            "a txn that can never fit must not block forever"
        );
    }
}

#[test]
fn quota_exhaustion_rejects_only_the_over_quota_client() {
    let mut layer = StubLayer::default();
    let mut s = Sluice::new(SluiceConfig::default());
    let greedy = ClientId(1);
    let modest = ClientId(2);
    s.set_quota(
        greedy,
        Quota {
            max_ops: 2,
            max_bytes: 100,
        },
    );
    s.submit(&mut layer, greedy, write_txn(1, 1)).unwrap();
    s.submit(&mut layer, greedy, write_txn(2, 1)).unwrap();
    let err = s.submit(&mut layer, greedy, write_txn(3, 1)).unwrap_err();
    assert_eq!(
        err,
        DpapiError::Rejected(RejectReason::QuotaOps {
            client: 1,
            in_flight: 2,
            limit: 2
        })
    );
    // Another client is unaffected.
    s.submit(&mut layer, modest, write_txn(4, 1)).unwrap();
    assert_eq!(s.in_flight_of(greedy), (2, 2));

    // Byte quota, typed.
    s.set_quota(
        modest,
        Quota {
            max_ops: 100,
            max_bytes: 2,
        },
    );
    let err = s.submit(&mut layer, modest, write_txn(5, 4)).unwrap_err();
    assert_eq!(
        err,
        DpapiError::Rejected(RejectReason::QuotaBytes {
            client: 2,
            in_flight: 1,
            limit: 2
        })
    );

    // Quota budget is returned when the client's work commits.
    s.drain(&mut layer);
    assert_eq!(s.in_flight_of(greedy), (0, 0));
    s.submit(&mut layer, greedy, write_txn(6, 1)).unwrap();
    let st = s.stats();
    assert_eq!((st.rejected_quota_ops, st.rejected_quota_bytes), (1, 1));
}

#[test]
fn aborted_frame_splits_so_innocent_txns_still_commit() {
    let mut layer = StubLayer {
        poison: Some(Handle::from_raw(666)),
        ..StubLayer::default()
    };
    let mut s = Sluice::new(SluiceConfig::default());
    let good1 = s.submit(&mut layer, C, write_txn(1, 4)).unwrap();
    let bad = s.submit(&mut layer, C, write_txn(666, 4)).unwrap();
    let good2 = s.submit(&mut layer, C, write_txn(2, 4)).unwrap();
    s.drain(&mut layer);
    // Merged commit aborted; fallback committed each txn individually.
    assert_eq!(layer.commits, 1 + 3);
    assert!(s.take(good1).unwrap().is_ok());
    assert!(s.take(good2).unwrap().is_ok());
    let err = s.take(bad).unwrap().unwrap_err();
    assert_eq!(err, DpapiError::aborted_at(0, DpapiError::InvalidHandle));
    let st = s.stats();
    assert_eq!((st.aborted_frames, st.split_commits), (1, 3));
    assert_eq!((st.completed, st.failed), (2, 1));
}

#[test]
fn single_txn_frame_abort_fails_directly_without_split() {
    let mut layer = StubLayer {
        poison: Some(Handle::from_raw(666)),
        ..StubLayer::default()
    };
    let mut s = Sluice::new(SluiceConfig::default());
    let bad = s.submit(&mut layer, C, write_txn(666, 4)).unwrap();
    s.drain(&mut layer);
    assert_eq!(layer.commits, 1);
    assert_eq!(s.poll(bad), Some(TicketStatus::Failed));
    assert!(s.take(bad).unwrap().is_err());
    assert_eq!(s.stats().split_commits, 0);
}

#[test]
fn callbacks_fire_on_resolution_and_retain_nothing() {
    use std::cell::RefCell;
    use std::rc::Rc;
    let mut layer = StubLayer::default();
    let mut s = Sluice::new(SluiceConfig::default());
    let seen: Rc<RefCell<Vec<(Ticket, usize)>>> = Rc::default();
    let sink = Rc::clone(&seen);
    let t = s
        .submit_with(&mut layer, C, write_txn(1, 4), move |tk, outcome| {
            sink.borrow_mut().push((tk, outcome.unwrap().len()));
        })
        .unwrap();
    assert!(seen.borrow().is_empty(), "callback waits for the drain");
    s.drain(&mut layer);
    assert_eq!(*seen.borrow(), vec![(t, 1)]);
    assert_eq!(s.poll(t), None, "callback completions are not retained");
    assert!(s.take(t).is_none());
}

#[test]
fn empty_txn_completes_immediately() {
    let mut layer = StubLayer::default();
    let mut s = Sluice::new(SluiceConfig::default());
    let t = s.submit(&mut layer, C, Txn::new()).unwrap();
    assert_eq!(s.poll(t), Some(TicketStatus::Done));
    assert_eq!(s.take(t).unwrap().unwrap(), Vec::<OpResult>::new());
    assert_eq!(s.queue_depth(), 0);
    assert_eq!(layer.commits, 0);
}

#[test]
fn wait_drains_to_the_ticket_and_unknown_tickets_error() {
    let mut layer = StubLayer::default();
    let mut s = Sluice::new(SluiceConfig::default());
    let t = s.submit(&mut layer, C, write_txn(1, 4)).unwrap();
    let results = s.wait(&mut layer, t).unwrap();
    assert_eq!(results.len(), 1);
    // Taken by wait; waiting again is an error, not a hang.
    assert!(matches!(
        s.wait(&mut layer, t),
        Err(DpapiError::Inconsistent(_))
    ));
}

#[test]
fn fifo_order_is_preserved_across_frames() {
    // Ops arrive at the substrate in submission order even when the
    // coalesce ceiling forces multiple frames.
    #[derive(Default)]
    struct OrderLayer {
        handles: Vec<u64>,
    }
    impl Dpapi for OrderLayer {
        fn pass_commit(&mut self, txn: Txn) -> dpapi::Result<Vec<OpResult>> {
            let ops = txn.into_ops();
            let mut out = Vec::new();
            for op in ops {
                if let DpapiOp::Sync { handle } = op {
                    self.handles.push(handle.raw());
                }
                out.push(OpResult::Synced);
            }
            Ok(out)
        }
        fn pass_read(&mut self, _h: Handle, _o: u64, _l: usize) -> dpapi::Result<ReadResult> {
            Err(DpapiError::Unsupported("stub read"))
        }
        fn pass_close(&mut self, _h: Handle) -> dpapi::Result<()> {
            Ok(())
        }
    }
    let mut layer = OrderLayer::default();
    let mut s = Sluice::new(SluiceConfig {
        coalesce_ops: 3,
        ..SluiceConfig::default()
    });
    for i in 0..10 {
        let mut txn = Txn::new();
        txn.sync(Handle::from_raw(i));
        s.submit(&mut layer, C, txn).unwrap();
    }
    s.drain(&mut layer);
    assert_eq!(layer.handles, (0..10).collect::<Vec<u64>>());
}

#[test]
fn metrics_export_counters_gauges_and_latency() {
    use std::cell::Cell;
    use std::rc::Rc;
    let mut layer = StubLayer::default();
    let mut s = Sluice::new(SluiceConfig::default());
    let clock = Rc::new(Cell::new(100u64));
    let c = Rc::clone(&clock);
    s.set_now(move || c.get());
    s.submit(&mut layer, C, write_txn(1, 16)).unwrap();
    s.submit(&mut layer, C, write_txn(2, 16)).unwrap();
    let mut reg = Registry::new();
    s.export_metrics("sluice.", &mut reg);
    assert_eq!(reg.gauge("sluice.queue.txns"), 2);
    assert_eq!(reg.gauge("sluice.queue.ops"), 2);
    assert_eq!(reg.gauge("sluice.queue.bytes"), 32);
    assert_eq!(reg.counter("sluice.admitted"), 2);

    clock.set(400);
    s.drain(&mut layer);
    assert_eq!(s.latency().count(), 2);
    assert_eq!(s.latency().sum(), 600, "two completions, 300ns each");
    let mut reg = Registry::new();
    s.export_metrics("sluice.", &mut reg);
    assert_eq!(reg.gauge("sluice.queue.txns"), 0);
    assert_eq!(
        reg.gauge("sluice.queue.peak_txns"),
        2,
        "peak survives the drain"
    );
    assert_eq!(reg.counter("sluice.frames"), 1);
    assert_eq!(reg.histogram("sluice.latency_ns").unwrap().count(), 2);
}

#[test]
fn tracing_scope_binds_flush_spans_and_links_tickets() {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A substrate that, like Lasagna, binds a batch trace while
    /// committing.
    struct BindingLayer {
        scope: Scope,
        next_batch: Cell<u64>,
    }
    impl Dpapi for BindingLayer {
        fn pass_commit(&mut self, txn: Txn) -> dpapi::Result<Vec<OpResult>> {
            let b = self.next_batch.get();
            self.next_batch.set(b + 1);
            self.scope.bind_trace(TraceId(b | (1 << 63)));
            Ok(txn.into_ops().iter().map(|_| OpResult::Synced).collect())
        }
        fn pass_read(&mut self, _h: Handle, _o: u64, _l: usize) -> dpapi::Result<ReadResult> {
            Err(DpapiError::Unsupported("stub read"))
        }
        fn pass_close(&mut self, _h: Handle) -> dpapi::Result<()> {
            Ok(())
        }
    }

    let now = Arc::new(AtomicU64::new(0));
    let n = Arc::clone(&now);
    let scope = Scope::enabled(move || n.fetch_add(1, Ordering::Relaxed) + 1);
    let mut layer = BindingLayer {
        scope: scope.clone(),
        next_batch: Cell::new(1),
    };
    let mut s = Sluice::new(SluiceConfig::default());
    s.set_scope(scope.clone());
    let mut txn = Txn::new();
    txn.sync(Handle::from_raw(1));
    s.submit(&mut layer, C, txn).unwrap();
    s.drain(&mut layer);

    let trace = scope.snapshot();
    trace.validate().expect("span tree is well-formed");
    let batch = TraceId(1 | (1 << 63));
    let layers = trace.layers_of(batch);
    assert!(
        layers.contains(&"sluice"),
        "flush span joined the batch trace"
    );
    // The ticket span rejoined the same trace via open_linked.
    let names: Vec<&str> = trace
        .spans_of(batch)
        .iter()
        .map(|sp| sp.name.as_str())
        .collect();
    assert!(names.contains(&"flush"));
    assert!(names.contains(&"ticket"));
    assert!(trace.is_connected_tree(batch));
}
