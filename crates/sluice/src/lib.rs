//! The sluice: an asynchronous pipelined disclosure front door.
//!
//! The DPAPI makes every disclosure a synchronous call on the
//! application's critical path — even a batched [`dpapi::Txn`] costs
//! one `pass_commit` round trip per batch, paid by the caller. The
//! sluice decouples submission from commit: applications
//! [`Sluice::submit`] a transaction into a bounded queue and get a
//! [`Ticket`] back immediately; a drainer coalesces queued
//! transactions into larger *group frames* and drives `pass_commit`
//! off the caller's critical path, delivering each transaction's
//! index-aligned [`OpResult`]s through the ticket (poll with
//! [`Sluice::poll`]/[`Sluice::take`], or register a completion
//! callback with [`Sluice::submit_with`]).
//!
//! # Queue model
//!
//! The queue is strict FIFO over whole transactions. A transaction is
//! never split across frames and never reordered: frame `k` holds a
//! consecutive run of submitted transactions, and commit order equals
//! submission order. That is the **determinism contract** — the byte
//! stream reaching the provenance log is identical to committing the
//! same transactions synchronously one by one, because group framing
//! only concatenates op vectors (PR 4's differential oracle proved
//! batch boundaries do not change store bytes). The standing oracle
//! (`tests/differential.rs`) asserts `Store::segment_images`
//! byte-equality between the pipelined and synchronous paths.
//!
//! # Backpressure and admission control
//!
//! Two independent gates protect the pipeline:
//!
//! * **Backpressure** bounds what the *queue as a whole* may hold
//!   ([`SluiceConfig::max_queued_ops`] / `max_queued_bytes`). A
//!   submission that would overflow either budget blocks
//!   ([`BackpressurePolicy::Block`]: the submitter drains frames
//!   inline until its transaction fits — bounded memory, unbounded
//!   latency) or is refused ([`BackpressurePolicy::Reject`]:
//!   [`DpapiError::Rejected`] with a
//!   [`RejectReason::QueueFullOps`]/[`RejectReason::QueueFullBytes`]
//!   — bounded latency, caller retries).
//! * **Admission control** bounds what each *client* may have in
//!   flight ([`Quota`]). Quota exhaustion always rejects (typed
//!   [`RejectReason::QuotaOps`]/[`RejectReason::QuotaBytes`]),
//!   regardless of policy: a client over its quota must not be able
//!   to stall other clients by blocking.
//!
//! A transaction bigger than the whole queue budget can never fit and
//! is rejected under both policies.
//!
//! # Abort fallback
//!
//! Coalescing must not entangle failure domains. If a merged frame
//! aborts, validate-all-first atomicity guarantees none of its
//! effects were applied, so the drainer falls back to committing each
//! constituent transaction individually, in order: innocent
//! transactions still succeed, and only the guilty ticket reports its
//! [`DpapiError::TxnAborted`]. (This also covers the handle-scope
//! rule — a queued transaction naming a handle minted by an *earlier
//! queued* transaction's mkobj would fail merged but succeeds split.)
//!
//! # Observability
//!
//! With a [`Scope`] attached, each frame commit runs inside a
//! `sluice/flush` span, so the substrate's `bind_trace` stamps it
//! into the batch's trace; ticket resolutions then rejoin that trace
//! tree via [`Scope::open_linked`], which is how an asynchronous
//! completion stays attributable to the group frame that carried it.
//! [`Sluice::export_metrics`] pours counters, queue gauges and the
//! submit→completion latency histogram into a provscope
//! [`Registry`].

use std::collections::{BTreeMap, VecDeque};

use dpapi::{Dpapi, DpapiError, DpapiOp, OpResult, RejectReason, Txn};
use provscope::{Histogram, MetricSource, Registry, Scope, TraceId};

/// Identifies one submitting client for admission control.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u64);

/// How [`Sluice::submit`] behaves when the queue budget is exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Drain frames inline until the submission fits. The caller pays
    /// commit latency but never sees an error; queue memory stays
    /// bounded.
    #[default]
    Block,
    /// Refuse with [`DpapiError::Rejected`]. The caller decides when
    /// to retry; submit latency stays bounded.
    Reject,
}

/// Per-client in-flight ceilings (ops and payload bytes submitted but
/// not yet committed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quota {
    /// Maximum operations the client may have in flight.
    pub max_ops: usize,
    /// Maximum payload bytes the client may have in flight.
    pub max_bytes: usize,
}

impl Quota {
    /// No per-client limit (the shared queue budget still applies).
    pub const UNLIMITED: Quota = Quota {
        max_ops: usize::MAX,
        max_bytes: usize::MAX,
    };
}

impl Default for Quota {
    fn default() -> Self {
        Quota::UNLIMITED
    }
}

/// Sluice tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SluiceConfig {
    /// Shared queue budget: operations queued but not yet committed.
    pub max_queued_ops: usize,
    /// Shared queue budget: payload bytes (the `data` of queued
    /// write ops) not yet committed.
    pub max_queued_bytes: usize,
    /// Coalescing ceiling: a frame stops absorbing the next queued
    /// transaction once it holds this many ops. A single transaction
    /// larger than the ceiling still commits as its own frame.
    pub coalesce_ops: usize,
    /// What submit does when the queue budget is exhausted.
    pub policy: BackpressurePolicy,
    /// Quota applied to clients without an explicit [`Sluice::set_quota`].
    pub default_quota: Quota,
}

impl Default for SluiceConfig {
    fn default() -> Self {
        SluiceConfig {
            max_queued_ops: 1024,
            max_queued_bytes: 1 << 20,
            coalesce_ops: 32,
            policy: BackpressurePolicy::Block,
            default_quota: Quota::UNLIMITED,
        }
    }
}

/// Completion ticket returned by [`Sluice::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ticket(u64);

impl Ticket {
    /// The ticket's raw id (diagnostics).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Where a ticket's transaction currently stands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TicketStatus {
    /// Still queued; a future drain will commit it.
    Pending,
    /// Committed successfully; [`Sluice::take`] yields the results.
    Done,
    /// Commit failed; [`Sluice::take`] yields the error.
    Failed,
}

/// Monotone counters describing sluice activity. Level metrics (queue
/// depth, peaks) are exported as gauges by [`Sluice::export_metrics`]
/// instead, so re-absorbing the stats never double-counts them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SluiceStats {
    /// Transactions presented to `submit` (including rejected ones).
    pub submitted: u64,
    /// Transactions admitted into the queue.
    pub admitted: u64,
    /// Tickets resolved successfully.
    pub completed: u64,
    /// Tickets resolved with an error.
    pub failed: u64,
    /// Rejections: shared op budget exhausted.
    pub rejected_queue_ops: u64,
    /// Rejections: shared byte budget exhausted.
    pub rejected_queue_bytes: u64,
    /// Rejections: per-client op quota exhausted.
    pub rejected_quota_ops: u64,
    /// Rejections: per-client byte quota exhausted.
    pub rejected_quota_bytes: u64,
    /// Group frames committed.
    pub frames: u64,
    /// Transactions carried by those frames.
    pub frame_txns: u64,
    /// Operations carried by those frames.
    pub frame_ops: u64,
    /// Payload bytes carried by those frames.
    pub frame_bytes: u64,
    /// Frames whose merged commit aborted (triggering the split
    /// fallback when the frame held more than one transaction).
    pub aborted_frames: u64,
    /// Individual commits performed by the split fallback.
    pub split_commits: u64,
    /// Submissions that had to drain inline under
    /// [`BackpressurePolicy::Block`].
    pub blocked_submits: u64,
}

impl MetricSource for SluiceStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("submitted", self.submitted);
        out("admitted", self.admitted);
        out("completed", self.completed);
        out("failed", self.failed);
        out("rejected_queue_ops", self.rejected_queue_ops);
        out("rejected_queue_bytes", self.rejected_queue_bytes);
        out("rejected_quota_ops", self.rejected_quota_ops);
        out("rejected_quota_bytes", self.rejected_quota_bytes);
        out("frames", self.frames);
        out("frame_txns", self.frame_txns);
        out("frame_ops", self.frame_ops);
        out("frame_bytes", self.frame_bytes);
        out("aborted_frames", self.aborted_frames);
        out("split_commits", self.split_commits);
        out("blocked_submits", self.blocked_submits);
    }
}

/// One queued transaction plus its accounting.
struct Pending {
    ticket: Ticket,
    client: ClientId,
    ops: usize,
    bytes: usize,
    submitted_at: u64,
    txn: Txn,
}

type Completion = dpapi::Result<Vec<OpResult>>;
type Callback = Box<dyn FnOnce(Ticket, Completion)>;

/// The asynchronous disclosure pipeline. See the crate docs for the
/// queue model, backpressure policy and determinism contract.
///
/// The sluice is substrate-agnostic: it drives any `&mut dyn Dpapi` —
/// a `LibPass` over the simulated kernel, a PA-NFS client, or a raw
/// Lasagna volume — and the layer is passed per call rather than
/// owned, so one sluice can front whatever the caller currently
/// holds a borrow of.
#[derive(Default)]
pub struct Sluice {
    cfg: SluiceConfig,
    queue: VecDeque<Pending>,
    queued_ops: usize,
    queued_bytes: usize,
    inflight: BTreeMap<ClientId, (usize, usize)>,
    quotas: BTreeMap<ClientId, Quota>,
    next_ticket: u64,
    done: BTreeMap<Ticket, Completion>,
    callbacks: BTreeMap<Ticket, Callback>,
    stats: SluiceStats,
    peak_txns: u64,
    peak_ops: u64,
    peak_bytes: u64,
    latency: Histogram,
    now: Option<Box<dyn Fn() -> u64>>,
    scope: Scope,
}

impl Sluice {
    /// A sluice with the given configuration.
    pub fn new(cfg: SluiceConfig) -> Sluice {
        Sluice {
            cfg,
            ..Sluice::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SluiceConfig {
        &self.cfg
    }

    /// Attaches a tracing scope: frame commits run inside
    /// `sluice/flush` spans and ticket resolutions rejoin their
    /// frame's trace via `open_linked`.
    pub fn set_scope(&mut self, scope: Scope) {
        self.scope = scope;
    }

    /// Attaches a clock for the submit→completion latency histogram
    /// (virtual nanoseconds; without a clock no latency is recorded).
    pub fn set_now(&mut self, now: impl Fn() -> u64 + 'static) {
        self.now = Some(Box::new(now));
    }

    /// Sets `client`'s admission quota (overriding
    /// [`SluiceConfig::default_quota`]).
    pub fn set_quota(&mut self, client: ClientId, quota: Quota) {
        self.quotas.insert(client, quota);
    }

    /// Transactions currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Operations currently queued.
    pub fn queued_ops(&self) -> usize {
        self.queued_ops
    }

    /// Payload bytes currently queued.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// `client`'s in-flight (ops, bytes).
    pub fn in_flight_of(&self, client: ClientId) -> (usize, usize) {
        self.inflight.get(&client).copied().unwrap_or((0, 0))
    }

    /// Activity counters.
    pub fn stats(&self) -> SluiceStats {
        self.stats
    }

    /// The submit→completion latency histogram (empty without
    /// [`Sluice::set_now`]).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    fn cost_of(txn: &Txn) -> (usize, usize) {
        let bytes = txn
            .ops()
            .iter()
            .map(|op| match op {
                DpapiOp::Write { data, .. } => data.len(),
                _ => 0,
            })
            .sum();
        (txn.len(), bytes)
    }

    fn quota_of(&self, client: ClientId) -> Quota {
        self.quotas
            .get(&client)
            .copied()
            .unwrap_or(self.cfg.default_quota)
    }

    /// Submits a transaction for asynchronous commit, returning a
    /// completion ticket to [`Sluice::poll`]/[`Sluice::take`]/
    /// [`Sluice::wait`] on.
    ///
    /// `layer` is the substrate a blocking submission drains into; a
    /// non-blocking submission does not touch it. Admission control
    /// and backpressure may refuse with [`DpapiError::Rejected`] (see
    /// the crate docs); a rejected transaction was never enqueued and
    /// may be retried verbatim. An empty transaction completes
    /// immediately (matching `pass_commit`'s no-op contract) without
    /// consuming queue budget.
    pub fn submit(
        &mut self,
        layer: &mut dyn Dpapi,
        client: ClientId,
        txn: Txn,
    ) -> dpapi::Result<Ticket> {
        self.submit_inner(layer, client, txn, None)
    }

    /// [`Sluice::submit`], delivering the completion to `cb` instead
    /// of retaining it: when the transaction resolves, `cb` receives
    /// the ticket and the owned outcome, and nothing is kept for
    /// [`Sluice::poll`]/[`Sluice::take`] — the fire-and-forget shape
    /// whose completion storage cannot grow without bound.
    pub fn submit_with(
        &mut self,
        layer: &mut dyn Dpapi,
        client: ClientId,
        txn: Txn,
        cb: impl FnOnce(Ticket, Completion) + 'static,
    ) -> dpapi::Result<Ticket> {
        self.submit_inner(layer, client, txn, Some(Box::new(cb)))
    }

    fn submit_inner(
        &mut self,
        layer: &mut dyn Dpapi,
        client: ClientId,
        txn: Txn,
        cb: Option<Callback>,
    ) -> dpapi::Result<Ticket> {
        self.stats.submitted += 1;
        let (ops, bytes) = Self::cost_of(&txn);

        // Admission control: per-client quotas reject regardless of
        // the backpressure policy — an over-quota client must not
        // stall others by blocking.
        let quota = self.quota_of(client);
        let (cl_ops, cl_bytes) = self.in_flight_of(client);
        if cl_ops.saturating_add(ops) > quota.max_ops {
            self.stats.rejected_quota_ops += 1;
            return Err(DpapiError::Rejected(RejectReason::QuotaOps {
                client: client.0,
                in_flight: cl_ops,
                limit: quota.max_ops,
            }));
        }
        if cl_bytes.saturating_add(bytes) > quota.max_bytes {
            self.stats.rejected_quota_bytes += 1;
            return Err(DpapiError::Rejected(RejectReason::QuotaBytes {
                client: client.0,
                in_flight: cl_bytes,
                limit: quota.max_bytes,
            }));
        }

        // Backpressure: the shared queue budget.
        let mut blocked = false;
        while self.queued_ops.saturating_add(ops) > self.cfg.max_queued_ops
            || self.queued_bytes.saturating_add(bytes) > self.cfg.max_queued_bytes
        {
            let over_ops = self.queued_ops.saturating_add(ops) > self.cfg.max_queued_ops;
            // A transaction bigger than the whole budget can never
            // fit; draining an empty queue would spin forever.
            let oversized = self.queue.is_empty();
            if oversized || self.cfg.policy == BackpressurePolicy::Reject {
                let reason = if over_ops {
                    self.stats.rejected_queue_ops += 1;
                    RejectReason::QueueFullOps {
                        queued: self.queued_ops,
                        limit: self.cfg.max_queued_ops,
                    }
                } else {
                    self.stats.rejected_queue_bytes += 1;
                    RejectReason::QueueFullBytes {
                        queued: self.queued_bytes,
                        limit: self.cfg.max_queued_bytes,
                    }
                };
                return Err(DpapiError::Rejected(reason));
            }
            if !blocked {
                blocked = true;
                self.stats.blocked_submits += 1;
            }
            self.drain_one(layer);
        }

        self.stats.admitted += 1;
        let ticket = Ticket(self.next_ticket);
        self.next_ticket += 1;
        if let Some(cb) = cb {
            self.callbacks.insert(ticket, cb);
        }
        let submitted_at = self.now.as_ref().map(|f| f()).unwrap_or(0);

        if txn.is_empty() {
            // pass_commit of an empty txn is a no-op success; resolve
            // without consuming queue budget.
            self.resolve(ticket, client, 0, 0, submitted_at, Ok(Vec::new()), None);
            return Ok(ticket);
        }

        self.queued_ops += ops;
        self.queued_bytes += bytes;
        let fl = self.inflight.entry(client).or_insert((0, 0));
        fl.0 += ops;
        fl.1 += bytes;
        self.queue.push_back(Pending {
            ticket,
            client,
            ops,
            bytes,
            submitted_at,
            txn,
        });
        self.peak_txns = self.peak_txns.max(self.queue.len() as u64);
        self.peak_ops = self.peak_ops.max(self.queued_ops as u64);
        self.peak_bytes = self.peak_bytes.max(self.queued_bytes as u64);
        Ok(ticket)
    }

    /// Commits everything queued, one coalesced frame at a time.
    /// Returns the number of frames committed.
    pub fn drain(&mut self, layer: &mut dyn Dpapi) -> usize {
        let mut frames = 0;
        while self.drain_one(layer) {
            frames += 1;
        }
        frames
    }

    /// Commits one coalesced frame: the longest FIFO run of queued
    /// transactions whose combined op count stays within
    /// [`SluiceConfig::coalesce_ops`] (always at least one
    /// transaction). Returns false if the queue was empty.
    fn drain_one(&mut self, layer: &mut dyn Dpapi) -> bool {
        let Some(first) = self.queue.pop_front() else {
            return false;
        };
        let mut frame_ops = first.ops;
        let mut frame = vec![first];
        while let Some(next) = self.queue.front() {
            if frame_ops + next.ops > self.cfg.coalesce_ops {
                break;
            }
            frame_ops += next.ops;
            frame.push(self.queue.pop_front().expect("front just observed"));
        }
        for p in &frame {
            self.queued_ops -= p.ops;
            self.queued_bytes -= p.bytes;
        }
        self.stats.frames += 1;
        self.stats.frame_txns += frame.len() as u64;
        self.stats.frame_ops += frame_ops as u64;
        self.stats.frame_bytes += frame.iter().map(|p| p.bytes as u64).sum::<u64>();

        // Merge by cloning ops so the originals survive for the
        // split fallback; the clones die with the merged txn.
        let merged: Txn = frame
            .iter()
            .flat_map(|p| p.txn.ops().iter().cloned())
            .collect();
        let (outcome, trace) = self.commit_framed(layer, "flush", merged);
        match outcome {
            Ok(results) => {
                let mut off = 0;
                for p in frame {
                    let slice = results[off..off + p.ops].to_vec();
                    off += p.ops;
                    self.resolve(
                        p.ticket,
                        p.client,
                        p.ops,
                        p.bytes,
                        p.submitted_at,
                        Ok(slice),
                        trace,
                    );
                }
            }
            Err(err) if frame.len() == 1 => {
                self.stats.aborted_frames += 1;
                let p = frame.pop().expect("single-txn frame");
                self.resolve(
                    p.ticket,
                    p.client,
                    p.ops,
                    p.bytes,
                    p.submitted_at,
                    Err(err),
                    trace,
                );
            }
            Err(_) => {
                // The merged frame aborted before applying anything
                // (validate-all-first); re-commit each transaction on
                // its own so only the guilty one fails.
                self.stats.aborted_frames += 1;
                for p in frame {
                    self.stats.split_commits += 1;
                    let (outcome, trace) = self.commit_framed(layer, "flush-split", p.txn);
                    self.resolve(
                        p.ticket,
                        p.client,
                        p.ops,
                        p.bytes,
                        p.submitted_at,
                        outcome,
                        trace,
                    );
                }
            }
        }
        true
    }

    /// Runs one `pass_commit` inside a sluice span and captures the
    /// trace the substrate bound to it (Lasagna's `bind_trace` stamps
    /// the window during the commit).
    fn commit_framed(
        &mut self,
        layer: &mut dyn Dpapi,
        name: &str,
        txn: Txn,
    ) -> (Completion, Option<TraceId>) {
        let span = self.scope.open("sluice", name);
        let outcome = layer.pass_commit(txn);
        let trace = self.scope.current_ctx().and_then(|c| c.trace);
        self.scope.close(span);
        (outcome, trace)
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve(
        &mut self,
        ticket: Ticket,
        client: ClientId,
        ops: usize,
        bytes: usize,
        submitted_at: u64,
        outcome: Completion,
        trace: Option<TraceId>,
    ) {
        if let Some(fl) = self.inflight.get_mut(&client) {
            fl.0 -= ops;
            fl.1 -= bytes;
            if *fl == (0, 0) {
                self.inflight.remove(&client);
            }
        }
        match &outcome {
            Ok(_) => self.stats.completed += 1,
            Err(_) => self.stats.failed += 1,
        }
        if let Some(now) = &self.now {
            self.latency.observe(now().saturating_sub(submitted_at));
        }
        // The ticket's completion rejoins its frame's span tree: an
        // async resolution stays attributable to the group frame that
        // carried it.
        let span = match trace {
            Some(t) => self.scope.open_linked("sluice", "ticket", t),
            None => provscope::SpanHandle::NONE,
        };
        if let Some(cb) = self.callbacks.remove(&ticket) {
            cb(ticket, outcome);
        } else {
            self.done.insert(ticket, outcome);
        }
        self.scope.close(span);
    }

    /// Where `ticket` stands. `None` for a ticket this sluice never
    /// issued, already [`Sluice::take`]n, or delivered to a callback.
    pub fn poll(&self, ticket: Ticket) -> Option<TicketStatus> {
        if self.queue.iter().any(|p| p.ticket == ticket) {
            return Some(TicketStatus::Pending);
        }
        self.done.get(&ticket).map(|c| match c {
            Ok(_) => TicketStatus::Done,
            Err(_) => TicketStatus::Failed,
        })
    }

    /// Removes and returns `ticket`'s completion, if resolved.
    pub fn take(&mut self, ticket: Ticket) -> Option<Completion> {
        self.done.remove(&ticket)
    }

    /// Drains until `ticket` resolves, then returns its completion —
    /// the synchronous escape hatch for a caller that needs its
    /// results *now*. Errors if the ticket is unknown or was
    /// delivered to a callback.
    pub fn wait(&mut self, layer: &mut dyn Dpapi, ticket: Ticket) -> Completion {
        loop {
            if let Some(c) = self.take(ticket) {
                return c;
            }
            if !self.drain_one(layer) {
                return Err(DpapiError::Inconsistent(format!(
                    "sluice ticket {} is unknown (never issued, already taken, \
                     or delivered to a callback)",
                    ticket.raw()
                )));
            }
        }
    }

    /// Pours counters (prefixed), queue gauges and the latency
    /// histogram into `reg`. Current levels use `set_gauge`; peaks
    /// use `gauge_max` so repeated exports and cross-member merges
    /// keep the high-water mark. The configured queue budgets ride
    /// along so health rules can compare each peak against its bound
    /// (`queue.peak_ops` vs `queue.budget_ops`) without reaching
    /// back into the sluice.
    pub fn export_metrics(&self, prefix: &str, reg: &mut Registry) {
        reg.absorb(prefix, &self.stats);
        reg.set_gauge(&format!("{prefix}queue.txns"), self.queue.len() as u64);
        reg.set_gauge(&format!("{prefix}queue.ops"), self.queued_ops as u64);
        reg.set_gauge(&format!("{prefix}queue.bytes"), self.queued_bytes as u64);
        reg.gauge_max(&format!("{prefix}queue.peak_txns"), self.peak_txns);
        reg.gauge_max(&format!("{prefix}queue.peak_ops"), self.peak_ops);
        reg.gauge_max(&format!("{prefix}queue.peak_bytes"), self.peak_bytes);
        reg.set_gauge(
            &format!("{prefix}queue.budget_ops"),
            self.cfg.max_queued_ops as u64,
        );
        reg.set_gauge(
            &format!("{prefix}queue.budget_bytes"),
            self.cfg.max_queued_bytes as u64,
        );
        if self.latency.count() > 0 {
            reg.absorb_histogram(&format!("{prefix}latency_ns"), &self.latency);
        }
    }
}

#[cfg(test)]
mod tests;
