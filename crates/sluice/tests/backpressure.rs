//! Backpressure and admission control over a **live machine**: the
//! sluice's unit tests exercise the policies against a mock layer;
//! these drive them through `libpass` into a real PASS volume, so
//! Block-policy inline drains really commit and rejected submissions
//! really leave no trace in the store.
//!
//! Everything here is deterministic — the typed [`RejectReason`]
//! payloads are asserted exactly, not pattern-matched loosely.

use dpapi::{Attribute, Bundle, DpapiError, Handle, ProvenanceRecord, RejectReason, Value};
use passv2::{LibPass, System};
use sim_os::proc::Pid;
use sluice::{BackpressurePolicy, ClientId, Quota, Sluice, SluiceConfig, TicketStatus};

struct Fixture {
    sys: System,
    pid: Pid,
    app: Handle,
}

fn fixture() -> Fixture {
    let mut sys = System::single_volume();
    let pid = sys.spawn("app");
    let app = sys.kernel.pass_mkobj(pid, None).unwrap();
    Fixture { sys, pid, app }
}

/// One single-op disclosure transaction carrying `bytes` of payload
/// via a write-op record (payload bytes are what the byte budgets
/// meter).
fn one_op_txn(app: Handle, bytes: usize) -> dpapi::Txn {
    let mut txn = dpapi::Txn::new();
    if bytes == 0 {
        txn.disclose(
            app,
            Bundle::single(
                app,
                ProvenanceRecord::new(Attribute::Other("TICK".into()), Value::Int(1)),
            ),
        );
    } else {
        txn.write(app, 0, vec![b'x'; bytes], Bundle::new());
    }
    txn
}

/// Reject policy: submissions past the shared op budget fail with the
/// exact typed reason, the queue is untouched by the rejection, and a
/// drain makes room for a resubmit.
#[test]
fn reject_policy_returns_exact_queue_full_error() {
    let mut fx = fixture();
    let mut pipe = Sluice::new(SluiceConfig {
        max_queued_ops: 4,
        coalesce_ops: 100,
        policy: BackpressurePolicy::Reject,
        ..SluiceConfig::default()
    });
    let client = ClientId(7);
    let mut tickets = Vec::new();
    for _ in 0..4 {
        let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
        tickets.push(
            pipe.submit(&mut layer, client, one_op_txn(fx.app, 0))
                .unwrap(),
        );
    }
    assert_eq!(pipe.queue_depth(), 4);

    // The fifth submission is refused, precisely.
    let err = {
        let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
        pipe.submit(&mut layer, client, one_op_txn(fx.app, 0))
            .unwrap_err()
    };
    assert_eq!(
        err,
        DpapiError::Rejected(RejectReason::QueueFullOps {
            queued: 4,
            limit: 4
        })
    );
    // Rejection is side-effect free: nothing drained, nothing dropped.
    assert_eq!(pipe.queue_depth(), 4);
    assert_eq!(pipe.stats().rejected_queue_ops, 1);

    // Draining clears the budget; a resubmit is admitted and commits.
    let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
    assert!(pipe.drain(&mut layer) >= 1);
    let t = pipe
        .submit(&mut layer, client, one_op_txn(fx.app, 0))
        .unwrap();
    pipe.wait(&mut layer, t).unwrap();
    for t in tickets {
        assert_eq!(pipe.poll(t), Some(TicketStatus::Done));
    }
}

/// Reject policy, byte budget: the same exactness for payload bytes.
#[test]
fn reject_policy_returns_exact_queue_bytes_error() {
    let mut fx = fixture();
    let mut pipe = Sluice::new(SluiceConfig {
        max_queued_ops: 1024,
        max_queued_bytes: 100,
        coalesce_ops: 100,
        policy: BackpressurePolicy::Reject,
        ..SluiceConfig::default()
    });
    let client = ClientId(1);
    {
        let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
        pipe.submit(&mut layer, client, one_op_txn(fx.app, 80))
            .unwrap();
    }
    let err = {
        let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
        pipe.submit(&mut layer, client, one_op_txn(fx.app, 40))
            .unwrap_err()
    };
    assert_eq!(
        err,
        DpapiError::Rejected(RejectReason::QueueFullBytes {
            queued: 80,
            limit: 100
        })
    );
}

/// Quota exhaustion rejects with the typed per-client error — even
/// under the Block policy — while an unthrottled client sails through.
#[test]
fn quota_exhaustion_is_typed_and_per_client() {
    let mut fx = fixture();
    let mut pipe = Sluice::new(SluiceConfig {
        policy: BackpressurePolicy::Block,
        ..SluiceConfig::default()
    });
    let (alice, bob) = (ClientId(1), ClientId(2));
    pipe.set_quota(
        alice,
        Quota {
            max_ops: 2,
            max_bytes: usize::MAX,
        },
    );
    for _ in 0..2 {
        let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
        pipe.submit(&mut layer, alice, one_op_txn(fx.app, 0))
            .unwrap();
    }
    let err = {
        let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
        pipe.submit(&mut layer, alice, one_op_txn(fx.app, 0))
            .unwrap_err()
    };
    assert_eq!(
        err,
        DpapiError::Rejected(RejectReason::QuotaOps {
            client: 1,
            in_flight: 2,
            limit: 2
        })
    );
    assert_eq!(pipe.stats().rejected_quota_ops, 1);
    assert_eq!(pipe.in_flight_of(alice), (2, 0));

    // Bob is unaffected by Alice's quota.
    let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
    let t = pipe.submit(&mut layer, bob, one_op_txn(fx.app, 0)).unwrap();
    pipe.wait(&mut layer, t).unwrap();
    // Alice's in-flight fell to zero with the drain; she may submit
    // again.
    assert_eq!(pipe.in_flight_of(alice), (0, 0));
    pipe.submit(&mut layer, alice, one_op_txn(fx.app, 0))
        .unwrap();
}

/// Block policy: submissions past the budget never error — they drain
/// frames inline into the live volume, keeping queue memory bounded,
/// and every ticket still resolves.
#[test]
fn block_policy_drains_inline_and_loses_nothing() {
    let mut fx = fixture();
    let mut pipe = Sluice::new(SluiceConfig {
        max_queued_ops: 2,
        coalesce_ops: 100,
        policy: BackpressurePolicy::Block,
        ..SluiceConfig::default()
    });
    let client = ClientId(3);
    let mut tickets = Vec::new();
    for _ in 0..5 {
        let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
        tickets.push(
            pipe.submit(&mut layer, client, one_op_txn(fx.app, 0))
                .unwrap(),
        );
        assert!(pipe.queue_depth() <= 2, "budget held while blocking");
    }
    let stats = pipe.stats();
    assert_eq!(stats.admitted, 5);
    assert!(
        stats.blocked_submits > 0,
        "submissions past the budget drained inline: {stats:?}"
    );
    let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
    pipe.drain(&mut layer);
    for t in tickets {
        let results = pipe.take(t).expect("resolved").expect("committed");
        assert_eq!(results.len(), 1);
    }
}

/// A transaction larger than the whole queue budget can never fit:
/// rejected under Block too, instead of blocking forever.
#[test]
fn oversized_txn_is_rejected_under_block() {
    let mut fx = fixture();
    let mut pipe = Sluice::new(SluiceConfig {
        max_queued_ops: 2,
        policy: BackpressurePolicy::Block,
        ..SluiceConfig::default()
    });
    let mut txn = dpapi::Txn::new();
    for _ in 0..3 {
        txn.disclose(
            fx.app,
            Bundle::single(
                fx.app,
                ProvenanceRecord::new(Attribute::Other("BIG".into()), Value::Int(0)),
            ),
        );
    }
    let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
    let err = pipe.submit(&mut layer, ClientId(0), txn).unwrap_err();
    assert_eq!(
        err,
        DpapiError::Rejected(RejectReason::QueueFullOps {
            queued: 0,
            limit: 2
        })
    );
}
