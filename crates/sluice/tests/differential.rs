//! The sluice's standing differential oracle over a live machine:
//! committing a script of disclosure transactions synchronously
//! (`pass_commit` per transaction) and pipelining the same script
//! through a [`Sluice`] over libpass — with aggressive coalescing —
//! produce **byte-identical** provenance stores.
//!
//! Checked twice per case: single-daemon ingest, and a 2-member
//! threaded-cluster ingest of a two-volume machine (the fan-in tier
//! must see the same logs no matter how the front door framed them).

use dpapi::{Attribute, Bundle, DpapiOp, Handle, ProvenanceRecord, Value, VolumeId};
use passv2::{LibPass, System, SystemBuilder};
use proptest::prelude::*;
use sim_os::cost::CostModel;
use sim_os::proc::Pid;
use sim_os::syscall::OpenFlags;
use sluice::{ClientId, Sluice, SluiceConfig};
use waldo::WaldoConfig;

const FILES: usize = 4;

#[derive(Clone, Debug)]
enum OpSpec {
    FileWrite {
        file: usize,
        data_len: usize,
        nrecs: usize,
        tag: u8,
    },
    AppDisclose {
        tag: u8,
    },
    FreezeFile {
        file: usize,
    },
    SyncApp,
}

fn arb_op() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (0..FILES, 0usize..48, 0usize..3, any::<u8>()).prop_map(|(file, data_len, nrecs, tag)| {
            OpSpec::FileWrite {
                file,
                data_len,
                nrecs,
                tag,
            }
        }),
        any::<u8>().prop_map(|tag| OpSpec::AppDisclose { tag }),
        (0..FILES).prop_map(|file| OpSpec::FreezeFile { file }),
        Just(OpSpec::SyncApp),
    ]
}

/// A script: each element is one submitted transaction (1..=3 ops).
fn arb_script() -> impl Strategy<Value = Vec<Vec<OpSpec>>> {
    proptest::collection::vec(proptest::collection::vec(arb_op(), 1..4), 1..10)
}

struct Fixture {
    sys: System,
    pid: Pid,
    files: Vec<Handle>,
    app: Handle,
}

/// Two calls build byte-identical machines. With `volumes == 2` the
/// files alternate between `/v1` and `/v2`, so transactions span
/// volumes and the cluster's routing is exercised.
fn fixture(volumes: u32) -> Fixture {
    let mut b = SystemBuilder::new(CostModel::default()).waldo_config(WaldoConfig {
        ingest_batch: 1 << 20,
        ..WaldoConfig::default()
    });
    if volumes == 1 {
        b = b.pass_volume("/", VolumeId(1));
    } else {
        for v in 1..=volumes {
            b = b.pass_volume(&format!("/v{v}"), VolumeId(v));
        }
    }
    let mut sys = b.build();
    let pid = sys.spawn("app");
    let mut files = Vec::new();
    for i in 0..FILES {
        let path = if volumes == 1 {
            format!("/f{i}")
        } else {
            format!("/v{}/f{i}", (i as u32 % volumes) + 1)
        };
        sys.kernel.write_file(pid, &path, b"seed").unwrap();
        let fd = sys.kernel.open(pid, &path, OpenFlags::RDWR_CREATE).unwrap();
        files.push(sys.kernel.pass_handle_for_fd(pid, fd).unwrap());
    }
    let app = sys.kernel.pass_mkobj(pid, None).unwrap();
    Fixture {
        sys,
        pid,
        files,
        app,
    }
}

fn build_txn(fx: &Fixture, specs: &[OpSpec]) -> dpapi::Txn {
    let mut txn = dpapi::Txn::new();
    for spec in specs {
        match spec {
            OpSpec::FileWrite {
                file,
                data_len,
                nrecs,
                tag,
            } => {
                let h = fx.files[*file];
                let data = vec![b'a' + (*tag % 26); *data_len];
                let mut bundle = Bundle::new();
                for j in 0..*nrecs {
                    bundle.push(
                        h,
                        ProvenanceRecord::new(
                            Attribute::Other(format!("K{j}")),
                            Value::str(format!("v{tag}")),
                        ),
                    );
                }
                txn.add(DpapiOp::Write {
                    handle: h,
                    offset: 0,
                    data,
                    bundle,
                });
            }
            OpSpec::AppDisclose { tag } => {
                txn.disclose(
                    fx.app,
                    Bundle::single(
                        fx.app,
                        ProvenanceRecord::new(
                            Attribute::Other("PHASE".into()),
                            Value::str(format!("p{tag}")),
                        ),
                    ),
                );
            }
            OpSpec::FreezeFile { file } => {
                txn.freeze(fx.files[*file]);
            }
            OpSpec::SyncApp => {
                txn.sync(fx.app);
            }
        }
    }
    txn
}

/// Single-daemon ingest of everything pending.
fn daemon_images(fx: &mut Fixture) -> Vec<Vec<u8>> {
    let mut waldo = fx.sys.spawn_waldo();
    for (_, logs) in fx.sys.rotate_all_logs() {
        for log in logs {
            waldo.ingest_log_file(&mut fx.sys.kernel, &log);
        }
    }
    waldo.db.segment_images()
}

/// 2-member threaded-cluster ingest; returns the merged store images.
fn cluster_images(fx: &mut Fixture) -> Vec<Vec<u8>> {
    fx.sys.rotate_all_logs();
    let mut cluster = fx.sys.spawn_cluster_threaded(2);
    let volumes = fx.sys.volumes.clone();
    cluster.poll_volumes(&mut fx.sys.kernel, &volumes);
    cluster.merged_store().segment_images()
}

fn run_sync(script: &[Vec<OpSpec>], volumes: u32) -> Fixture {
    let mut fx = fixture(volumes);
    for specs in script {
        let txn = build_txn(&fx, specs);
        fx.sys.kernel.pass_commit(fx.pid, txn).unwrap();
    }
    fx
}

fn run_pipelined(script: &[Vec<OpSpec>], volumes: u32) -> (Fixture, sluice::SluiceStats) {
    let mut fx = fixture(volumes);
    let mut pipe = Sluice::new(SluiceConfig {
        coalesce_ops: 8,
        ..SluiceConfig::default()
    });
    let mut tickets = Vec::new();
    for specs in script {
        let txn = build_txn(&fx, specs);
        let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
        tickets.push(pipe.submit(&mut layer, ClientId(1), txn).unwrap());
    }
    {
        let mut layer = LibPass::new(&mut fx.sys.kernel, fx.pid);
        pipe.drain(&mut layer);
    }
    // Every ticket resolved successfully with one result per op.
    for (t, specs) in tickets.into_iter().zip(script) {
        let results = pipe.take(t).expect("resolved").expect("committed");
        assert_eq!(results.len(), specs.len());
    }
    let stats = pipe.stats();
    (fx, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Single-daemon oracle: the pipelined store is byte-equal to the
    /// synchronous store, while committing in fewer frames.
    #[test]
    fn pipelined_equals_sync_single_daemon(script in arb_script()) {
        let mut sync_fx = run_sync(&script, 1);
        let (mut pipe_fx, stats) = run_pipelined(&script, 1);
        prop_assert_eq!(daemon_images(&mut sync_fx), daemon_images(&mut pipe_fx));
        prop_assert_eq!(stats.admitted, script.len() as u64);
        prop_assert!(stats.frames <= stats.frame_txns);
    }

    /// Cluster oracle: same equality when a 2-member threaded cluster
    /// ingests a two-volume machine.
    #[test]
    fn pipelined_equals_sync_threaded_cluster(script in arb_script()) {
        let mut sync_fx = run_sync(&script, 2);
        let (mut pipe_fx, _) = run_pipelined(&script, 2);
        prop_assert_eq!(cluster_images(&mut sync_fx), cluster_images(&mut pipe_fx));
    }
}

/// The fixed sequence kept as a plain test so a regression names
/// itself without proptest shrinking.
#[test]
fn canonical_script_pipelined_equals_sync() {
    let script = vec![
        vec![
            OpSpec::FileWrite {
                file: 0,
                data_len: 16,
                nrecs: 2,
                tag: 3,
            },
            OpSpec::AppDisclose { tag: 7 },
        ],
        vec![OpSpec::FreezeFile { file: 0 }],
        vec![
            OpSpec::FileWrite {
                file: 1,
                data_len: 8,
                nrecs: 0,
                tag: 9,
            },
            OpSpec::SyncApp,
        ],
        vec![OpSpec::FileWrite {
            file: 2,
            data_len: 1,
            nrecs: 1,
            tag: 1,
        }],
    ];
    let mut sync_fx = run_sync(&script, 1);
    let (mut pipe_fx, stats) = run_pipelined(&script, 1);
    assert_eq!(daemon_images(&mut sync_fx), daemon_images(&mut pipe_fx));
    // 7 ops over a coalesce window of 8 and 4 txns: fewer frames than
    // transactions, i.e. the pipeline actually amortized commits.
    assert!(
        stats.frames < stats.frame_txns,
        "expected coalescing: {stats:?}"
    );
}
