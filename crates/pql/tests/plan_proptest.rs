//! Differential property test: the planned pipeline ([`pql::plan`])
//! must agree with the naive evaluator ([`pql::eval::execute`]) on
//! randomized queries over randomized graphs.
//!
//! The naive evaluator is the executable specification; the planner
//! may prune, push predicates into `lookup_attr` and reorder
//! bindings, but the produced `ResultSet` must be identical — exactly
//! (columns, rows, order) when the written binding order is kept, and
//! up to row permutation when the planner reordered sources.

use dpapi::{ObjectRef, Pnode, Value, Version, VolumeId};
use pql::{AttrLookup, AttrPredicate, EdgeLabel, GraphSource, ResultSet};
use proptest::prelude::*;

/// A randomized acyclic graph: node `i` may have `input` edges only
/// toward lower-numbered nodes (so closures terminate), alternating
/// FILE/PROC types and names drawn from a tiny pool so predicates hit
/// often.
#[derive(Clone, Debug)]
struct GenGraph {
    types: Vec<&'static str>,
    names: Vec<String>,
    /// `edges[i]` = input targets of node `i` (all `< i`).
    edges: Vec<Vec<usize>>,
    /// When true, `lookup_attr` answers from a (scan-built) index and
    /// reports `indexed`, exercising the planner's index path.
    indexed: bool,
}

fn r(n: usize) -> ObjectRef {
    ObjectRef::new(Pnode::new(VolumeId(1), n as u64 + 1), Version(0))
}

impl GenGraph {
    fn index_of(&self, node: ObjectRef) -> Option<usize> {
        let i = (node.pnode.number as usize).checked_sub(1)?;
        (i < self.types.len() && node.version.0 == 0 && node.pnode.volume.0 == 1).then_some(i)
    }
}

impl GraphSource for GenGraph {
    fn class_members(&self, class: &str) -> Vec<ObjectRef> {
        let lower = class.to_ascii_lowercase();
        (0..self.types.len())
            .filter(|&i| lower == "obj" || self.types[i].eq_ignore_ascii_case(&lower))
            .map(r)
            .collect() // ascending by construction
    }
    fn attr(&self, node: ObjectRef, name: &str) -> Option<Value> {
        let i = self.index_of(node)?;
        match name.to_ascii_lowercase().as_str() {
            "name" => Some(Value::Str(self.names[i].clone())),
            "type" => Some(Value::str(self.types[i].to_ascii_uppercase())),
            "pnode" => Some(Value::Int(node.pnode.number as i64)),
            _ => None,
        }
    }
    fn out_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
        if !matches!(label, EdgeLabel::Input | EdgeLabel::Any) {
            return vec![];
        }
        self.index_of(node)
            .map(|i| self.edges[i].iter().map(|&j| r(j)).collect())
            .unwrap_or_default()
    }
    fn in_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
        if !matches!(label, EdgeLabel::Input | EdgeLabel::Any) {
            return vec![];
        }
        let Some(i) = self.index_of(node) else {
            return vec![];
        };
        (0..self.types.len())
            .filter(|&j| self.edges[j].contains(&i))
            .map(r)
            .collect()
    }
    fn lookup_attr(&self, class: &str, attr: &str, pred: &AttrPredicate) -> AttrLookup {
        let nodes: Vec<ObjectRef> = self
            .class_members(class)
            .into_iter()
            .filter(|n| pred.matches(self.attr(*n, attr).as_ref()))
            .collect();
        AttrLookup {
            nodes,
            indexed: self.indexed,
        }
    }
    fn class_size(&self, class: &str) -> Option<usize> {
        self.indexed.then(|| self.class_members(class).len())
    }
}

fn arb_graph() -> impl Strategy<Value = GenGraph> {
    (2usize..12, any::<u64>(), any::<bool>()).prop_map(|(n, seed, indexed)| {
        // Deterministic pseudo-random expansion from one seed keeps
        // shrinking effective.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let names = ["/a.gif", "/b.dat", "/a.gif", "/c"];
        let mut graph = GenGraph {
            types: Vec::new(),
            names: Vec::new(),
            edges: Vec::new(),
            indexed,
        };
        for i in 0..n {
            graph
                .types
                .push(if next() % 2 == 0 { "file" } else { "proc" });
            graph
                .names
                .push(names[(next() % names.len() as u64) as usize].to_string());
            let mut targets = Vec::new();
            for j in 0..i {
                if next() % 3 == 0 {
                    targets.push(j);
                }
            }
            graph.edges.push(targets);
        }
        graph
    })
}

/// A random query from a small grammar: one class-rooted source, an
/// optional dependent path source, and an optional conjunction of
/// name/type predicates (equality, prefix-`like`, non-prefix `like`).
fn arb_query() -> impl Strategy<Value = String> {
    const CLASSES: [&str; 3] = ["file", "proc", "obj"];
    const STEPS: [&str; 6] = [
        "",
        "F.input as A",
        "F.input* as A",
        "F.input+ as A",
        "F.input~* as A",
        "F.input? as A",
    ];
    const PREDS: [&str; 8] = [
        "",
        "F.name = '/a.gif'",
        "F.name = '/b.dat'",
        "F.name like '/a*'",
        "F.name like '*.gif'",
        "F.type = 'FILE'",
        "F.name != '/c'",
        "A.name = '/b.dat'",
    ];
    const SELECTS: [&str; 5] = ["F", "A", "F.name", "A, F.name", "count(A)"];
    (0usize..3, 0usize..6, 0usize..5, 0usize..8, 0usize..8).prop_map(
        |(class, step, select, p1, p2)| {
            let (class, step, select) = (CLASSES[class], STEPS[step], SELECTS[select]);
            let (p1, p2) = (PREDS[p1], PREDS[p2]);
            // `A` only exists when the second source does; fall back
            // to F-shaped select/predicates otherwise.
            let has_a = !step.is_empty();
            let select = if !has_a && select.contains('A') {
                "F.name"
            } else {
                select
            };
            let mut q = format!("select {select} from Provenance.{class} as F");
            if has_a {
                q.push(' ');
                q.push_str(step);
            }
            let usable = |p: &str| !p.is_empty() && (has_a || !p.starts_with("A."));
            let parts: Vec<&str> = [p1, p2].into_iter().filter(|p| usable(p)).collect();
            if !parts.is_empty() {
                q.push_str(" where ");
                q.push_str(&parts.join(" and "));
            }
            q
        },
    )
}

fn canonical(rs: &ResultSet) -> Vec<String> {
    let mut rows: Vec<String> = rs.rows.iter().map(|row| format!("{row:?}")).collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Planned == naive on every generated (graph, query) pair.
    #[test]
    fn planned_pipeline_matches_naive_evaluator(
        graph in arb_graph(),
        query in arb_query(),
    ) {
        let parsed = pql::parse(&query).unwrap();
        let naive = pql::execute_naive(&parsed, &graph).unwrap();
        let planned = pql::plan::execute(&parsed, &graph).unwrap();
        prop_assert_eq!(&planned.result.columns, &naive.columns);
        if planned.stats.bindings_reordered {
            prop_assert_eq!(canonical(&planned.result), canonical(&naive));
        } else {
            prop_assert_eq!(&planned.result.rows, &naive.rows);
        }
    }

    /// The same query answers identically whether `lookup_attr` is
    /// index-backed or the scan default — the substitution the
    /// planner performs must be invisible.
    #[test]
    fn indexed_and_scan_lookups_agree(
        graph in arb_graph(),
        query in arb_query(),
    ) {
        let mut scan = graph.clone();
        scan.indexed = false;
        let mut indexed = graph;
        indexed.indexed = true;
        let a = pql::query_with_stats(&query, &scan).unwrap();
        let b = pql::query_with_stats(&query, &indexed).unwrap();
        prop_assert_eq!(a.result, b.result);
    }
}
