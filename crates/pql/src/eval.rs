//! The naive PQL evaluator — the semantic reference.
//!
//! Queries run against any [`GraphSource`] — an OEM-style object
//! graph with attributed nodes and labeled, directed edges. The
//! `waldo` crate implements the trait for its provenance database.
//!
//! [`execute`] here is the *naive* evaluator: it materializes the
//! full cartesian expansion of the `from` clause and only then
//! applies `where`. It is kept as the executable specification the
//! planned pipeline ([`crate::plan`]) is differentially tested
//! against; production queries go through [`crate::query`], which
//! plans.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

use dpapi::{ObjectRef, Value};

use crate::ast::*;
use crate::plan::{AttrLookup, AttrPredicate, PlanStats};
use crate::PqlError;

/// An edge label in the provenance graph.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum EdgeLabel {
    /// Ancestry (`INPUT` records, including implicit version edges —
    /// "zero or more input relationships" in the paper's sample query
    /// follows these).
    Input,
    /// Only the implicit previous-version edge.
    Version,
    /// PA-links: session → URL visit.
    VisitedUrl,
    /// PA-links: file → its source URL.
    FileUrl,
    /// PA-links: file → page viewed at download time.
    CurrentUrl,
    /// Any ancestry edge of any label.
    Any,
    /// An application-defined label (matched against `Attribute::Other`).
    Named(String),
}

impl EdgeLabel {
    /// Maps a query-text label to an edge label.
    pub fn from_name(name: &str) -> EdgeLabel {
        match name.to_ascii_lowercase().as_str() {
            "input" => EdgeLabel::Input,
            "version" => EdgeLabel::Version,
            "visited_url" => EdgeLabel::VisitedUrl,
            "file_url" => EdgeLabel::FileUrl,
            "current_url" => EdgeLabel::CurrentUrl,
            "any" => EdgeLabel::Any,
            other => EdgeLabel::Named(other.to_ascii_uppercase()),
        }
    }
}

/// The graph interface PQL evaluates over.
pub trait GraphSource {
    /// All members of a class (`file`, `proc`, `pipe`, `session`,
    /// `operator`, `function`, or `obj` for every object).
    ///
    /// **Contract:** the result is sorted ascending. The evaluator
    /// relies on this for deterministic row order instead of
    /// re-sorting every scan.
    fn class_members(&self, class: &str) -> Vec<ObjectRef>;

    /// An attribute of a node. Implementations should also answer the
    /// pseudo-attributes `pnode`, `version` and `volume`.
    fn attr(&self, node: ObjectRef, name: &str) -> Option<Value>;

    /// Edges from `node` toward its ancestors with the given label.
    fn out_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef>;

    /// Edges from `node` toward its descendants with the given label.
    fn in_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef>;

    /// Every node reachable from `node` in one or more hops over
    /// edges matching `label` (`node` itself is excluded; the
    /// provenance graph is acyclic, so it is never re-reached). The
    /// evaluator uses this for `label*`/`label+` path steps; the
    /// default is a plain BFS, and storage backends may override it
    /// with a memoized implementation. The result is sorted.
    fn closure(&self, node: ObjectRef, label: &EdgeLabel, inverse: bool) -> Vec<ObjectRef> {
        let mut seen: HashSet<ObjectRef> = HashSet::new();
        seen.insert(node);
        let mut out: Vec<ObjectRef> = Vec::new();
        let mut frontier = vec![node];
        while let Some(n) = frontier.pop() {
            let next = if inverse {
                self.in_edges(n, label)
            } else {
                self.out_edges(n, label)
            };
            for m in next {
                if seen.insert(m) {
                    out.push(m);
                    frontier.push(m);
                }
            }
        }
        out.sort();
        out
    }

    /// Members of `class` whose attribute `attr` satisfies `pred` —
    /// the planner's pushdown hook ([`crate::plan`]).
    ///
    /// The default is scan-based (class scan plus post-filter,
    /// `indexed = false`), so toy sources keep working untouched.
    /// Storage backends with secondary indexes override it to answer
    /// from the index and report `indexed = true`; the result must
    /// equal the default's — same refs, same (sorted) order — since
    /// the planner substitutes one for the other freely.
    fn lookup_attr(&self, class: &str, attr: &str, pred: &AttrPredicate) -> AttrLookup {
        crate::plan::scan_lookup(self, class, attr, pred)
    }

    /// Approximate member count of `class`, if the backend can answer
    /// it without a scan. Purely a planner-statistics hint (it feeds
    /// the `rows_pruned` / `closure_calls_saved` estimates in
    /// [`PlanStats`]); `None` (the default) just zeroes those
    /// estimates.
    fn class_size(&self, _class: &str) -> Option<usize> {
        None
    }
}

/// One output cell.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum OutValue {
    /// A graph node.
    Node(ObjectRef),
    /// A scalar value.
    Val(Value),
    /// Missing (attribute not present).
    Null,
}

impl OutValue {
    /// The node, if this cell is one.
    pub fn as_node(&self) -> Option<ObjectRef> {
        match self {
            OutValue::Node(r) => Some(*r),
            _ => None,
        }
    }

    /// The string, if this cell holds one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            OutValue::Val(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this cell holds one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            OutValue::Val(Value::Int(i)) => Some(*i),
            _ => None,
        }
    }
}

impl std::fmt::Display for OutValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutValue::Node(r) => write!(f, "{r}"),
            OutValue::Val(v) => write!(f, "{v}"),
            OutValue::Null => write!(f, "null"),
        }
    }
}

/// A query result: named columns and deduplicated rows.
#[derive(Clone, Debug, PartialEq)]
pub struct ResultSet {
    /// Column names (aliases or synthesized).
    pub columns: Vec<String>,
    /// Rows, in first-derivation order, without duplicates.
    pub rows: Vec<Vec<OutValue>>,
}

impl ResultSet {
    /// The nodes of a single-column node result.
    pub fn nodes(&self) -> Vec<ObjectRef> {
        self.rows
            .iter()
            .filter_map(|r| r.first().and_then(|c| c.as_node()))
            .collect()
    }

    /// True if the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }
}

pub(crate) type Row = HashMap<String, ObjectRef>;

/// Deduplicates output rows without cloning them into a set: rows are
/// hashed once, and the hash buckets index into the already-kept rows
/// for the (rare) equality probes.
#[derive(Default)]
pub(crate) struct RowDedup {
    buckets: HashMap<u64, Vec<usize>>,
}

impl RowDedup {
    /// True if `row` is new among `kept` (and records it, assuming
    /// the caller pushes it onto `kept` next).
    pub(crate) fn is_new(&mut self, kept: &[Vec<OutValue>], row: &[OutValue]) -> bool {
        let mut h = DefaultHasher::new();
        row.hash(&mut h);
        let bucket = self.buckets.entry(h.finish()).or_default();
        if bucket.iter().any(|&i| kept[i] == row) {
            return false;
        }
        bucket.push(kept.len());
        true
    }
}

/// The output column names a query projects.
pub(crate) fn column_names(query: &Query) -> Vec<String> {
    query
        .select
        .iter()
        .enumerate()
        .map(|(i, s)| {
            s.alias.clone().unwrap_or_else(|| match &s.expr {
                Expr::Var(v) => v.clone(),
                Expr::Attr(v, a) => format!("{v}.{a}"),
                _ => format!("col{i}"),
            })
        })
        .collect()
}

/// Executes a parsed query against a graph, naively: full cartesian
/// `from` expansion, then `where`, then projection. This is the
/// reference evaluator; [`crate::execute`] plans instead.
pub fn execute(query: &Query, graph: &dyn GraphSource) -> Result<ResultSet, PqlError> {
    let ctx = ExprCtx { graph, stats: None };
    let rows = bind_sources(query, graph)?;
    let rows = match &query.where_clause {
        Some(cond) => {
            let mut kept = Vec::new();
            for row in rows {
                if truthy(&ctx.eval(cond, &row, None)?) {
                    kept.push(row);
                }
            }
            kept
        }
        None => rows,
    };

    let has_aggregate = query
        .select
        .iter()
        .any(|s| matches!(s.expr, Expr::Aggregate { .. }));

    let columns = column_names(query);
    let mut out_rows: Vec<Vec<OutValue>> = Vec::new();
    let mut dedup = RowDedup::default();
    if has_aggregate {
        let mut row_out = Vec::new();
        for item in &query.select {
            row_out.push(ctx.eval(&item.expr, &Row::new(), Some(&rows))?);
        }
        out_rows.push(row_out);
    } else {
        for row in &rows {
            let mut row_out = Vec::new();
            for item in &query.select {
                row_out.push(ctx.eval(&item.expr, row, None)?);
            }
            if dedup.is_new(&out_rows, &row_out) {
                out_rows.push(row_out);
            }
        }
    }
    Ok(ResultSet {
        columns,
        rows: out_rows,
    })
}

/// Expands the `from` clause left to right into bound rows.
fn bind_sources(query: &Query, graph: &dyn GraphSource) -> Result<Vec<Row>, PqlError> {
    let mut rows: Vec<Row> = vec![Row::new()];
    for source in &query.from {
        let mut next: Vec<Row> = Vec::new();
        for row in &rows {
            let starts: Vec<ObjectRef> = match &source.root {
                // Sorted by the `class_members` contract.
                PathRoot::Class(c) => graph.class_members(c),
                PathRoot::Var(v) => match row.get(v) {
                    Some(r) => vec![*r],
                    None => {
                        return Err(PqlError::Eval(format!("unbound variable `{v}`")));
                    }
                },
            };
            let endpoints = walk_steps(&starts, &source.steps, graph);
            for e in endpoints {
                let mut r = row.clone();
                r.insert(source.binding.clone(), e);
                next.push(r);
            }
        }
        rows = next;
    }
    Ok(rows)
}

/// Applies a sequence of path steps to a start set.
pub(crate) fn walk_steps(
    starts: &[ObjectRef],
    steps: &[PathStep],
    graph: &dyn GraphSource,
) -> Vec<ObjectRef> {
    let mut current: Vec<ObjectRef> = starts.to_vec();
    for step in steps {
        current = apply_step(&current, step, graph);
    }
    current
}

/// The parsed edge labels of one step, resolved once — `one_hop` used
/// to re-parse the label string for every node × pattern.
fn step_labels(step: &PathStep) -> Vec<(EdgeLabel, bool)> {
    step.edges
        .iter()
        .map(|pat| (EdgeLabel::from_name(&pat.label), pat.inverse))
        .collect()
}

fn one_hop(
    nodes: &[ObjectRef],
    labels: &[(EdgeLabel, bool)],
    graph: &dyn GraphSource,
) -> Vec<ObjectRef> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for &n in nodes {
        for (label, inverse) in labels {
            let next = if *inverse {
                graph.in_edges(n, label)
            } else {
                graph.out_edges(n, label)
            };
            for m in next {
                if seen.insert(m) {
                    out.push(m);
                }
            }
        }
    }
    out
}

fn apply_step(nodes: &[ObjectRef], step: &PathStep, graph: &dyn GraphSource) -> Vec<ObjectRef> {
    let labels = step_labels(step);
    match step.quant {
        Quant::One => one_hop(nodes, &labels, graph),
        Quant::Opt => {
            let mut out: Vec<ObjectRef> = nodes.to_vec();
            let mut seen: HashSet<ObjectRef> = nodes.iter().copied().collect();
            for m in one_hop(nodes, &labels, graph) {
                if seen.insert(m) {
                    out.push(m);
                }
            }
            out
        }
        Quant::Star | Quant::Plus => {
            // Closure. For `*` the start nodes are included; for `+`
            // only nodes reachable in ≥ 1 hops. The common case — a
            // single-pattern step from a single start node, which is
            // what `bind_sources` produces per row — goes through
            // `GraphSource::closure` so backends can memoize whole
            // traversals. Multi-start sets keep the shared BFS: one
            // pass over the union instead of k independent closures.
            let reached: Vec<ObjectRef> =
                if let ([(label, inverse)], [start]) = (labels.as_slice(), nodes) {
                    graph.closure(*start, label, *inverse)
                } else {
                    // Shared BFS over the union of labels and starts.
                    // Start nodes seed `seen` so they are expanded only
                    // once, but — matching the per-node closure
                    // semantics — a start that is *re-reached* from
                    // another start still counts as reachable.
                    let starts: HashSet<ObjectRef> = nodes.iter().copied().collect();
                    let mut seen: HashSet<ObjectRef> = starts.clone();
                    let mut reached_starts: HashSet<ObjectRef> = HashSet::new();
                    let mut frontier: Vec<ObjectRef> = nodes.to_vec();
                    let mut out: Vec<ObjectRef> = Vec::new();
                    while !frontier.is_empty() {
                        let next = one_hop(&frontier, &labels, graph);
                        frontier = Vec::new();
                        for m in next {
                            if seen.insert(m) {
                                out.push(m);
                                frontier.push(m);
                            } else if starts.contains(&m) && reached_starts.insert(m) {
                                out.push(m);
                            }
                        }
                    }
                    out
                };
            match step.quant {
                Quant::Star => {
                    let starts: HashSet<ObjectRef> = nodes.iter().copied().collect();
                    let mut out = nodes.to_vec();
                    out.extend(reached.into_iter().filter(|m| !starts.contains(m)));
                    out
                }
                _ => reached,
            }
        }
    }
}

pub(crate) fn truthy(v: &OutValue) -> bool {
    matches!(v, OutValue::Val(Value::Bool(true)))
}

/// Expression evaluation context, shared by the naive evaluator and
/// the planned pipeline. The only behavioral difference between the
/// two is how sub-queries run: with `stats` attached they go back
/// through the planner (accumulating into the same counters), without
/// it they recurse into the naive [`execute`].
pub(crate) struct ExprCtx<'a> {
    pub graph: &'a dyn GraphSource,
    pub stats: Option<&'a std::cell::RefCell<PlanStats>>,
}

impl ExprCtx<'_> {
    fn subquery(&self, query: &Query) -> Result<ResultSet, PqlError> {
        match self.stats {
            Some(stats) => crate::plan::execute_accum(query, self.graph, stats),
            None => execute(query, self.graph),
        }
    }

    pub(crate) fn eval(
        &self,
        expr: &Expr,
        row: &Row,
        all_rows: Option<&[Row]>,
    ) -> Result<OutValue, PqlError> {
        match expr {
            Expr::Lit(Literal::Str(s)) => Ok(OutValue::Val(Value::Str(s.clone()))),
            Expr::Lit(Literal::Int(i)) => Ok(OutValue::Val(Value::Int(*i))),
            Expr::Lit(Literal::Bool(b)) => Ok(OutValue::Val(Value::Bool(*b))),
            Expr::Var(v) => row
                .get(v)
                .map(|r| OutValue::Node(*r))
                .ok_or_else(|| PqlError::Eval(format!("unbound variable `{v}`"))),
            Expr::Attr(v, attr) => {
                let node = row
                    .get(v)
                    .ok_or_else(|| PqlError::Eval(format!("unbound variable `{v}`")))?;
                Ok(self
                    .graph
                    .attr(*node, attr)
                    .map(OutValue::Val)
                    .unwrap_or(OutValue::Null))
            }
            Expr::Not(e) => {
                let v = self.eval(e, row, all_rows)?;
                Ok(OutValue::Val(Value::Bool(!truthy(&v))))
            }
            Expr::Binary { op, lhs, rhs } => {
                if op == "and" {
                    let l = self.eval(lhs, row, all_rows)?;
                    if !truthy(&l) {
                        return Ok(OutValue::Val(Value::Bool(false)));
                    }
                    let r = self.eval(rhs, row, all_rows)?;
                    return Ok(OutValue::Val(Value::Bool(truthy(&r))));
                }
                if op == "or" {
                    let l = self.eval(lhs, row, all_rows)?;
                    if truthy(&l) {
                        return Ok(OutValue::Val(Value::Bool(true)));
                    }
                    let r = self.eval(rhs, row, all_rows)?;
                    return Ok(OutValue::Val(Value::Bool(truthy(&r))));
                }
                let l = self.eval(lhs, row, all_rows)?;
                let r = self.eval(rhs, row, all_rows)?;
                Ok(OutValue::Val(Value::Bool(compare(op, &l, &r)?)))
            }
            Expr::Aggregate { func, arg } => {
                let rows = all_rows.ok_or_else(|| {
                    PqlError::Eval("aggregate outside of select context".to_string())
                })?;
                match func.as_str() {
                    "count" => {
                        let mut distinct = HashSet::new();
                        for row in rows {
                            let v = self.eval(arg, row, None)?;
                            if v != OutValue::Null {
                                distinct.insert(v);
                            }
                        }
                        Ok(OutValue::Val(Value::Int(distinct.len() as i64)))
                    }
                    "min" | "max" => {
                        let mut vals: Vec<i64> = Vec::new();
                        let mut strs: Vec<String> = Vec::new();
                        for row in rows {
                            match self.eval(arg, row, None)? {
                                OutValue::Val(Value::Int(i)) => vals.push(i),
                                OutValue::Val(Value::Str(s)) => strs.push(s),
                                _ => {}
                            }
                        }
                        if !vals.is_empty() {
                            let v = if func == "min" {
                                vals.into_iter().min()
                            } else {
                                vals.into_iter().max()
                            };
                            Ok(OutValue::Val(Value::Int(v.unwrap())))
                        } else if !strs.is_empty() {
                            let v = if func == "min" {
                                strs.into_iter().min()
                            } else {
                                strs.into_iter().max()
                            };
                            Ok(OutValue::Val(Value::Str(v.unwrap())))
                        } else {
                            Ok(OutValue::Null)
                        }
                    }
                    other => Err(PqlError::Eval(format!("unknown aggregate `{other}`"))),
                }
            }
            Expr::InSubquery { expr, query } => {
                let v = self.eval(expr, row, all_rows)?;
                let sub = self.subquery(query)?;
                let found = sub.rows.iter().any(|r| r.first() == Some(&v));
                Ok(OutValue::Val(Value::Bool(found)))
            }
            Expr::Exists(query) => {
                let sub = self.subquery(query)?;
                Ok(OutValue::Val(Value::Bool(!sub.is_empty())))
            }
        }
    }
}

fn compare(op: &str, l: &OutValue, r: &OutValue) -> Result<bool, PqlError> {
    use std::cmp::Ordering;
    if op == "like" {
        let (OutValue::Val(Value::Str(s)), OutValue::Val(Value::Str(pat))) = (l, r) else {
            return Ok(false);
        };
        return Ok(glob_match(pat, s));
    }
    let ord: Option<Ordering> = match (l, r) {
        (OutValue::Node(a), OutValue::Node(b)) => Some(a.cmp(b)),
        (OutValue::Val(Value::Int(a)), OutValue::Val(Value::Int(b))) => Some(a.cmp(b)),
        (OutValue::Val(Value::Str(a)), OutValue::Val(Value::Str(b))) => Some(a.cmp(b)),
        (OutValue::Val(Value::Bool(a)), OutValue::Val(Value::Bool(b))) => Some(a.cmp(b)),
        (OutValue::Null, OutValue::Null) => Some(Ordering::Equal),
        _ => None,
    };
    Ok(match (op, ord) {
        ("=", Some(Ordering::Equal)) => true,
        ("=", _) => false,
        ("!=", Some(Ordering::Equal)) => false,
        ("!=", Some(_)) => true,
        ("!=", None) => true,
        ("<", Some(o)) => o == Ordering::Less,
        ("<=", Some(o)) => o != Ordering::Greater,
        (">", Some(o)) => o == Ordering::Greater,
        (">=", Some(o)) => o != Ordering::Less,
        _ => false,
    })
}

/// Glob matching with `*` (any run) and `?` (any one character).
pub fn glob_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[char], t: &[char]) -> bool {
        match (p.first(), t.first()) {
            (None, None) => true,
            (Some('*'), _) => inner(&p[1..], t) || (!t.is_empty() && inner(p, &t[1..])),
            (Some('?'), Some(_)) => inner(&p[1..], &t[1..]),
            (Some(c), Some(d)) if c == d => inner(&p[1..], &t[1..]),
            _ => false,
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    inner(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Pnode, Version, VolumeId};

    fn r(n: u64, v: u32) -> ObjectRef {
        ObjectRef::new(Pnode::new(VolumeId(1), n), Version(v))
    }

    /// A tiny in-memory graph: 1(out.gif) <-input- 2(proc) <-input- 3(in.dat)
    /// with 3 also at version 1 depending on version 0.
    struct TestGraph;

    impl GraphSource for TestGraph {
        fn class_members(&self, class: &str) -> Vec<ObjectRef> {
            match class {
                "file" => vec![r(1, 0), r(3, 0), r(3, 1)],
                "proc" => vec![r(2, 0)],
                "obj" => vec![r(1, 0), r(2, 0), r(3, 0), r(3, 1)],
                _ => vec![],
            }
        }
        fn attr(&self, node: ObjectRef, name: &str) -> Option<Value> {
            match (node.pnode.number, name) {
                (1, "name") => Some(Value::str("out.gif")),
                (2, "name") => Some(Value::str("convert")),
                (3, "name") => Some(Value::str("in.dat")),
                (_, "pnode") => Some(Value::Int(node.pnode.number as i64)),
                (_, "version") => Some(Value::Int(node.version.0 as i64)),
                _ => None,
            }
        }
        fn out_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
            if !matches!(
                label,
                EdgeLabel::Input | EdgeLabel::Any | EdgeLabel::Version
            ) {
                return vec![];
            }
            let version_only = matches!(label, EdgeLabel::Version);
            match (node.pnode.number, node.version.0) {
                (1, 0) if !version_only => vec![r(2, 0)],
                (2, 0) if !version_only => vec![r(3, 1)],
                (3, 1) => vec![r(3, 0)],
                _ => vec![],
            }
        }
        fn in_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
            let all = self.class_members("obj");
            all.into_iter()
                .filter(|n| self.out_edges(*n, label).contains(&node))
                .collect()
        }
    }

    fn run(q: &str) -> ResultSet {
        execute(&crate::parse(q).unwrap(), &TestGraph).unwrap()
    }

    #[test]
    fn paper_style_ancestry_query() {
        let rs = run(
            "select Ancestor from Provenance.file as F F.input* as Ancestor \
             where F.name = 'out.gif'",
        );
        // Closure includes F itself (star), the proc, and both
        // versions of in.dat.
        let nodes = rs.nodes();
        assert!(nodes.contains(&r(1, 0)));
        assert!(nodes.contains(&r(2, 0)));
        assert!(nodes.contains(&r(3, 1)));
        assert!(nodes.contains(&r(3, 0)));
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn plus_excludes_start() {
        let rs = run("select A from Provenance.file as F F.input+ as A where F.name = 'out.gif'");
        assert!(!rs.nodes().contains(&r(1, 0)));
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn inverse_edges_find_descendants() {
        let rs = run("select D from Provenance.file as F F.input~* as D where F.name = 'in.dat'");
        // Descendants of either version of in.dat include the proc
        // and out.gif.
        let nodes = rs.nodes();
        assert!(nodes.contains(&r(2, 0)));
        assert!(nodes.contains(&r(1, 0)));
    }

    #[test]
    fn attribute_projection_and_like() {
        let rs = run("select F.name from Provenance.file as F where F.name like '*.gif'");
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0].as_str(), Some("out.gif"));
    }

    #[test]
    fn count_aggregates_distinct() {
        let rs = run(
            "select count(A) as n from Provenance.file as F F.input* as A \
             where F.name = 'out.gif'",
        );
        assert_eq!(rs.rows[0][0].as_int(), Some(4));
        assert_eq!(rs.columns, vec!["n"]);
    }

    #[test]
    fn min_max_over_versions() {
        let rs = run("select min(F.version), max(F.version) from Provenance.file as F");
        assert_eq!(rs.rows[0][0].as_int(), Some(0));
        assert_eq!(rs.rows[0][1].as_int(), Some(1));
    }

    #[test]
    fn subquery_membership() {
        let rs = run("select P from Provenance.proc as P \
             where P.name in (select F.name as n from Provenance.obj as F where F.version = 0)");
        // 'convert' is among version-0 object names.
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn exists_subquery() {
        let rs = run("select F from Provenance.file as F \
             where exists (select P from Provenance.proc as P where P.name = 'convert')");
        assert_eq!(rs.len(), 3);
        let rs = run("select F from Provenance.file as F \
             where exists (select P from Provenance.proc as P where P.name = 'nope')");
        assert!(rs.is_empty());
    }

    #[test]
    fn version_label_walks_only_version_edges() {
        let rs = run("select V from Provenance.file as F F.version as V");
        assert_eq!(rs.nodes(), vec![r(3, 0)]);
    }

    #[test]
    fn results_deduplicate() {
        // Both versions of in.dat reach version 0 — the result
        // mentions it once.
        let rs = run("select A from Provenance.file as F F.version* as A \
                      where F.name = 'in.dat'");
        let count = rs.nodes().iter().filter(|n| **n == r(3, 0)).count();
        assert_eq!(count, 1);
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let q = crate::parse("select X from Y.input as Z").unwrap();
        assert!(execute(&q, &TestGraph).is_err());
    }

    #[test]
    fn glob_matcher() {
        assert!(glob_match("*.gif", "a/b/c.gif"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "ac"));
        assert!(glob_match("*", ""));
        assert!(glob_match("a*b*c", "aXXbYYc"));
        assert!(!glob_match("a*b*c", "aXXbYY"));
    }
}
