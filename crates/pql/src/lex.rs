//! The PQL tokenizer.

use std::fmt;

/// A token with its source position (byte offset).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset in the query text, for error messages.
    pub pos: usize,
}

/// Token kinds. Keywords are recognized case-insensitively and carry
/// their canonical spelling.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// `select`, `from`, `where`, `as`, `and`, `or`, `not`, `in`,
    /// `exists`, `like`, `count`, `min`, `max`, `true`, `false`.
    Keyword(&'static str),
    /// An identifier (variable, edge name, attribute name).
    Ident(String),
    /// A string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// `.` `,` `(` `)` `*` `+` `?` `~` `|` `=` `!=` `<` `<=` `>` `>=`
    Sym(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Sym(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of query"),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "select", "from", "where", "as", "and", "or", "not", "in", "exists", "like", "count", "min",
    "max", "true", "false",
];

/// Tokenizes `input`, returning the token stream or an error message
/// with the offending position.
pub fn lex(input: &str) -> Result<Vec<Token>, (String, usize)> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments: `--` to end of line.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let pos = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &input[start..i];
            let lower = word.to_ascii_lowercase();
            match KEYWORDS.iter().find(|k| **k == lower) {
                Some(k) => out.push(Token {
                    kind: TokenKind::Keyword(k),
                    pos,
                }),
                None => out.push(Token {
                    kind: TokenKind::Ident(word.to_string()),
                    pos,
                }),
            }
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = input[start..i]
                .parse()
                .map_err(|_| ("integer overflow".to_string(), pos))?;
            out.push(Token {
                kind: TokenKind::Int(n),
                pos,
            });
            continue;
        }
        if c == '"' || c == '\'' {
            let quote = c;
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(("unterminated string".to_string(), pos));
                }
                let ch = bytes[i] as char;
                if ch == quote {
                    i += 1;
                    break;
                }
                if ch == '\\' && i + 1 < bytes.len() {
                    let next = bytes[i + 1] as char;
                    s.push(match next {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                    i += 2;
                    continue;
                }
                s.push(ch);
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Str(s),
                pos,
            });
            continue;
        }
        let two = if i + 1 < bytes.len() {
            &input[i..i + 2]
        } else {
            ""
        };
        let sym: Option<(&'static str, usize)> = match two {
            "!=" => Some(("!=", 2)),
            "<=" => Some(("<=", 2)),
            ">=" => Some((">=", 2)),
            _ => match c {
                '.' => Some((".", 1)),
                ',' => Some((",", 1)),
                '(' => Some(("(", 1)),
                ')' => Some((")", 1)),
                '*' => Some(("*", 1)),
                '+' => Some(("+", 1)),
                '?' => Some(("?", 1)),
                '~' => Some(("~", 1)),
                '|' => Some(("|", 1)),
                '=' => Some(("=", 1)),
                '<' => Some(("<", 1)),
                '>' => Some((">", 1)),
                _ => None,
            },
        };
        match sym {
            Some((s, n)) => {
                out.push(Token {
                    kind: TokenKind::Sym(s),
                    pos,
                });
                i += n;
            }
            None => {
                return Err((format!("unexpected character {c:?}"), pos));
            }
        }
    }
    out.push(Token {
        kind: TokenKind::Eof,
        pos: input.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_paper_query() {
        let q = r#"select Ancestor
from Provenance.file as Atlas
     Atlas.input* as Ancestor
where Atlas.name = "atlas-x.gif""#;
        let toks = kinds(q);
        assert_eq!(toks[0], TokenKind::Keyword("select"));
        assert!(toks.contains(&TokenKind::Ident("Provenance".into())));
        assert!(toks.contains(&TokenKind::Sym("*")));
        assert!(toks.contains(&TokenKind::Str("atlas-x.gif".into())));
        assert_eq!(toks.last(), Some(&TokenKind::Eof));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("SELECT SeLeCt select")[0],
            TokenKind::Keyword("select")
        );
        assert_eq!(kinds("WHERE")[0], TokenKind::Keyword("where"));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("a != b <= c >= d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Sym("!="),
                TokenKind::Ident("b".into()),
                TokenKind::Sym("<="),
                TokenKind::Ident("c".into()),
                TokenKind::Sym(">="),
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_support_both_quotes_and_escapes() {
        assert_eq!(
            kinds(r#" "a\"b" 'c' "#),
            vec![
                TokenKind::Str("a\"b".into()),
                TokenKind::Str("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("select -- this is a comment\n x");
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("select @").unwrap_err();
        assert_eq!(err.1, 7);
        let err = lex("\"unterminated").unwrap_err();
        assert!(err.0.contains("unterminated"));
    }
}
