//! The PQL abstract syntax tree.
//!
//! The query model follows the paper's requirements (§4 "Query"):
//! paths through graphs are the basic model, paths are first-class
//! (bound to variables in the `from` clause), path matching is by
//! regular expressions over graph edges, and the language has
//! sub-queries and aggregation.

/// A parsed query: `select <items> from <sources> [where <expr>]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// The projection list.
    pub select: Vec<SelectItem>,
    /// Path sources, evaluated left to right as a join.
    pub from: Vec<Source>,
    /// Optional filter.
    pub where_clause: Option<Expr>,
}

/// One projected column.
#[derive(Clone, Debug, PartialEq)]
pub struct SelectItem {
    /// The expression to output.
    pub expr: Expr,
    /// Optional output name (`as ident`).
    pub alias: Option<String>,
}

/// One `from` source: a path expression bound to a variable.
#[derive(Clone, Debug, PartialEq)]
pub struct Source {
    /// Where the path starts.
    pub root: PathRoot,
    /// Edge steps applied to the root.
    pub steps: Vec<PathStep>,
    /// The variable the endpoint binds to.
    pub binding: String,
}

/// The start of a path expression.
#[derive(Clone, Debug, PartialEq)]
pub enum PathRoot {
    /// `Provenance.<class>`: all objects of a class (`file`, `proc`,
    /// `pipe`, `session`, `operator`, `function`, `obj` for
    /// everything).
    Class(String),
    /// A variable bound by an earlier source.
    Var(String),
}

/// One step of a path: an edge pattern with a quantifier.
#[derive(Clone, Debug, PartialEq)]
pub struct PathStep {
    /// Alternative edge labels (`(input|version)`), each possibly
    /// inverted.
    pub edges: Vec<EdgePattern>,
    /// How many times the step may repeat.
    pub quant: Quant,
}

/// An edge label with direction.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgePattern {
    /// The label (`input`, `version`, `visited_url`, …, or `any`).
    pub label: String,
    /// Inverted (`~`): traverse from ancestor to descendant.
    pub inverse: bool,
}

/// Step quantifiers, as in regular expressions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quant {
    /// Exactly once.
    One,
    /// Zero or more (`*`).
    Star,
    /// One or more (`+`).
    Plus,
    /// Zero or one (`?`).
    Opt,
}

/// Expressions in `select` and `where`.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Literal),
    /// A bound variable (denotes the node).
    Var(String),
    /// Attribute access: `Var.attr`.
    Attr(String, String),
    /// Binary comparison or logic.
    Binary {
        /// Operator name: `=`, `!=`, `<`, `<=`, `>`, `>=`, `and`,
        /// `or`, `like`.
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Aggregate over the full row set: `count(X)`, `min(X.attr)`,
    /// `max(X.attr)`.
    Aggregate {
        /// `count`, `min` or `max`.
        func: String,
        /// The aggregated expression.
        arg: Box<Expr>,
    },
    /// Membership in a sub-query's (single-column) result.
    InSubquery {
        /// The tested expression.
        expr: Box<Expr>,
        /// The sub-query.
        query: Box<Query>,
    },
    /// Non-emptiness of a sub-query's result.
    Exists(Box<Query>),
}

/// Literal values.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// A string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A boolean. (Lorel lacked booleans; PQL adds them.)
    Bool(bool),
}
