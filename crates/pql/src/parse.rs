//! The PQL recursive-descent parser.

use crate::ast::*;
use crate::lex::{lex, Token, TokenKind};
use crate::PqlError;

struct Parser {
    toks: Vec<Token>,
    at: usize,
}

/// Parses a query string into an AST.
pub fn parse(input: &str) -> Result<Query, PqlError> {
    let toks = lex(input).map_err(|(msg, pos)| PqlError::Parse { msg, pos })?;
    let mut p = Parser { toks, at: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.toks[self.at].kind
    }

    fn pos(&self) -> usize {
        self.toks[self.at].pos
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.toks[self.at].kind.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if *k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), TokenKind::Sym(s) if *s == sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), PqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), PqlError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{sym}`, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, PqlError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), PqlError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {}", self.peek())))
        }
    }

    fn err(&self, msg: String) -> PqlError {
        PqlError::Parse {
            msg,
            pos: self.pos(),
        }
    }

    // query := SELECT items FROM sources (WHERE expr)?
    fn query(&mut self) -> Result<Query, PqlError> {
        self.expect_kw("select")?;
        let mut select = vec![self.select_item()?];
        while self.eat_sym(",") {
            select.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.source()?];
        loop {
            // Sources may be comma-separated or juxtaposed (as in the
            // paper's sample query).
            if self.eat_sym(",") {
                from.push(self.source()?);
                continue;
            }
            if matches!(self.peek(), TokenKind::Ident(_)) {
                from.push(self.source()?);
                continue;
            }
            break;
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_clause,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, PqlError> {
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    // source := root ('.' step)* AS ident
    fn source(&mut self) -> Result<Source, PqlError> {
        let first = self.expect_ident()?;
        let root = if first == "Provenance" {
            self.expect_sym(".")?;
            PathRoot::Class(self.expect_ident()?)
        } else {
            PathRoot::Var(first)
        };
        let mut steps = Vec::new();
        while self.eat_sym(".") {
            steps.push(self.path_step()?);
        }
        self.expect_kw("as")?;
        let binding = self.expect_ident()?;
        Ok(Source {
            root,
            steps,
            binding,
        })
    }

    // step := edge_alt quant?
    // edge_alt := edge | '(' edge ('|' edge)* ')'
    // edge := ident '~'?
    fn path_step(&mut self) -> Result<PathStep, PqlError> {
        let edges = if self.eat_sym("(") {
            let mut v = vec![self.edge_pattern()?];
            while self.eat_sym("|") {
                v.push(self.edge_pattern()?);
            }
            self.expect_sym(")")?;
            v
        } else {
            vec![self.edge_pattern()?]
        };
        let quant = if self.eat_sym("*") {
            Quant::Star
        } else if self.eat_sym("+") {
            Quant::Plus
        } else if self.eat_sym("?") {
            Quant::Opt
        } else {
            Quant::One
        };
        Ok(PathStep { edges, quant })
    }

    fn edge_pattern(&mut self) -> Result<EdgePattern, PqlError> {
        let label = self.expect_ident()?;
        let inverse = self.eat_sym("~");
        Ok(EdgePattern { label, inverse })
    }

    // Standard precedence: or < and < not < comparison < primary.
    fn expr(&mut self) -> Result<Expr, PqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, PqlError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: "or".into(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, PqlError> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: "and".into(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, PqlError> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, PqlError> {
        let lhs = self.primary()?;
        for op in ["=", "!=", "<=", ">=", "<", ">"] {
            if self.eat_sym(op) {
                let rhs = self.primary()?;
                return Ok(Expr::Binary {
                    op: op.into(),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                });
            }
        }
        if self.eat_kw("like") {
            let rhs = self.primary()?;
            return Ok(Expr::Binary {
                op: "like".into(),
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            });
        }
        if self.eat_kw("in") {
            self.expect_sym("(")?;
            let q = self.query()?;
            self.expect_sym(")")?;
            return Ok(Expr::InSubquery {
                expr: Box::new(lhs),
                query: Box::new(q),
            });
        }
        Ok(lhs)
    }

    fn primary(&mut self) -> Result<Expr, PqlError> {
        match self.peek().clone() {
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Lit(Literal::Str(s)))
            }
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Lit(Literal::Int(i)))
            }
            TokenKind::Keyword("true") => {
                self.bump();
                Ok(Expr::Lit(Literal::Bool(true)))
            }
            TokenKind::Keyword("false") => {
                self.bump();
                Ok(Expr::Lit(Literal::Bool(false)))
            }
            TokenKind::Keyword(f @ ("count" | "min" | "max")) => {
                self.bump();
                self.expect_sym("(")?;
                let arg = self.expr()?;
                self.expect_sym(")")?;
                Ok(Expr::Aggregate {
                    func: f.to_string(),
                    arg: Box::new(arg),
                })
            }
            TokenKind::Keyword("exists") => {
                self.bump();
                self.expect_sym("(")?;
                let q = self.query()?;
                self.expect_sym(")")?;
                Ok(Expr::Exists(Box::new(q)))
            }
            TokenKind::Sym("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_sym(".") {
                    let attr = self.expect_ident()?;
                    Ok(Expr::Attr(name, attr))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_query() {
        let q = parse(
            r#"select Ancestor
               from Provenance.file as Atlas
                    Atlas.input* as Ancestor
               where Atlas.name = "atlas-x.gif""#,
        )
        .unwrap();
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].root, PathRoot::Class("file".into()));
        assert_eq!(q.from[0].binding, "Atlas");
        assert_eq!(q.from[1].root, PathRoot::Var("Atlas".into()));
        assert_eq!(q.from[1].steps.len(), 1);
        assert_eq!(q.from[1].steps[0].quant, Quant::Star);
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parses_alternation_and_inverse_edges() {
        let q = parse("select X from Provenance.file as F F.(input|version)*~x as X").unwrap_err();
        // `~` binds to the edge, not the group: the above is an error.
        let _ = q;
        let q = parse("select X from Provenance.file as F F.(input~|version)* as X").unwrap();
        let step = &q.from[1].steps[0];
        assert_eq!(step.edges.len(), 2);
        assert!(step.edges[0].inverse);
        assert!(!step.edges[1].inverse);
    }

    #[test]
    fn parses_comma_separated_sources_and_aliases() {
        let q = parse(
            "select F.name as filename, count(A) as n \
             from Provenance.file as F, F.input+ as A",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.select[0].alias.as_deref(), Some("filename"));
        assert!(matches!(q.select[1].expr, Expr::Aggregate { .. }));
    }

    #[test]
    fn parses_boolean_logic_with_precedence() {
        let q = parse(
            "select F from Provenance.file as F \
             where F.name = 'a' or F.name = 'b' and not F.size < 10",
        )
        .unwrap();
        // or(a, and(b, not(<))) — and binds tighter than or.
        match q.where_clause.unwrap() {
            Expr::Binary { op, rhs, .. } => {
                assert_eq!(op, "or");
                match *rhs {
                    Expr::Binary { op, .. } => assert_eq!(op, "and"),
                    other => panic!("expected and, got {other:?}"),
                }
            }
            other => panic!("expected or, got {other:?}"),
        }
    }

    #[test]
    fn parses_subqueries() {
        let q = parse(
            "select F from Provenance.file as F \
             where F.name in (select S.url as u from Provenance.session as S) \
             and exists (select P from Provenance.proc as P)",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parses_like_and_quantifiers() {
        let q = parse(
            "select F from Provenance.file as F F.input? as G F.input+ as H \
             where F.name like '*.gif'",
        )
        .unwrap();
        assert_eq!(q.from[1].steps[0].quant, Quant::Opt);
        assert_eq!(q.from[2].steps[0].quant, Quant::Plus);
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("select").is_err());
        assert!(parse("select X").is_err()); // no from
        assert!(parse("select X from").is_err());
        assert!(parse("select X from Provenance.file").is_err()); // no as
        assert!(parse("select X from Provenance.file as F where").is_err());
        assert!(parse("select X from Provenance.file as F extra!").is_err());
    }

    #[test]
    fn multi_step_paths() {
        let q = parse("select X from Provenance.proc as P P.input.input.version* as X").unwrap();
        assert_eq!(q.from[1].steps.len(), 3);
        assert_eq!(q.from[1].steps[0].quant, Quant::One);
        assert_eq!(q.from[1].steps[2].quant, Quant::Star);
    }
}
