//! PQL — the Path Query Language ("pickle").
//!
//! PQL is the provenance query language of PASSv2, derived from Lorel
//! and its OEM data model after XML- and SQL-based approaches proved
//! a poor match for graph-structured provenance (paper §5.7). The
//! language satisfies the four requirements of §4:
//!
//! * the basic model is *paths through graphs*;
//! * paths are first-class: each `from` source binds the endpoint of
//!   a path expression to a variable;
//! * path matching is by regular expressions over graph edges
//!   (`input*`, `(input|version)+`, inverse traversal `input~`);
//! * sub-queries (`in (select …)`, `exists (…)`) and aggregation
//!   (`count`, `min`, `max`) are supported.
//!
//! The paper's sample query runs as-is:
//!
//! ```text
//! select Ancestor
//! from Provenance.file as Atlas
//!      Atlas.input* as Ancestor
//! where Atlas.name = "atlas-x.gif"
//! ```
//!
//! # Examples
//!
//! ```
//! let q = pql::parse(
//!     "select F.name from Provenance.file as F where F.name like '*.gif'",
//! ).unwrap();
//! assert_eq!(q.from.len(), 1);
//! ```

pub mod ast;
pub mod eval;
pub mod lex;
pub mod parse;

use std::fmt;

pub use ast::{EdgePattern, Expr, Literal, PathRoot, PathStep, Quant, Query, SelectItem, Source};
pub use eval::{execute, glob_match, EdgeLabel, GraphSource, OutValue, ResultSet};
pub use parse::parse;

/// Errors from parsing or evaluating a query.
#[derive(Clone, Debug, PartialEq)]
pub enum PqlError {
    /// A syntax error at a byte position.
    Parse {
        /// Description of the problem.
        msg: String,
        /// Byte offset in the query text.
        pos: usize,
    },
    /// An evaluation error (unbound variable, bad aggregate).
    Eval(String),
}

impl fmt::Display for PqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqlError::Parse { msg, pos } => write!(f, "parse error at byte {pos}: {msg}"),
            PqlError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for PqlError {}

/// Parses and executes `text` against `graph` in one call.
pub fn query(text: &str, graph: &dyn GraphSource) -> Result<ResultSet, PqlError> {
    execute(&parse(text)?, graph)
}
