//! PQL — the Path Query Language ("pickle").
//!
//! PQL is the provenance query language of PASSv2, derived from Lorel
//! and its OEM data model after XML- and SQL-based approaches proved
//! a poor match for graph-structured provenance (paper §5.7). The
//! language satisfies the four requirements of §4:
//!
//! * the basic model is *paths through graphs*;
//! * paths are first-class: each `from` source binds the endpoint of
//!   a path expression to a variable;
//! * path matching is by regular expressions over graph edges
//!   (`input*`, `(input|version)+`, inverse traversal `input~`);
//! * sub-queries (`in (select …)`, `exists (…)`) and aggregation
//!   (`count`, `min`, `max`) are supported.
//!
//! The paper's sample query runs as-is:
//!
//! ```text
//! select Ancestor
//! from Provenance.file as Atlas
//!      Atlas.input* as Ancestor
//! where Atlas.name = "atlas-x.gif"
//! ```
//!
//! Evaluation is backend-agnostic: any store implementing
//! [`GraphSource`] (class membership, attributes, labelled edges, and
//! an optionally overridable reachability [`GraphSource::closure`]
//! used for `label*`/`label+` steps — the Waldo store overrides it
//! with a generation-validated cache) can serve queries.
//!
//! Queries run through the [`plan`] module: sargable `where`
//! predicates (equality and prefix-`like`) are pushed down into
//! [`GraphSource::lookup_attr`] — index-backed in Waldo, scan-based
//! by default — bindings are reordered by estimated selectivity, and
//! rows stream through binding → filter → project instead of
//! materializing the full `from` product. [`query_with_stats`]
//! additionally returns the planner counters ([`PlanStats`]).
//!
//! # Examples
//!
//! Parse only:
//!
//! ```
//! let q = pql::parse(
//!     "select F.name from Provenance.file as F where F.name like '*.gif'",
//! ).unwrap();
//! assert_eq!(q.from.len(), 1);
//! ```
//!
//! Run the paper's ancestry query against a toy two-edge graph:
//!
//! ```
//! use dpapi::{ObjectRef, Pnode, Value, Version, VolumeId};
//! use pql::{EdgeLabel, GraphSource};
//!
//! fn node(n: u64) -> ObjectRef {
//!     ObjectRef::new(Pnode::new(VolumeId(1), n), Version(0))
//! }
//!
//! /// out.gif(1) ← convert(2) ← in.img(3), all of class `file`.
//! struct Toy;
//! impl GraphSource for Toy {
//!     fn class_members(&self, class: &str) -> Vec<ObjectRef> {
//!         if class.eq_ignore_ascii_case("file") {
//!             vec![node(1), node(2), node(3)]
//!         } else {
//!             Vec::new()
//!         }
//!     }
//!     fn attr(&self, n: ObjectRef, name: &str) -> Option<Value> {
//!         (name == "name" && n == node(1)).then(|| Value::str("out.gif"))
//!     }
//!     fn out_edges(&self, n: ObjectRef, _label: &EdgeLabel) -> Vec<ObjectRef> {
//!         match n.pnode.number {
//!             1 => vec![node(2)],
//!             2 => vec![node(3)],
//!             _ => Vec::new(),
//!         }
//!     }
//!     fn in_edges(&self, _n: ObjectRef, _label: &EdgeLabel) -> Vec<ObjectRef> {
//!         Vec::new()
//!     }
//! }
//!
//! let rs = pql::query(
//!     "select A from Provenance.file as F F.input* as A \
//!      where F.name = 'out.gif'",
//!     &Toy,
//! )
//! .unwrap();
//! let ancestors = rs.nodes();
//! assert!(ancestors.contains(&node(2)) && ancestors.contains(&node(3)));
//! ```

pub mod ast;
pub mod eval;
pub mod lex;
pub mod parse;
pub mod plan;

use std::fmt;

pub use ast::{EdgePattern, Expr, Literal, PathRoot, PathStep, Quant, Query, SelectItem, Source};
pub use eval::{execute as execute_naive, glob_match, EdgeLabel, GraphSource, OutValue, ResultSet};
pub use parse::parse;
pub use plan::{
    execute_traced, query_traced, query_with_stats, scan_lookup, AttrLookup, AttrPredicate,
    PlanStats, QueryOutput,
};

/// Errors from parsing or evaluating a query.
#[derive(Clone, Debug, PartialEq)]
pub enum PqlError {
    /// A syntax error at a byte position.
    Parse {
        /// Description of the problem.
        msg: String,
        /// Byte offset in the query text.
        pos: usize,
    },
    /// An evaluation error (unbound variable, bad aggregate).
    Eval(String),
}

impl fmt::Display for PqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PqlError::Parse { msg, pos } => write!(f, "parse error at byte {pos}: {msg}"),
            PqlError::Eval(msg) => write!(f, "evaluation error: {msg}"),
        }
    }
}

impl std::error::Error for PqlError {}

/// Executes a parsed query against `graph` through the planned,
/// index-backed pipeline ([`plan`]), discarding planner statistics.
/// Use [`plan::execute`] to keep them, or [`eval::execute`]
/// (re-exported as [`execute_naive`]) for the naive reference
/// evaluator.
pub fn execute(query: &Query, graph: &dyn GraphSource) -> Result<ResultSet, PqlError> {
    plan::execute(query, graph).map(|out| out.result)
}

/// Parses and executes `text` against `graph` in one call (planned;
/// see [`query_with_stats`] to also get the planner counters).
pub fn query(text: &str, graph: &dyn GraphSource) -> Result<ResultSet, PqlError> {
    execute(&parse(text)?, graph)
}
