//! The PQL query planner: predicate pushdown, binding reorder and a
//! streaming execution pipeline.
//!
//! The naive evaluator ([`crate::eval::execute`]) materializes the
//! full cartesian expansion of every `from` source and only then
//! applies `where` — the paper's flagship §5.7 query pays a full
//! volume scan (and one ancestry closure per candidate) to select a
//! single file by name. This module compiles the same AST into a
//! logical plan that:
//!
//! 1. **extracts sargable predicates** — top-level `where` conjuncts
//!    of the shape `Var.attr = literal` or `Var.attr like 'prefix*'`
//!    whose variable is bound by a step-less class source — and
//!    pushes them into the binding through
//!    [`GraphSource::lookup_attr`] (index-backed in Waldo, scan-based
//!    by default, so any toy source keeps working);
//! 2. **reorders `from` bindings** by estimated selectivity:
//!    indexed-lookup sources first, plain class scans next, closure
//!    walks last — constrained so a path rooted at a variable always
//!    runs after the source that binds it;
//! 3. **streams** rows through *binding → filter → project* instead
//!    of materializing the product: every remaining conjunct is
//!    applied as soon as the bindings it mentions exist, so a row
//!    that fails a filter never fans out through later sources.
//!
//! # Fidelity to the naive evaluator
//!
//! The planned pipeline returns the same rows, the same columns and
//! the same deduplication as the naive evaluator (a property test
//! holds the two equal over randomized graphs and queries). Row
//! *order* is also identical whenever the planner keeps the written
//! binding order; when it reorders sources, rows come out in the
//! planned nested-loop order — the same set, possibly permuted
//! ([`PlanStats::bindings_reordered`] reports this). Queries the
//! planner cannot reorder soundly (duplicate binding names, a path
//! rooted at a variable no earlier source binds) fall back to the
//! naive evaluator wholesale, preserving its behavior exactly.
//!
//! Like any SQL planner, pushdown can change *which* conjunct
//! rejects a row first, so an evaluation error in a later conjunct
//! (e.g. a malformed sub-query) may surface for rows the naive
//! left-to-right short-circuit would have rejected earlier.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

use dpapi::{ObjectRef, Value};

use crate::ast::*;
use crate::eval::{
    column_names, truthy, walk_steps, ExprCtx, GraphSource, OutValue, ResultSet, Row, RowDedup,
};
use crate::PqlError;

/// A sargable predicate a planner pushes into a binding.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrPredicate {
    /// Attribute equals this value exactly.
    Eq(Value),
    /// Attribute is a string starting with this literal prefix
    /// (compiled from a `like 'prefix*'` pattern whose only
    /// metacharacter is the single trailing `*`).
    LikePrefix(String),
}

impl AttrPredicate {
    /// Whether an attribute value (or its absence) satisfies the
    /// predicate — exactly the semantics of the `where` comparison it
    /// was compiled from: a missing attribute never matches, `=`
    /// requires same type and value, a prefix pattern only matches
    /// strings.
    pub fn matches(&self, value: Option<&Value>) -> bool {
        match (self, value) {
            (AttrPredicate::Eq(want), Some(got)) => want == got,
            (AttrPredicate::LikePrefix(prefix), Some(Value::Str(s))) => s.starts_with(prefix),
            _ => false,
        }
    }
}

/// The result of a pushed-down attribute lookup.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrLookup {
    /// Matching class members, sorted ascending (same order a
    /// filtered class scan would produce).
    pub nodes: Vec<ObjectRef>,
    /// True when a secondary index answered; false for the scan-based
    /// default. Purely informational — feeds [`PlanStats`].
    pub indexed: bool,
}

/// Planner / execution counters for one query (or, accumulated, for a
/// daemon's lifetime — see `Waldo::query`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Root bindings resolved through a backend index
    /// ([`AttrLookup::indexed`]).
    pub index_hits: u64,
    /// Root bindings resolved by a class scan (no pushdown, or the
    /// backend had no usable index).
    pub scan_bindings: u64,
    /// Sargable `where` conjuncts pushed into bindings.
    pub predicates_pushed: u64,
    /// Candidate rows eliminated before projection: root candidates
    /// pruned by pushdown (when the backend reports a class size)
    /// plus rows rejected by early filters.
    pub rows_pruned: u64,
    /// Estimated closure walks avoided: root candidates pruned by
    /// pushdown × closure-quantified sources rooted at that binding.
    pub closure_calls_saved: u64,
    /// True when the planner changed the written binding order (row
    /// order then follows the planned order).
    pub bindings_reordered: bool,
    /// Queries that bypassed the planner for the naive evaluator
    /// (irregular binding structure).
    pub naive_fallbacks: u64,
}

impl provscope::MetricSource for PlanStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("index_hits", self.index_hits);
        out("scan_bindings", self.scan_bindings);
        out("predicates_pushed", self.predicates_pushed);
        out("rows_pruned", self.rows_pruned);
        out("closure_calls_saved", self.closure_calls_saved);
        out("bindings_reordered", u64::from(self.bindings_reordered));
        out("naive_fallbacks", self.naive_fallbacks);
    }
}

impl PlanStats {
    /// Folds another query's counters into these (daemon-lifetime
    /// accumulation).
    pub fn absorb(&mut self, other: &PlanStats) {
        self.index_hits += other.index_hits;
        self.scan_bindings += other.scan_bindings;
        self.predicates_pushed += other.predicates_pushed;
        self.rows_pruned += other.rows_pruned;
        self.closure_calls_saved += other.closure_calls_saved;
        self.bindings_reordered |= other.bindings_reordered;
        self.naive_fallbacks += other.naive_fallbacks;
    }
}

impl std::ops::AddAssign for PlanStats {
    /// Operator form of [`PlanStats::absorb`], so counter structs that
    /// embed these (e.g. Waldo's `QueryOps`) can aggregate with `+=`
    /// and `Iterator::sum`.
    fn add_assign(&mut self, other: PlanStats) {
        self.absorb(&other);
    }
}

impl std::iter::Sum for PlanStats {
    fn sum<I: Iterator<Item = PlanStats>>(iter: I) -> PlanStats {
        iter.fold(PlanStats::default(), |mut acc, s| {
            acc += s;
            acc
        })
    }
}

/// The scan-based [`GraphSource::lookup_attr`] behavior as a free
/// helper: class scan plus post-filter, `indexed = false`. This is
/// the single copy of the scan semantics — the trait default calls
/// it, and index-backed overrides fall back to it for predicates
/// their indexes cannot answer, so the two can never drift apart.
pub fn scan_lookup<G: GraphSource + ?Sized>(
    graph: &G,
    class: &str,
    attr: &str,
    pred: &AttrPredicate,
) -> AttrLookup {
    let nodes = graph
        .class_members(class)
        .into_iter()
        .filter(|n| pred.matches(graph.attr(*n, attr).as_ref()))
        .collect();
    AttrLookup {
        nodes,
        indexed: false,
    }
}

/// A query result with the planner counters that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutput {
    /// The rows.
    pub result: ResultSet,
    /// What the planner did to get them.
    pub stats: PlanStats,
}

/// One binding in planned execution order.
struct BindingStep<'q> {
    source: &'q Source,
    /// Pushed predicate: `(attribute name, predicate)`. Only for
    /// step-less class roots; the originating conjunct is consumed.
    pushed: Option<(&'q str, AttrPredicate)>,
}

impl BindingStep<'_> {
    fn has_closure(&self) -> bool {
        self.source
            .steps
            .iter()
            .any(|s| matches!(s.quant, Quant::Star | Quant::Plus))
    }
}

/// A residual `where` conjunct scheduled at the earliest binding step
/// where every variable it mentions is bound.
struct Filter<'q> {
    expr: &'q Expr,
    /// Memoized outcome for conjuncts that mention no binding at all
    /// (they are row-independent, but must still only be evaluated if
    /// some row reaches them — matching the naive evaluator, which
    /// never evaluates `where` over an empty row set).
    memo: Option<RefCell<Option<Result<bool, PqlError>>>>,
}

struct CompiledPlan<'q> {
    steps: Vec<BindingStep<'q>>,
    /// `filters_at[i]` run right after binding step `i` completes for
    /// a row. With no sources at all, every filter lands in
    /// `filters_at[0]`... which doesn't exist; the zero-source case is
    /// handled by the executor directly.
    filters_at: Vec<Vec<Filter<'q>>>,
    reordered: bool,
}

/// Parses and executes `text` with the planner, returning rows plus
/// planner statistics.
pub fn query_with_stats(text: &str, graph: &dyn GraphSource) -> Result<QueryOutput, PqlError> {
    execute(&crate::parse(text)?, graph)
}

/// [`query_with_stats`] with span tracing: the planner pipeline's
/// plan / bind / filter / project stages record spans in `scope`.
/// PQL evaluation never advances the virtual clock, so these spans
/// carry *structure* (what ran, in what nesting) with zero virtual
/// duration — consistent with the cost model, which charges queries
/// nothing.
pub fn query_traced(
    text: &str,
    graph: &dyn GraphSource,
    scope: &provscope::Scope,
) -> Result<QueryOutput, PqlError> {
    execute_traced(&crate::parse(text)?, graph, scope)
}

/// Executes a parsed query through the planned pipeline.
pub fn execute(query: &Query, graph: &dyn GraphSource) -> Result<QueryOutput, PqlError> {
    execute_traced(query, graph, &provscope::Scope::disabled())
}

/// [`execute`] with span tracing (see [`query_traced`]).
pub fn execute_traced(
    query: &Query,
    graph: &dyn GraphSource,
    scope: &provscope::Scope,
) -> Result<QueryOutput, PqlError> {
    let stats = RefCell::new(PlanStats::default());
    let result = execute_accum_traced(query, graph, &stats, scope)?;
    Ok(QueryOutput {
        result,
        stats: stats.into_inner(),
    })
}

/// Planned execution accumulating into shared counters (used for
/// sub-queries, whose planner work folds into the parent's stats).
pub(crate) fn execute_accum(
    query: &Query,
    graph: &dyn GraphSource,
    stats: &RefCell<PlanStats>,
) -> Result<ResultSet, PqlError> {
    execute_accum_traced(query, graph, stats, &provscope::Scope::disabled())
}

fn execute_accum_traced(
    query: &Query,
    graph: &dyn GraphSource,
    stats: &RefCell<PlanStats>,
    scope: &provscope::Scope,
) -> Result<ResultSet, PqlError> {
    let span = scope.open("pql", "plan");
    let compiled = compile(query);
    scope.close(span);
    match compiled {
        Some(plan) => run(query, &plan, graph, stats, scope),
        None => {
            // Irregular binding structure (duplicate binding names, or
            // a variable-rooted path no earlier source binds): the
            // naive evaluator's semantics are subtle there, so defer
            // to it wholesale.
            stats.borrow_mut().naive_fallbacks += 1;
            crate::eval::execute(query, graph)
        }
    }
}

// ---- compilation ----------------------------------------------------------

/// Splits an expression into its top-level conjuncts.
fn conjuncts<'q>(expr: &'q Expr, out: &mut Vec<&'q Expr>) {
    if let Expr::Binary { op, lhs, rhs } = expr {
        if op == "and" {
            conjuncts(lhs, out);
            conjuncts(rhs, out);
            return;
        }
    }
    out.push(expr);
}

/// Variables an expression mentions. Sub-query interiors are skipped:
/// PQL sub-queries are uncorrelated (their own scope), only the
/// tested expression of `in (…)` sees the outer row.
fn expr_vars(expr: &Expr, out: &mut HashSet<String>) {
    match expr {
        Expr::Var(v) | Expr::Attr(v, _) => {
            out.insert(v.clone());
        }
        Expr::Not(e) | Expr::Aggregate { arg: e, .. } => expr_vars(e, out),
        Expr::Binary { lhs, rhs, .. } => {
            expr_vars(lhs, out);
            expr_vars(rhs, out);
        }
        Expr::InSubquery { expr, .. } => expr_vars(expr, out),
        Expr::Lit(_) | Expr::Exists(_) => {}
    }
}

fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Int(i) => Value::Int(*i),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// The literal prefix of a `like` pattern whose only metacharacter is
/// one trailing `*` (`'/data/*'` → `/data/`); `None` for anything a
/// prefix range cannot answer.
fn like_prefix(pattern: &str) -> Option<String> {
    let prefix = pattern.strip_suffix('*')?;
    (!prefix.is_empty() && !prefix.contains(['*', '?'])).then(|| prefix.to_string())
}

/// `(variable, attribute, predicate)` if this conjunct is sargable.
fn sargable(expr: &Expr) -> Option<(&str, &str, AttrPredicate)> {
    let Expr::Binary { op, lhs, rhs } = expr else {
        return None;
    };
    match op.as_str() {
        "=" => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Attr(v, a), Expr::Lit(l)) | (Expr::Lit(l), Expr::Attr(v, a)) => {
                Some((v, a, AttrPredicate::Eq(literal_value(l))))
            }
            _ => None,
        },
        "like" => match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Attr(v, a), Expr::Lit(Literal::Str(pat))) => {
                like_prefix(pat).map(|p| (v.as_str(), a.as_str(), AttrPredicate::LikePrefix(p)))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Compiles a query, or `None` when its binding structure forces the
/// naive fallback.
fn compile(query: &Query) -> Option<CompiledPlan<'_>> {
    // Regularity: unique binding names, and every variable-rooted
    // path rooted at a binding of a *strictly earlier* source (the
    // naive left-to-right semantics reordering must preserve).
    let mut bound: HashSet<&str> = HashSet::new();
    for source in &query.from {
        if let PathRoot::Var(v) = &source.root {
            if !bound.contains(v.as_str()) {
                return None;
            }
        }
        if !bound.insert(&source.binding) {
            return None;
        }
    }

    // Split the filter into conjuncts and pick at most one sargable
    // predicate per step-less class-rooted binding; everything else
    // stays a residual filter.
    let mut residual: Vec<&Expr> = Vec::new();
    let mut pushed: HashMap<&str, (&str, AttrPredicate)> = HashMap::new();
    if let Some(cond) = &query.where_clause {
        let mut parts = Vec::new();
        conjuncts(cond, &mut parts);
        for part in parts {
            if let Some((var, attr, pred)) = sargable(part) {
                let pushable = query.from.iter().any(|s| {
                    s.binding == var && s.steps.is_empty() && matches!(s.root, PathRoot::Class(_))
                });
                // At most one predicate is pushed per binding (the
                // first sargable conjunct, which is as good as any —
                // both shapes are highly selective); the rest stay
                // residual filters on the narrowed candidate set.
                if pushable && !pushed.contains_key(var) {
                    pushed.insert(var, (attr, pred));
                    continue;
                }
            }
            residual.push(part);
        }
    }

    // Order bindings: pushed-index candidates first, plain class
    // roots next, closure walks last — greedily, among sources whose
    // root variable is already bound.
    let n = query.from.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut bound_now: HashSet<&str> = HashSet::new();
    while order.len() < n {
        let mut best: Option<(usize, (u8, u8, usize, usize))> = None;
        for (i, source) in query.from.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let available = match &source.root {
                PathRoot::Class(_) => true,
                PathRoot::Var(v) => bound_now.contains(v.as_str()),
            };
            if !available {
                continue;
            }
            let has_push = pushed.contains_key(source.binding.as_str());
            let has_closure = source
                .steps
                .iter()
                .any(|s| matches!(s.quant, Quant::Star | Quant::Plus));
            let rank = (
                if has_push { 0u8 } else { 1 },
                if has_closure { 1u8 } else { 0 },
                source.steps.len(),
                i,
            );
            if best.map(|(_, r)| rank < r).unwrap_or(true) {
                best = Some((i, rank));
            }
        }
        let (i, _) = best?; // regularity check above makes this Some
        placed[i] = true;
        bound_now.insert(&query.from[i].binding);
        order.push(i);
    }
    let reordered = order.iter().enumerate().any(|(pos, &i)| pos != i);

    let steps: Vec<BindingStep<'_>> = order
        .iter()
        .map(|&i| {
            let source = &query.from[i];
            BindingStep {
                source,
                pushed: pushed.remove(source.binding.as_str()),
            }
        })
        .collect();

    // Schedule each residual conjunct at the earliest planned step
    // after which all its variables are bound; conjuncts mentioning
    // unknown variables run last (they error per-row, like the naive
    // evaluator does — but only if a row reaches them).
    let mut filters_at: Vec<Vec<Filter<'_>>> = (0..n).map(|_| Vec::new()).collect();
    let position: HashMap<&str, usize> = steps
        .iter()
        .enumerate()
        .map(|(pos, s)| (s.source.binding.as_str(), pos))
        .collect();
    for expr in residual {
        let mut vars = HashSet::new();
        expr_vars(expr, &mut vars);
        let known: Vec<usize> = vars
            .iter()
            .filter_map(|v| position.get(v.as_str()).copied())
            .collect();
        let unknown = known.len() < vars.len();
        let at = if unknown {
            n.saturating_sub(1)
        } else {
            known.into_iter().max().unwrap_or(0)
        };
        let memo = vars.is_empty().then(|| RefCell::new(None));
        if n > 0 {
            filters_at[at].push(Filter { expr, memo });
        }
        // n == 0: zero sources; the executor applies every filter to
        // the single empty row directly (filters_at is unused).
    }

    Some(CompiledPlan {
        steps,
        filters_at,
        reordered,
    })
}

// ---- execution ------------------------------------------------------------

/// One step's root-candidate slot: class-rooted paths are
/// row-independent, so their (lookup or scan + step walk) resolves
/// once — but only when the first row actually reaches the step, so
/// an earlier binding that produces zero rows costs later sources
/// nothing (matching the streaming claim; the naive evaluator also
/// does no work for sources past an empty row set).
enum RootSlot {
    /// Class root, not reached yet.
    Lazy,
    /// Class root, resolved on first use. Behind `Rc` so every
    /// subsequent parent row shares the list instead of cloning it.
    Cached(std::rc::Rc<Vec<ObjectRef>>),
    /// Variable root: resolved per row in `descend`.
    PerRow,
}

struct Runner<'q, 'g> {
    plan: &'q CompiledPlan<'q>,
    query: &'q Query,
    graph: &'g dyn GraphSource,
    ctx: ExprCtx<'g>,
    stats: &'g RefCell<PlanStats>,
    root_cache: Vec<RootSlot>,
    has_aggregate: bool,
    out_rows: Vec<Vec<OutValue>>,
    dedup: RowDedup,
    /// Complete bound rows, kept only for aggregate finalization.
    agg_rows: Vec<Row>,
    pruned: u64,
    /// Tracing scope (disabled unless the caller came through a
    /// `*_traced` entry point). A `Scope` is one `Option<Rc>`, so
    /// holding a clone is cheaper than another lifetime.
    scope: provscope::Scope,
}

fn run(
    query: &Query,
    plan: &CompiledPlan<'_>,
    graph: &dyn GraphSource,
    stats: &RefCell<PlanStats>,
    scope: &provscope::Scope,
) -> Result<ResultSet, PqlError> {
    let has_aggregate = query
        .select
        .iter()
        .any(|s| matches!(s.expr, Expr::Aggregate { .. }));

    let root_cache: Vec<RootSlot> = plan
        .steps
        .iter()
        .map(|step| match &step.source.root {
            PathRoot::Class(_) => RootSlot::Lazy,
            PathRoot::Var(_) => RootSlot::PerRow,
        })
        .collect();
    stats.borrow_mut().bindings_reordered |= plan.reordered;

    let mut runner = Runner {
        plan,
        query,
        graph,
        ctx: ExprCtx {
            graph,
            stats: Some(stats),
        },
        stats,
        root_cache,
        has_aggregate,
        out_rows: Vec::new(),
        dedup: RowDedup::default(),
        agg_rows: Vec::new(),
        pruned: 0,
        scope: scope.clone(),
    };

    let mut row = Row::new();
    if plan.steps.is_empty() {
        // Zero sources: one empty row, filtered by every conjunct.
        let mut keep = true;
        if let Some(cond) = &query.where_clause {
            keep = truthy(&runner.ctx.eval(cond, &row, None)?);
        }
        if keep {
            runner.emit(&row)?;
        }
    } else {
        runner.descend(0, &mut row)?;
    }

    let span = scope.open("pql", "project");
    let columns = column_names(query);
    let rows = if has_aggregate {
        let mut row_out = Vec::new();
        let mut err = None;
        for item in &query.select {
            match runner
                .ctx
                .eval(&item.expr, &Row::new(), Some(&runner.agg_rows))
            {
                Ok(v) => row_out.push(v),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = err {
            scope.close(span);
            return Err(e);
        }
        vec![row_out]
    } else {
        runner.out_rows
    };
    scope.close(span);
    stats.borrow_mut().rows_pruned += runner.pruned;
    Ok(ResultSet { columns, rows })
}

impl Runner<'_, '_> {
    /// Resolves a class-rooted step's candidates (pushed lookup or
    /// class scan, then its step walk), charging the planner counters
    /// once.
    fn resolve_class_root(&self, step: &BindingStep<'_>, class: &str) -> Vec<ObjectRef> {
        let span = self.scope.open("pql", "bind");
        let out = self.resolve_class_root_inner(step, class);
        self.scope.close(span);
        out
    }

    fn resolve_class_root_inner(&self, step: &BindingStep<'_>, class: &str) -> Vec<ObjectRef> {
        let mut st = self.stats.borrow_mut();
        let starts = match &step.pushed {
            Some((attr, pred)) => {
                let lookup = self.graph.lookup_attr(class, attr, pred);
                st.predicates_pushed += 1;
                if lookup.indexed {
                    st.index_hits += 1;
                } else {
                    st.scan_bindings += 1;
                }
                if let Some(size) = self.graph.class_size(class) {
                    let pruned = size.saturating_sub(lookup.nodes.len()) as u64;
                    st.rows_pruned += pruned;
                    let downstream_closures = self
                        .plan
                        .steps
                        .iter()
                        .filter(|s| {
                            matches!(&s.source.root, PathRoot::Var(v)
                                     if *v == step.source.binding)
                                && s.has_closure()
                        })
                        .count() as u64;
                    st.closure_calls_saved += pruned * downstream_closures;
                }
                lookup.nodes
            }
            None => {
                st.scan_bindings += 1;
                // Sorted by the `class_members` contract.
                self.graph.class_members(class)
            }
        };
        drop(st);
        if step.source.steps.is_empty() {
            starts
        } else {
            walk_steps(&starts, &step.source.steps, self.graph)
        }
    }

    fn descend(&mut self, i: usize, row: &mut Row) -> Result<(), PqlError> {
        let step = &self.plan.steps[i];
        if matches!(self.root_cache[i], RootSlot::Lazy) {
            let PathRoot::Class(class) = &step.source.root else {
                unreachable!("only class roots are lazy");
            };
            self.root_cache[i] =
                RootSlot::Cached(std::rc::Rc::new(self.resolve_class_root(step, class)));
        }
        let endpoints: std::rc::Rc<Vec<ObjectRef>> = match &self.root_cache[i] {
            // Shares the cached list (Rc clone), no per-row copy.
            RootSlot::Cached(cached) => cached.clone(),
            RootSlot::Lazy => unreachable!("resolved above"),
            RootSlot::PerRow => {
                let PathRoot::Var(v) = &step.source.root else {
                    unreachable!("class roots are cached");
                };
                // Bound by construction: compile() orders a
                // variable-rooted source after its binder.
                let start = row[v.as_str()];
                std::rc::Rc::new(walk_steps(&[start], &step.source.steps, self.graph))
            }
        };
        for &endpoint in endpoints.iter() {
            let prev = row.insert(step.source.binding.clone(), endpoint);
            debug_assert!(prev.is_none(), "duplicate bindings fall back to naive");
            let mut keep = true;
            if !self.plan.filters_at[i].is_empty() {
                let span = self.scope.open("pql", "filter");
                let mut err = None;
                for filter in &self.plan.filters_at[i] {
                    match self.check(filter, row) {
                        Ok(true) => {}
                        Ok(false) => {
                            keep = false;
                            self.pruned += 1;
                            break;
                        }
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                self.scope.close(span);
                if let Some(e) = err {
                    return Err(e);
                }
            }
            if keep {
                if i + 1 == self.plan.steps.len() {
                    self.emit(row)?;
                } else {
                    self.descend(i + 1, row)?;
                }
            }
            row.remove(&step.source.binding);
        }
        Ok(())
    }

    fn check(&self, filter: &Filter<'_>, row: &Row) -> Result<bool, PqlError> {
        if let Some(memo) = &filter.memo {
            if let Some(cached) = memo.borrow().as_ref() {
                return cached.clone();
            }
            let outcome = self.ctx.eval(filter.expr, row, None).map(|v| truthy(&v));
            *memo.borrow_mut() = Some(outcome.clone());
            return outcome;
        }
        Ok(truthy(&self.ctx.eval(filter.expr, row, None)?))
    }

    fn emit(&mut self, row: &Row) -> Result<(), PqlError> {
        if self.has_aggregate {
            self.agg_rows.push(row.clone());
            return Ok(());
        }
        let mut row_out = Vec::with_capacity(self.query.select.len());
        for item in &self.query.select {
            row_out.push(self.ctx.eval(&item.expr, row, None)?);
        }
        if self.dedup.is_new(&self.out_rows, &row_out) {
            self.out_rows.push(row_out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EdgeLabel;
    use dpapi::{Pnode, Version, VolumeId};

    fn r(n: u64, v: u32) -> ObjectRef {
        ObjectRef::new(Pnode::new(VolumeId(1), n), Version(v))
    }

    /// 1(out.gif, FILE) -input-> 2(convert, PROC) -input-> 3(in.dat,
    /// FILE), with a toy name index so lookups report `indexed`.
    struct Indexed;

    impl Indexed {
        fn name_of(n: u64) -> Option<&'static str> {
            match n {
                1 => Some("out.gif"),
                2 => Some("convert"),
                3 => Some("in.dat"),
                _ => None,
            }
        }
    }

    impl GraphSource for Indexed {
        fn class_members(&self, class: &str) -> Vec<ObjectRef> {
            match class {
                "file" => vec![r(1, 0), r(3, 0)],
                "proc" => vec![r(2, 0)],
                "obj" => vec![r(1, 0), r(2, 0), r(3, 0)],
                _ => vec![],
            }
        }
        fn attr(&self, node: ObjectRef, name: &str) -> Option<Value> {
            (name == "name")
                .then(|| Self::name_of(node.pnode.number).map(Value::str))
                .flatten()
        }
        fn out_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
            if !matches!(label, EdgeLabel::Input | EdgeLabel::Any) {
                return vec![];
            }
            match node.pnode.number {
                1 => vec![r(2, 0)],
                2 => vec![r(3, 0)],
                _ => vec![],
            }
        }
        fn in_edges(&self, node: ObjectRef, label: &EdgeLabel) -> Vec<ObjectRef> {
            self.class_members("obj")
                .into_iter()
                .filter(|n| self.out_edges(*n, label).contains(&node))
                .collect()
        }
        fn lookup_attr(&self, class: &str, attr: &str, pred: &AttrPredicate) -> AttrLookup {
            let nodes = self
                .class_members(class)
                .into_iter()
                .filter(|n| pred.matches(self.attr(*n, attr).as_ref()))
                .collect();
            AttrLookup {
                nodes,
                indexed: attr == "name",
            }
        }
        fn class_size(&self, class: &str) -> Option<usize> {
            Some(self.class_members(class).len())
        }
    }

    fn planned(q: &str) -> QueryOutput {
        query_with_stats(q, &Indexed).unwrap()
    }

    #[test]
    fn equality_predicate_is_pushed_to_the_index() {
        let out =
            planned("select A from Provenance.file as F F.input* as A where F.name = 'out.gif'");
        assert_eq!(out.stats.index_hits, 1);
        assert_eq!(out.stats.predicates_pushed, 1);
        assert_eq!(out.stats.scan_bindings, 0, "no class scan for the root");
        assert!(out.stats.rows_pruned >= 1, "{:?}", out.stats);
        assert!(out.stats.closure_calls_saved >= 1, "{:?}", out.stats);
        let nodes = out.result.nodes();
        assert_eq!(nodes, vec![r(1, 0), r(2, 0), r(3, 0)]);
    }

    #[test]
    fn prefix_like_is_pushed_and_exact_like_is_not() {
        let out = planned("select F from Provenance.file as F where F.name like 'out*'");
        assert_eq!(out.stats.index_hits, 1);
        assert_eq!(out.result.len(), 1);

        // `*.gif` has a leading star: not a prefix — scan + filter.
        let out = planned("select F from Provenance.file as F where F.name like '*.gif'");
        assert_eq!(out.stats.index_hits, 0);
        assert_eq!(out.stats.scan_bindings, 1);
        assert_eq!(out.result.len(), 1);
    }

    #[test]
    fn selective_binding_runs_first() {
        // Written scan-first; the planner flips the order so the
        // indexed `name` lookup prunes before the `obj` scan fans out.
        let out = planned(
            "select F from Provenance.obj as O Provenance.file as F \
             where F.name = 'in.dat'",
        );
        assert!(out.stats.bindings_reordered);
        assert_eq!(out.stats.index_hits, 1);
        assert_eq!(out.result.len(), 1);
        // Same rows as the naive evaluator, as a set.
        let q = crate::parse(
            "select F from Provenance.obj as O Provenance.file as F \
             where F.name = 'in.dat'",
        )
        .unwrap();
        let naive = crate::eval::execute(&q, &Indexed).unwrap();
        let mut a = out.result.rows.clone();
        let mut b = naive.rows.clone();
        a.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        b.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
        assert_eq!(a, b);
    }

    #[test]
    fn irregular_queries_fall_back_to_naive() {
        // Root variable bound by a *later* source: the naive
        // evaluator errors; the planner must too (via fallback), not
        // silently reorder it into something that works.
        let q = "select A from X.input as A Provenance.file as X";
        let planned = query_with_stats(q, &Indexed);
        let naive = crate::eval::execute(&crate::parse(q).unwrap(), &Indexed);
        assert!(planned.is_err() && naive.is_err());
    }

    /// A selective binding that comes up empty costs later sources
    /// nothing: the `obj` scan binding is never resolved (its
    /// `scan_bindings` counter stays 0).
    #[test]
    fn empty_selective_binding_skips_later_sources() {
        let out = planned(
            "select F, O from Provenance.file as F Provenance.obj as O \
             where F.name = 'nonexistent'",
        );
        assert!(out.result.is_empty());
        assert_eq!(out.stats.index_hits, 1);
        assert_eq!(
            out.stats.scan_bindings, 0,
            "the obj scan must never run: {:?}",
            out.stats
        );
    }

    #[test]
    fn filters_apply_as_soon_as_bound() {
        // The F filter runs before A fans out; pruning is counted.
        let out = planned("select A from Provenance.file as F F.input* as A where F.name = 'nope'");
        assert!(out.result.is_empty());
    }

    #[test]
    fn aggregates_and_subqueries_run_planned() {
        let out = planned(
            "select count(A) as n from Provenance.file as F F.input+ as A \
             where F.name = 'out.gif'",
        );
        assert_eq!(out.result.rows[0][0].as_int(), Some(2));
        assert_eq!(out.result.columns, vec!["n"]);

        let out = planned(
            "select P from Provenance.proc as P \
             where P.name in (select F.name from Provenance.obj as F where F.name = 'convert')",
        );
        assert_eq!(out.result.len(), 1);
        // The sub-query's pushdown folds into the same counters.
        assert!(out.stats.index_hits >= 1);
    }

    #[test]
    fn like_prefix_extraction() {
        assert_eq!(like_prefix("/data/*"), Some("/data/".to_string()));
        assert_eq!(like_prefix("*"), None);
        assert_eq!(like_prefix("*.gif"), None);
        assert_eq!(like_prefix("a?b*"), None);
        assert_eq!(like_prefix("plain"), None);
        assert_eq!(like_prefix("a*b*"), None);
    }

    #[test]
    fn attr_predicate_matches_comparison_semantics() {
        let eq = AttrPredicate::Eq(Value::str("x"));
        assert!(eq.matches(Some(&Value::str("x"))));
        assert!(!eq.matches(Some(&Value::str("y"))));
        assert!(!eq.matches(Some(&Value::Int(1))));
        assert!(!eq.matches(None));
        let pre = AttrPredicate::LikePrefix("/a/".into());
        assert!(pre.matches(Some(&Value::str("/a/b"))));
        assert!(!pre.matches(Some(&Value::str("/b/a"))));
        assert!(!pre.matches(Some(&Value::Int(1))));
    }
}
