//! Property tests for the provenance log: roundtrip fidelity,
//! truncation behaviour, and recovery invariants.

use bytes::BytesMut;
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::{encode_entry, parse_log, LogEntry, LogTail};
use proptest::prelude::*;

fn arb_entry() -> impl Strategy<Value = LogEntry> {
    let subject = (1u64..100, 0u32..5)
        .prop_map(|(n, v)| ObjectRef::new(Pnode::new(VolumeId(1), n), Version(v)));
    prop_oneof![
        (subject.clone(), "[A-Z_]{1,12}", ".{0,32}").prop_map(|(s, a, v)| LogEntry::Prov {
            subject: s,
            record: ProvenanceRecord::new(Attribute::from_name(&a), Value::Str(v)),
        }),
        (subject.clone(), 1u64..100, 0u32..3).prop_map(|(s, a, v)| LogEntry::Prov {
            subject: s,
            record: ProvenanceRecord::input(
                ObjectRef::new(Pnode::new(VolumeId(1), a), Version(v),)
            ),
        }),
        (subject, any::<u64>(), 1u32..65536, any::<[u8; 16]>()).prop_map(
            |(s, off, len, digest)| LogEntry::DataWrite {
                subject: s,
                offset: off,
                len,
                digest,
            }
        ),
        (1u64..1000).prop_map(|id| LogEntry::TxnBegin { id }),
        (1u64..1000).prop_map(|id| LogEntry::TxnEnd { id }),
    ]
}

proptest! {
    /// Any entry sequence roundtrips byte-exactly.
    #[test]
    fn log_roundtrip(entries in proptest::collection::vec(arb_entry(), 0..64)) {
        let mut buf = BytesMut::new();
        for e in &entries {
            encode_entry(&mut buf, e);
        }
        let (parsed, tail) = parse_log(&buf);
        prop_assert_eq!(tail, LogTail::Clean);
        prop_assert_eq!(parsed, entries);
    }

    /// Truncation at ANY byte loses only a suffix of entries, never
    /// corrupts a prefix, and is always reported.
    #[test]
    fn truncation_loses_only_a_suffix(
        entries in proptest::collection::vec(arb_entry(), 1..24),
        frac in 0.0f64..1.0
    ) {
        let mut buf = BytesMut::new();
        for e in &entries {
            encode_entry(&mut buf, e);
        }
        let cut = ((buf.len() as f64) * frac) as usize;
        let (parsed, tail) = parse_log(&buf[..cut]);
        prop_assert!(parsed.len() <= entries.len());
        prop_assert_eq!(&entries[..parsed.len()], &parsed[..]);
        if cut == buf.len() {
            prop_assert_eq!(tail, LogTail::Clean);
        } else if parsed.len() < entries.len() && cut > 0 {
            let torn = matches!(tail, LogTail::Truncated { .. })
                || matches!(tail, LogTail::Clean);
            prop_assert!(torn);
        }
    }

    /// Single-byte corruption anywhere is detected: parsing either
    /// stops at the corrupt entry or (if the flip hits a length field
    /// making the entry appear truncated) reports a tear — it never
    /// silently yields wrong record *content* for intact prefixes.
    #[test]
    fn corruption_never_passes_silently(
        entries in proptest::collection::vec(arb_entry(), 1..16),
        flip_at in any::<prop::sample::Index>(),
    ) {
        let mut buf = BytesMut::new();
        let mut boundaries = vec![0usize];
        for e in &entries {
            encode_entry(&mut buf, e);
            boundaries.push(buf.len());
        }
        let mut bytes = buf.to_vec();
        let pos = flip_at.index(bytes.len());
        bytes[pos] ^= 0x01;
        let (parsed, _tail) = parse_log(&bytes);
        // Entries strictly before the corrupted one parse unchanged.
        let victim = boundaries.iter().filter(|b| **b <= pos).count() - 1;
        let intact = victim.min(parsed.len());
        prop_assert_eq!(&parsed[..intact], &entries[..intact]);
    }
}
