//! Property tests for the provenance log: roundtrip fidelity,
//! truncation behaviour, and recovery invariants.

use bytes::BytesMut;
use dpapi::{Attribute, ObjectRef, Pnode, ProvenanceRecord, Value, Version, VolumeId};
use lasagna::{encode_entry, encode_group, group_count, parse_log, LogEntry, LogTail};
use proptest::prelude::*;

fn arb_entry() -> impl Strategy<Value = LogEntry> {
    let subject = (1u64..100, 0u32..5)
        .prop_map(|(n, v)| ObjectRef::new(Pnode::new(VolumeId(1), n), Version(v)));
    prop_oneof![
        (subject.clone(), "[A-Z_]{1,12}", ".{0,32}").prop_map(|(s, a, v)| LogEntry::Prov {
            subject: s,
            record: ProvenanceRecord::new(Attribute::from_name(&a), Value::Str(v)),
        }),
        (subject.clone(), 1u64..100, 0u32..3).prop_map(|(s, a, v)| LogEntry::Prov {
            subject: s,
            record: ProvenanceRecord::input(
                ObjectRef::new(Pnode::new(VolumeId(1), a), Version(v),)
            ),
        }),
        (subject, any::<u64>(), 1u32..65536, any::<[u8; 16]>()).prop_map(
            |(s, off, len, digest)| LogEntry::DataWrite {
                subject: s,
                offset: off,
                len,
                digest,
            }
        ),
        (1u64..1000).prop_map(|id| LogEntry::TxnBegin { id }),
        (1u64..1000).prop_map(|id| LogEntry::TxnEnd { id }),
    ]
}

proptest! {
    /// Any entry sequence roundtrips byte-exactly.
    #[test]
    fn log_roundtrip(entries in proptest::collection::vec(arb_entry(), 0..64)) {
        let mut buf = BytesMut::new();
        for e in &entries {
            encode_entry(&mut buf, e).unwrap();
        }
        let (parsed, tail) = parse_log(&buf);
        prop_assert_eq!(tail, LogTail::Clean);
        prop_assert_eq!(parsed, entries);
    }

    /// Truncation at ANY byte loses only a suffix of entries, never
    /// corrupts a prefix, and is always reported.
    #[test]
    fn truncation_loses_only_a_suffix(
        entries in proptest::collection::vec(arb_entry(), 1..24),
        frac in 0.0f64..1.0
    ) {
        let mut buf = BytesMut::new();
        for e in &entries {
            encode_entry(&mut buf, e).unwrap();
        }
        let cut = ((buf.len() as f64) * frac) as usize;
        let (parsed, tail) = parse_log(&buf[..cut]);
        prop_assert!(parsed.len() <= entries.len());
        prop_assert_eq!(&entries[..parsed.len()], &parsed[..]);
        if cut == buf.len() {
            prop_assert_eq!(tail, LogTail::Clean);
        } else if parsed.len() < entries.len() && cut > 0 {
            let torn = matches!(tail, LogTail::Truncated { .. })
                || matches!(tail, LogTail::Clean);
            prop_assert!(torn);
        }
    }

    /// Single-byte corruption anywhere is detected: parsing either
    /// stops at the corrupt entry or (if the flip hits a length field
    /// making the entry appear truncated) reports a tear — it never
    /// silently yields wrong record *content* for intact prefixes.
    #[test]
    fn corruption_never_passes_silently(
        entries in proptest::collection::vec(arb_entry(), 1..16),
        flip_at in any::<prop::sample::Index>(),
    ) {
        let mut buf = BytesMut::new();
        let mut boundaries = vec![0usize];
        for e in &entries {
            encode_entry(&mut buf, e).unwrap();
            boundaries.push(buf.len());
        }
        let mut bytes = buf.to_vec();
        let pos = flip_at.index(bytes.len());
        bytes[pos] ^= 0x01;
        let (parsed, _tail) = parse_log(&bytes);
        // Entries strictly before the corrupted one parse unchanged.
        let victim = boundaries.iter().filter(|b| **b <= pos).count() - 1;
        let intact = victim.min(parsed.len());
        prop_assert_eq!(&parsed[..intact], &entries[..intact]);
    }

    /// A group frame always flattens back to exactly its member
    /// entries, wherever it sits among plain entries — the consumer
    /// sees one stream regardless of framing.
    #[test]
    fn group_roundtrip_flattens_to_members(
        lead in proptest::collection::vec(arb_entry(), 0..8),
        members in proptest::collection::vec(arb_entry(), 0..24),
        tailing in proptest::collection::vec(arb_entry(), 0..8),
    ) {
        let mut buf = BytesMut::new();
        for e in &lead {
            encode_entry(&mut buf, e).unwrap();
        }
        encode_group(&mut buf, &members).unwrap();
        for e in &tailing {
            encode_entry(&mut buf, e).unwrap();
        }
        prop_assert_eq!(group_count(&buf), 1);
        let (parsed, tail) = parse_log(&buf);
        prop_assert_eq!(tail, LogTail::Clean);
        let mut expect = lead.clone();
        expect.extend(members.clone());
        expect.extend(tailing.clone());
        prop_assert_eq!(parsed, expect);
    }

    /// A flipped byte anywhere inside a group frame drops the whole
    /// group (never a partial transaction) while entries before it
    /// parse unchanged.
    #[test]
    fn group_corruption_drops_the_whole_group(
        lead in proptest::collection::vec(arb_entry(), 0..6),
        members in proptest::collection::vec(arb_entry(), 1..16),
        flip_at in any::<prop::sample::Index>(),
    ) {
        let mut buf = BytesMut::new();
        for e in &lead {
            encode_entry(&mut buf, e).unwrap();
        }
        let group_at = buf.len();
        encode_group(&mut buf, &members).unwrap();
        let mut bytes = buf.to_vec();
        let pos = group_at + flip_at.index(bytes.len() - group_at);
        bytes[pos] ^= 0x01;
        let (parsed, tail) = parse_log(&bytes);
        // Never more than the lead entries; never a strict subset of
        // the group's members surfacing as a partial transaction.
        prop_assert!(parsed.len() <= lead.len());
        prop_assert_eq!(&parsed[..], &lead[..parsed.len()]);
        prop_assert!(!matches!(tail, LogTail::Clean));
    }
}
