//! Lasagna: the provenance-aware file system of PASSv2.
//!
//! Lasagna is a *stackable* file system (the paper derives it from
//! eCryptfs): it wraps a lower file system, implements the regular
//! VFS calls by delegation, and adds the DPAPI — `pass_read`,
//! `pass_write` and `pass_freeze` as inode operations, `pass_mkobj`
//! and `pass_reviveobj` as superblock operations. All provenance is
//! appended to an on-disk log with write-ahead-provenance ordering and
//! MD5 data digests; [`recovery`] identifies data whose provenance is
//! inconsistent after a crash, and Waldo consumes rotated logs to
//! build the query database.

pub mod fs;
pub mod log;
pub mod md5;
pub mod recovery;

pub use fs::{
    batch_txn_id, batch_txn_parts, ino_attribute, Lasagna, LasagnaConfig, LasagnaStats, PASS_DIR,
};
pub use log::{
    crc32, encode_entry, encode_group, entry_size, group_count, parse_log, LogEntry, LogTail,
};
pub use md5::{md5, Digest};
pub use recovery::{recover, Inconsistency, InconsistencyReason, RecoveryReport};
