//! Crash recovery: identifying data whose provenance is inconsistent.
//!
//! The write-ahead-provenance protocol guarantees no *unprovenanced*
//! data reaches the disk; what can exist after a crash is logged
//! provenance whose data never (fully) arrived. Recovery scans the
//! provenance logs, replays identity bindings and versions, and
//! verifies the MD5 digest of every surviving data write against the
//! file contents — "this indicates precisely the data that was being
//! written to disk at the time of a crash" (paper §5.6).

use std::collections::{HashMap, HashSet};

use dpapi::{Attribute, ObjectRef, Value, Version};
use sim_os::fs::{FileSystem, Ino};

use crate::fs::ino_attribute;
use crate::log::{parse_log, LogEntry, LogTail};
use crate::md5::md5;

/// One data range whose on-disk bytes do not match the logged digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Inconsistency {
    /// The object whose data is suspect.
    pub subject: ObjectRef,
    /// Offset of the suspect write.
    pub offset: u64,
    /// Length of the suspect write.
    pub len: u32,
    /// Why it is suspect.
    pub reason: InconsistencyReason,
}

/// Why a logged write failed verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InconsistencyReason {
    /// The digest of the on-disk bytes differs from the logged digest.
    DigestMismatch,
    /// The file is shorter than the logged write.
    MissingData,
    /// The log holds no inode binding for the pnode, so the data
    /// cannot be located.
    UnknownFile,
}

/// The outcome of scanning the logs after a (simulated) crash.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Total log entries parsed across all logs.
    pub entries_scanned: usize,
    /// Logs that ended mid-entry (crash while appending).
    pub truncated_logs: usize,
    /// Logs with CRC failures.
    pub corrupt_logs: usize,
    /// Data writes whose digests verified.
    pub verified_writes: usize,
    /// Data ranges flagged as inconsistent.
    pub inconsistent: Vec<Inconsistency>,
    /// Transactions begun but never ended (orphaned provenance that
    /// the server-side Waldo garbage-collects).
    pub orphaned_txns: Vec<u64>,
    /// Highest pnode number observed, for allocator resumption.
    pub max_pnode: u64,
    /// Recovered current version per pnode number.
    pub versions: HashMap<u64, Version>,
}

/// Scans `logs` (raw log images, oldest first) against `lower` and
/// produces a [`RecoveryReport`].
pub fn recover(lower: &mut dyn FileSystem, logs: &[Vec<u8>]) -> RecoveryReport {
    let mut report = RecoveryReport::default();
    let mut entries = Vec::new();
    for image in logs {
        let (mut parsed, tail) = parse_log(image);
        match tail {
            LogTail::Clean => {}
            LogTail::Truncated { .. } => report.truncated_logs += 1,
            LogTail::Corrupt { .. } => report.corrupt_logs += 1,
        }
        entries.append(&mut parsed);
    }
    report.entries_scanned = entries.len();

    // Pass 1: identity bindings, versions, transactions.
    let mut ino_of: HashMap<u64, Ino> = HashMap::new();
    let mut open_txns: HashSet<u64> = HashSet::new();
    for e in &entries {
        match e {
            LogEntry::Prov { subject, record } => {
                report.max_pnode = report.max_pnode.max(subject.pnode.number);
                if record.attribute == ino_attribute() {
                    if let Value::Int(ino) = record.value {
                        ino_of.insert(subject.pnode.number, Ino(ino as u64));
                    }
                }
                if record.attribute == Attribute::Freeze {
                    if let Value::Int(v) = record.value {
                        report
                            .versions
                            .insert(subject.pnode.number, Version(v as u32));
                    }
                }
            }
            LogEntry::DataWrite { subject, .. } => {
                report.max_pnode = report.max_pnode.max(subject.pnode.number);
            }
            LogEntry::TxnBegin { id } => {
                open_txns.insert(*id);
            }
            LogEntry::TxnEnd { id } => {
                open_txns.remove(id);
            }
        }
    }
    report.orphaned_txns = {
        let mut v: Vec<u64> = open_txns.into_iter().collect();
        v.sort_unstable();
        v
    };

    // Pass 2: keep the *last* data write per (pnode, offset) — earlier
    // digests are superseded by overwrites — then verify against the
    // file contents.
    let mut last_writes: HashMap<(u64, u64), (ObjectRef, u32, crate::md5::Digest)> = HashMap::new();
    for e in &entries {
        if let LogEntry::DataWrite {
            subject,
            offset,
            len,
            digest,
        } = e
        {
            last_writes.insert((subject.pnode.number, *offset), (*subject, *len, *digest));
        }
    }
    let mut keys: Vec<(u64, u64)> = last_writes.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let (subject, len, digest) = last_writes[&key];
        let offset = key.1;
        let Some(ino) = ino_of.get(&subject.pnode.number).copied() else {
            report.inconsistent.push(Inconsistency {
                subject,
                offset,
                len,
                reason: InconsistencyReason::UnknownFile,
            });
            continue;
        };
        match lower.read(ino, offset, len as usize) {
            Ok(data) if data.len() == len as usize => {
                if md5(&data) == digest {
                    report.verified_writes += 1;
                } else {
                    report.inconsistent.push(Inconsistency {
                        subject,
                        offset,
                        len,
                        reason: InconsistencyReason::DigestMismatch,
                    });
                }
            }
            _ => {
                report.inconsistent.push(Inconsistency {
                    subject,
                    offset,
                    len,
                    reason: InconsistencyReason::MissingData,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::{Lasagna, LasagnaConfig, PASS_DIR};
    use dpapi::{Bundle, VolumeId};
    use sim_os::clock::Clock;
    use sim_os::cost::CostModel;
    use sim_os::fs::basefs::BaseFs;
    use sim_os::fs::DpapiVolume;

    /// Builds a volume, runs `f`, then returns (lower fs, log images).
    fn run_and_crash(
        f: impl FnOnce(&mut Lasagna),
        mutilate: impl FnOnce(&mut Vec<Vec<u8>>, &mut dyn FileSystem),
    ) -> RecoveryReport {
        let clock = Clock::new();
        let model = CostModel::default();
        let lower = BaseFs::new(clock.clone(), model);
        let mut v = Lasagna::new(
            Box::new(lower),
            clock,
            model,
            LasagnaConfig::new(VolumeId(1)),
        )
        .unwrap();
        f(&mut v);
        v.force_log_rotation();
        // Collect log images from the lower fs.
        let lower = v.lower_mut();
        let root = lower.root();
        let dir = lower.lookup(root, PASS_DIR).unwrap();
        let mut images = Vec::new();
        for e in lower.readdir(dir).unwrap() {
            let size = lower.getattr(e.ino).unwrap().size as usize;
            if size > 0 {
                images.push(lower.read(e.ino, 0, size).unwrap());
            }
        }
        mutilate(&mut images, lower);
        recover(lower, &images)
    }

    fn write_file(v: &mut Lasagna, name: &str, data: &[u8]) -> Ino {
        let root = v.root();
        let ino = v.create(root, name).unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        use dpapi::Dpapi;
        v.pass_write(h, 0, data, Bundle::new()).unwrap();
        ino
    }

    #[test]
    fn clean_shutdown_verifies_everything() {
        let report = run_and_crash(
            |v| {
                write_file(v, "a", b"alpha");
                write_file(v, "b", b"beta");
            },
            |_logs, _fs| {},
        );
        assert_eq!(report.verified_writes, 2);
        assert!(report.inconsistent.is_empty());
        assert_eq!(report.truncated_logs, 0);
        assert!(report.max_pnode >= 2);
    }

    #[test]
    fn lost_data_is_flagged_missing() {
        let report = run_and_crash(
            |v| {
                write_file(v, "a", b"will vanish");
            },
            |_logs, fs| {
                // Simulate the crash losing the data write: truncate
                // the file to zero after the log was persisted.
                let root = fs.root();
                let ino = fs.lookup(root, "a").unwrap();
                fs.truncate(ino, 0).unwrap();
            },
        );
        assert_eq!(report.verified_writes, 0);
        assert_eq!(report.inconsistent.len(), 1);
        assert_eq!(
            report.inconsistent[0].reason,
            InconsistencyReason::MissingData
        );
    }

    #[test]
    fn corrupted_data_is_flagged_by_digest() {
        let report = run_and_crash(
            |v| {
                write_file(v, "a", b"good bytes here");
            },
            |_logs, fs| {
                let root = fs.root();
                let ino = fs.lookup(root, "a").unwrap();
                fs.write(ino, 0, b"BAD").unwrap();
            },
        );
        assert_eq!(report.inconsistent.len(), 1);
        assert_eq!(
            report.inconsistent[0].reason,
            InconsistencyReason::DigestMismatch
        );
    }

    #[test]
    fn truncated_log_tail_is_counted_not_fatal() {
        let report = run_and_crash(
            |v| {
                write_file(v, "a", b"one");
                write_file(v, "b", b"two");
            },
            |logs, _fs| {
                // Chop the last few bytes of the final log image.
                if let Some(last) = logs.last_mut() {
                    let n = last.len();
                    last.truncate(n - 3);
                }
            },
        );
        assert_eq!(report.truncated_logs, 1);
        // Entries before the tear still verified.
        assert!(report.verified_writes >= 1);
    }

    #[test]
    fn orphaned_transactions_are_reported() {
        use bytes::BytesMut;
        let clock = Clock::new();
        let model = CostModel::default();
        let mut lower = BaseFs::new(clock, model);
        let mut img = BytesMut::new();
        crate::log::encode_entry(&mut img, &LogEntry::TxnBegin { id: 42 }).unwrap();
        crate::log::encode_entry(&mut img, &LogEntry::TxnBegin { id: 43 }).unwrap();
        crate::log::encode_entry(&mut img, &LogEntry::TxnEnd { id: 43 }).unwrap();
        let report = recover(&mut lower, &[img.to_vec()]);
        assert_eq!(report.orphaned_txns, vec![42]);
    }

    #[test]
    fn versions_recovered_from_freeze_records() {
        let report = run_and_crash(
            |v| {
                let root = v.root();
                let ino = v.create(root, "f").unwrap();
                let h = v.handle_for_ino(ino).unwrap();
                use dpapi::Dpapi;
                v.pass_freeze(h).unwrap();
                v.pass_freeze(h).unwrap();
            },
            |_logs, _fs| {},
        );
        assert!(report.versions.values().any(|v| *v == Version(2)));
    }

    #[test]
    fn overwrites_only_verify_final_digest() {
        let report = run_and_crash(
            |v| {
                let root = v.root();
                let ino = v.create(root, "f").unwrap();
                let h = v.handle_for_ino(ino).unwrap();
                use dpapi::Dpapi;
                v.pass_write(h, 0, b"first", Bundle::new()).unwrap();
                v.pass_write(h, 0, b"fresh", Bundle::new()).unwrap();
            },
            |_logs, _fs| {},
        );
        // One (pnode, offset) key, verified against the final bytes.
        assert_eq!(report.verified_writes, 1);
        assert!(report.inconsistent.is_empty());
    }
}
