//! The on-disk provenance log format.
//!
//! PASSv2 writes all provenance records to a log; Waldo later moves
//! them into the indexed database (paper §5.6). The log uses
//! transactional structures plus MD5 digests of data so that recovery
//! can identify exactly the data being written at the time of a
//! crash.
//!
//! Framing of each entry:
//!
//! ```text
//! entry := kind u8, len u32le, payload[len], crc32 u32le
//! ```
//!
//! The CRC covers the kind byte and the payload. A truncated or
//! corrupt tail terminates parsing and is reported to the recovery
//! machinery instead of being silently ignored.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dpapi::wire;
use dpapi::{DpapiError, ObjectRef, ProvenanceRecord, Result};

use crate::md5::Digest;

const KIND_PROV: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_TXN_BEGIN: u8 = 3;
const KIND_TXN_END: u8 = 4;
/// A *group*: one disclosure transaction's entries framed as a single
/// length-prefixed record run. The outer CRC closes over every member,
/// so a torn or corrupt tail drops the whole group — the log-level
/// face of the DPAPI v2 atomicity contract.
const KIND_GROUP: u8 = 5;

/// One entry of the provenance log.
#[derive(Clone, Debug, PartialEq)]
pub enum LogEntry {
    /// A provenance record describing `subject`.
    Prov {
        /// The object (at a specific version) the record describes.
        subject: ObjectRef,
        /// The record itself.
        record: ProvenanceRecord,
    },
    /// A data write, logged *before* the data reaches the file
    /// (write-ahead provenance). The digest lets recovery verify the
    /// on-disk bytes.
    DataWrite {
        /// The file written.
        subject: ObjectRef,
        /// Byte offset of the write.
        offset: u64,
        /// Length of the write.
        len: u32,
        /// MD5 of the written bytes.
        digest: Digest,
    },
    /// Start of a provenance transaction (PA-NFS chunked bundles).
    TxnBegin {
        /// Transaction id issued by the server volume.
        id: u64,
    },
    /// End of a provenance transaction.
    TxnEnd {
        /// Transaction id from the matching [`LogEntry::TxnBegin`].
        id: u64,
    },
}

/// CRC-32 (IEEE 802.3), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Writes one CRC-closed frame (`kind`, length, payload, CRC32).
/// Errors — writing nothing — on a payload the `u32` length prefix
/// cannot represent (the same silent-truncation class as the fixed
/// `u16` attribute-name bug, one level up).
fn put_frame(buf: &mut BytesMut, kind: u8, payload: &[u8]) -> Result<()> {
    if payload.len() > u32::MAX as usize {
        return Err(DpapiError::Malformed(format!(
            "log frame payload of {} bytes exceeds the u32 prefix",
            payload.len()
        )));
    }
    buf.put_u8(kind);
    buf.put_u32_le(payload.len() as u32);
    let mut crc_input = Vec::with_capacity(1 + payload.len());
    crc_input.push(kind);
    crc_input.extend_from_slice(payload);
    buf.put_slice(payload);
    buf.put_u32_le(crc32(&crc_input));
    Ok(())
}

/// Appends `entry` to `buf` in wire framing.
///
/// On error (a record whose attribute name or payload cannot be
/// represented — see [`wire::validate_record`]) `buf` is left
/// untouched, so a failed encode can never emit a partial frame.
pub fn encode_entry(buf: &mut BytesMut, entry: &LogEntry) -> Result<()> {
    let mut payload = BytesMut::new();
    let kind = match entry {
        LogEntry::Prov { subject, record } => {
            wire::put_object_ref(&mut payload, *subject);
            wire::put_record(&mut payload, record)?;
            KIND_PROV
        }
        LogEntry::DataWrite {
            subject,
            offset,
            len,
            digest,
        } => {
            wire::put_object_ref(&mut payload, *subject);
            payload.put_u64_le(*offset);
            payload.put_u32_le(*len);
            payload.put_slice(digest);
            KIND_DATA
        }
        LogEntry::TxnBegin { id } => {
            payload.put_u64_le(*id);
            KIND_TXN_BEGIN
        }
        LogEntry::TxnEnd { id } => {
            payload.put_u64_le(*id);
            KIND_TXN_END
        }
    };
    put_frame(buf, kind, &payload)
}

/// Appends `entries` to `buf` as one *group frame*: a single
/// length-prefixed record run whose outer CRC closes over every
/// member. Parsing flattens the group back into its member entries;
/// a torn or corrupt group is dropped wholesale, never partially —
/// this is how Lasagna makes a disclosure transaction's provenance
/// atomic on disk.
///
/// On error (an unrepresentable record) `buf` is left untouched.
pub fn encode_group(buf: &mut BytesMut, entries: &[LogEntry]) -> Result<()> {
    let mut payload = BytesMut::new();
    payload.put_u32_le(entries.len() as u32);
    for e in entries {
        encode_entry(&mut payload, e)?;
    }
    put_frame(buf, KIND_GROUP, &payload)
}

/// Serialized size of an entry (header + payload + CRC). Errors on
/// records the wire format cannot represent.
pub fn entry_size(entry: &LogEntry) -> Result<usize> {
    let mut buf = BytesMut::new();
    encode_entry(&mut buf, entry)?;
    Ok(buf.len())
}

/// Number of group frames in a log image (tests and diagnostics; the
/// parser itself flattens groups into their members).
pub fn group_count(data: &[u8]) -> usize {
    let mut n = 0usize;
    let mut at = 0usize;
    while data.len() - at >= 5 {
        let kind = data[at];
        let len =
            u32::from_le_bytes([data[at + 1], data[at + 2], data[at + 3], data[at + 4]]) as usize;
        if data.len() - at < 5 + len + 4 {
            break;
        }
        if kind == KIND_GROUP {
            n += 1;
        }
        at += 5 + len + 4;
    }
    n
}

/// How parsing of a log image ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogTail {
    /// The log ended exactly at an entry boundary.
    Clean,
    /// The log ended mid-entry at the given byte offset — the classic
    /// crash-while-appending signature.
    Truncated {
        /// Offset of the first incomplete byte run.
        at: usize,
    },
    /// An entry failed its CRC at the given byte offset.
    Corrupt {
        /// Offset of the corrupt entry.
        at: usize,
    },
}

/// Parses a log image into entries plus a tail condition.
///
/// Group frames ([`encode_group`]) are flattened into their member
/// entries: consumers see the same `LogEntry` stream whether a
/// transaction was logged grouped or entry-at-a-time. A group whose
/// members do not parse exactly (bad inner frame, count mismatch) is
/// reported as corrupt at the group's offset.
pub fn parse_log(data: &[u8]) -> (Vec<LogEntry>, LogTail) {
    parse_frames(data, false)
}

/// The frame walker behind [`parse_log`]. `inside_group` rejects
/// group frames nested inside a group's payload: the encoder never
/// produces them, and accepting them would let a crafted log drive
/// unbounded parser recursion.
fn parse_frames(data: &[u8], inside_group: bool) -> (Vec<LogEntry>, LogTail) {
    let mut entries = Vec::new();
    let mut at = 0usize;
    while at < data.len() {
        let remaining = data.len() - at;
        if remaining < 5 {
            return (entries, LogTail::Truncated { at });
        }
        let kind = data[at];
        let len =
            u32::from_le_bytes([data[at + 1], data[at + 2], data[at + 3], data[at + 4]]) as usize;
        if remaining < 5 + len + 4 {
            return (entries, LogTail::Truncated { at });
        }
        let payload = &data[at + 5..at + 5 + len];
        let stored_crc = u32::from_le_bytes([
            data[at + 5 + len],
            data[at + 5 + len + 1],
            data[at + 5 + len + 2],
            data[at + 5 + len + 3],
        ]);
        let mut crc_input = Vec::with_capacity(1 + len);
        crc_input.push(kind);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != stored_crc {
            return (entries, LogTail::Corrupt { at });
        }
        match decode_payload(kind, payload, inside_group, &mut entries) {
            Ok(()) => {}
            Err(_) => return (entries, LogTail::Corrupt { at }),
        }
        at += 5 + len + 4;
    }
    (entries, LogTail::Clean)
}

/// Decodes one frame's payload, pushing its entry (or, for a group,
/// every member entry) onto `out`. On error nothing is pushed and the
/// caller reports corruption at the frame's offset.
fn decode_payload(
    kind: u8,
    payload: &[u8],
    inside_group: bool,
    out: &mut Vec<LogEntry>,
) -> Result<()> {
    let mut buf = Bytes::copy_from_slice(payload);
    match kind {
        KIND_PROV => {
            let subject = wire::get_object_ref(&mut buf)?;
            let record = wire::get_record(&mut buf)?;
            out.push(LogEntry::Prov { subject, record });
        }
        KIND_DATA => {
            let subject = wire::get_object_ref(&mut buf)?;
            if buf.remaining() < 8 + 4 + 16 {
                return Err(DpapiError::Malformed("short data-write entry".into()));
            }
            let offset = buf.get_u64_le();
            let len = buf.get_u32_le();
            let mut digest = [0u8; 16];
            digest.copy_from_slice(&buf.split_to(16));
            out.push(LogEntry::DataWrite {
                subject,
                offset,
                len,
                digest,
            });
        }
        KIND_TXN_BEGIN => {
            if buf.remaining() < 8 {
                return Err(DpapiError::Malformed("short txn-begin".into()));
            }
            out.push(LogEntry::TxnBegin {
                id: buf.get_u64_le(),
            });
        }
        KIND_TXN_END => {
            if buf.remaining() < 8 {
                return Err(DpapiError::Malformed("short txn-end".into()));
            }
            out.push(LogEntry::TxnEnd {
                id: buf.get_u64_le(),
            });
        }
        KIND_GROUP => {
            if inside_group {
                return Err(DpapiError::Malformed("nested group frame".into()));
            }
            if buf.remaining() < 4 {
                return Err(DpapiError::Malformed("short group header".into()));
            }
            let n = buf.get_u32_le() as usize;
            let (members, tail) = parse_frames(&buf, true);
            if tail != LogTail::Clean || members.len() != n {
                return Err(DpapiError::Malformed(format!(
                    "group of {n} entries parsed to {} with tail {tail:?}",
                    members.len()
                )));
            }
            out.extend(members);
        }
        other => return Err(DpapiError::Malformed(format!("unknown log kind {other}"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Attribute, Pnode, Value, Version, VolumeId};

    fn subject(n: u64) -> ObjectRef {
        ObjectRef::new(Pnode::new(VolumeId(1), n), Version(2))
    }

    fn sample_entries() -> Vec<LogEntry> {
        vec![
            LogEntry::TxnBegin { id: 7 },
            LogEntry::Prov {
                subject: subject(1),
                record: ProvenanceRecord::new(Attribute::Name, Value::str("out.dat")),
            },
            LogEntry::Prov {
                subject: subject(1),
                record: ProvenanceRecord::input(subject(2)),
            },
            LogEntry::DataWrite {
                subject: subject(1),
                offset: 4096,
                len: 512,
                digest: crate::md5::md5(b"payload"),
            },
            LogEntry::TxnEnd { id: 7 },
        ]
    }

    #[test]
    fn roundtrip_all_entry_kinds() {
        let entries = sample_entries();
        let mut buf = BytesMut::new();
        for e in &entries {
            encode_entry(&mut buf, e).unwrap();
        }
        let (parsed, tail) = parse_log(&buf);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(parsed, entries);
    }

    #[test]
    fn group_frame_flattens_to_member_entries() {
        let entries = sample_entries();
        let mut buf = BytesMut::new();
        encode_group(&mut buf, &entries).unwrap();
        assert_eq!(group_count(&buf), 1);
        let (parsed, tail) = parse_log(&buf);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(parsed, entries, "a group parses to its members");
        // Groups and plain entries interleave freely.
        encode_entry(&mut buf, &LogEntry::TxnBegin { id: 99 }).unwrap();
        encode_group(&mut buf, &entries[..2]).unwrap();
        let (parsed, tail) = parse_log(&buf);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(parsed.len(), entries.len() + 1 + 2);
        assert_eq!(group_count(&buf), 2);
    }

    #[test]
    fn torn_group_is_dropped_wholesale() {
        let entries = sample_entries();
        let mut buf = BytesMut::new();
        encode_entry(&mut buf, &entries[0]).unwrap();
        let group_at = buf.len();
        encode_group(&mut buf, &entries).unwrap();
        // Cut inside the group: the lead entry survives, the whole
        // group is gone — no partial transaction is ever surfaced.
        let cut = group_at + 12;
        let (parsed, tail) = parse_log(&buf[..cut]);
        assert_eq!(parsed, vec![entries[0].clone()]);
        assert_eq!(tail, LogTail::Truncated { at: group_at });
        // Flip a byte inside the group: same wholesale drop, reported
        // as corruption at the group's offset.
        let mut bytes = buf.to_vec();
        bytes[group_at + 9] ^= 0xFF;
        let (parsed, tail) = parse_log(&bytes);
        assert_eq!(parsed, vec![entries[0].clone()]);
        assert_eq!(tail, LogTail::Corrupt { at: group_at });
    }

    #[test]
    fn group_count_mismatch_is_corrupt() {
        let entries = sample_entries();
        let mut payload = BytesMut::new();
        payload.put_u32_le(7); // claims 7 members
        for e in &entries {
            encode_entry(&mut payload, e).unwrap();
        }
        let mut buf = BytesMut::new();
        super::put_frame(&mut buf, 5, &payload).unwrap();
        let (parsed, tail) = parse_log(&buf);
        assert!(parsed.is_empty());
        assert_eq!(tail, LogTail::Corrupt { at: 0 });
    }

    #[test]
    fn nested_group_is_rejected_not_recursed() {
        // The encoder never nests groups; a crafted log that does must
        // be reported corrupt, not drive unbounded parser recursion.
        let mut inner = BytesMut::new();
        encode_group(&mut inner, &[LogEntry::TxnBegin { id: 1 }]).unwrap();
        let mut payload = BytesMut::new();
        payload.put_u32_le(1);
        payload.put_slice(&inner);
        let mut buf = BytesMut::new();
        super::put_frame(&mut buf, 5, &payload).unwrap();
        let (parsed, tail) = parse_log(&buf);
        assert!(parsed.is_empty());
        assert_eq!(tail, LogTail::Corrupt { at: 0 });
    }

    #[test]
    fn truncation_reports_offset_of_partial_entry() {
        let entries = sample_entries();
        let mut buf = BytesMut::new();
        let mut boundaries = vec![0usize];
        for e in &entries {
            encode_entry(&mut buf, e).unwrap();
            boundaries.push(buf.len());
        }
        // Cut in the middle of the fourth entry.
        let cut = boundaries[3] + 3;
        let (parsed, tail) = parse_log(&buf[..cut]);
        assert_eq!(parsed.len(), 3);
        assert_eq!(tail, LogTail::Truncated { at: boundaries[3] });
    }

    #[test]
    fn corruption_is_detected_by_crc() {
        let mut buf = BytesMut::new();
        for e in sample_entries() {
            encode_entry(&mut buf, &e).unwrap();
        }
        let mut bytes = buf.to_vec();
        // Flip one payload byte of the first entry (past the header).
        bytes[7] ^= 0xFF;
        let (parsed, tail) = parse_log(&bytes);
        assert!(parsed.is_empty());
        assert_eq!(tail, LogTail::Corrupt { at: 0 });
    }

    #[test]
    fn crc32_known_value() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_log_is_clean() {
        let (entries, tail) = parse_log(&[]);
        assert!(entries.is_empty());
        assert_eq!(tail, LogTail::Clean);
    }

    #[test]
    fn entry_size_matches_encoding() {
        for e in sample_entries() {
            let mut buf = BytesMut::new();
            encode_entry(&mut buf, &e).unwrap();
            assert_eq!(buf.len(), entry_size(&e).unwrap());
        }
    }

    #[test]
    fn unrepresentable_record_leaves_buffer_untouched() {
        let bad = LogEntry::Prov {
            subject: subject(1),
            record: ProvenanceRecord::new(
                Attribute::Other("X".repeat(u16::MAX as usize + 1)),
                Value::Int(0),
            ),
        };
        let mut buf = BytesMut::new();
        encode_entry(&mut buf, &LogEntry::TxnBegin { id: 1 }).unwrap();
        let before = buf.len();
        assert!(encode_entry(&mut buf, &bad).is_err());
        assert_eq!(buf.len(), before, "failed encode must not emit bytes");
        assert!(encode_group(&mut buf, &[bad]).is_err());
        assert_eq!(buf.len(), before);
        let (parsed, tail) = parse_log(&buf);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(parsed.len(), 1);
    }
}
