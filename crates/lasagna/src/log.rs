//! The on-disk provenance log format.
//!
//! PASSv2 writes all provenance records to a log; Waldo later moves
//! them into the indexed database (paper §5.6). The log uses
//! transactional structures plus MD5 digests of data so that recovery
//! can identify exactly the data being written at the time of a
//! crash.
//!
//! Framing of each entry:
//!
//! ```text
//! entry := kind u8, len u32le, payload[len], crc32 u32le
//! ```
//!
//! The CRC covers the kind byte and the payload. A truncated or
//! corrupt tail terminates parsing and is reported to the recovery
//! machinery instead of being silently ignored.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dpapi::wire;
use dpapi::{DpapiError, ObjectRef, ProvenanceRecord, Result};

use crate::md5::Digest;

const KIND_PROV: u8 = 1;
const KIND_DATA: u8 = 2;
const KIND_TXN_BEGIN: u8 = 3;
const KIND_TXN_END: u8 = 4;

/// One entry of the provenance log.
#[derive(Clone, Debug, PartialEq)]
pub enum LogEntry {
    /// A provenance record describing `subject`.
    Prov {
        /// The object (at a specific version) the record describes.
        subject: ObjectRef,
        /// The record itself.
        record: ProvenanceRecord,
    },
    /// A data write, logged *before* the data reaches the file
    /// (write-ahead provenance). The digest lets recovery verify the
    /// on-disk bytes.
    DataWrite {
        /// The file written.
        subject: ObjectRef,
        /// Byte offset of the write.
        offset: u64,
        /// Length of the write.
        len: u32,
        /// MD5 of the written bytes.
        digest: Digest,
    },
    /// Start of a provenance transaction (PA-NFS chunked bundles).
    TxnBegin {
        /// Transaction id issued by the server volume.
        id: u64,
    },
    /// End of a provenance transaction.
    TxnEnd {
        /// Transaction id from the matching [`LogEntry::TxnBegin`].
        id: u64,
    },
}

/// CRC-32 (IEEE 802.3), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Appends `entry` to `buf` in wire framing.
pub fn encode_entry(buf: &mut BytesMut, entry: &LogEntry) {
    let mut payload = BytesMut::new();
    let kind = match entry {
        LogEntry::Prov { subject, record } => {
            wire::put_object_ref(&mut payload, *subject);
            wire::put_record(&mut payload, record);
            KIND_PROV
        }
        LogEntry::DataWrite {
            subject,
            offset,
            len,
            digest,
        } => {
            wire::put_object_ref(&mut payload, *subject);
            payload.put_u64_le(*offset);
            payload.put_u32_le(*len);
            payload.put_slice(digest);
            KIND_DATA
        }
        LogEntry::TxnBegin { id } => {
            payload.put_u64_le(*id);
            KIND_TXN_BEGIN
        }
        LogEntry::TxnEnd { id } => {
            payload.put_u64_le(*id);
            KIND_TXN_END
        }
    };
    buf.put_u8(kind);
    buf.put_u32_le(payload.len() as u32);
    let mut crc_input = Vec::with_capacity(1 + payload.len());
    crc_input.push(kind);
    crc_input.extend_from_slice(&payload);
    buf.put_slice(&payload);
    buf.put_u32_le(crc32(&crc_input));
}

/// Serialized size of an entry (header + payload + CRC).
pub fn entry_size(entry: &LogEntry) -> usize {
    let mut buf = BytesMut::new();
    encode_entry(&mut buf, entry);
    buf.len()
}

/// How parsing of a log image ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogTail {
    /// The log ended exactly at an entry boundary.
    Clean,
    /// The log ended mid-entry at the given byte offset — the classic
    /// crash-while-appending signature.
    Truncated {
        /// Offset of the first incomplete byte run.
        at: usize,
    },
    /// An entry failed its CRC at the given byte offset.
    Corrupt {
        /// Offset of the corrupt entry.
        at: usize,
    },
}

/// Parses a log image into entries plus a tail condition.
pub fn parse_log(data: &[u8]) -> (Vec<LogEntry>, LogTail) {
    let mut entries = Vec::new();
    let mut at = 0usize;
    while at < data.len() {
        let remaining = data.len() - at;
        if remaining < 5 {
            return (entries, LogTail::Truncated { at });
        }
        let kind = data[at];
        let len =
            u32::from_le_bytes([data[at + 1], data[at + 2], data[at + 3], data[at + 4]]) as usize;
        if remaining < 5 + len + 4 {
            return (entries, LogTail::Truncated { at });
        }
        let payload = &data[at + 5..at + 5 + len];
        let stored_crc = u32::from_le_bytes([
            data[at + 5 + len],
            data[at + 5 + len + 1],
            data[at + 5 + len + 2],
            data[at + 5 + len + 3],
        ]);
        let mut crc_input = Vec::with_capacity(1 + len);
        crc_input.push(kind);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != stored_crc {
            return (entries, LogTail::Corrupt { at });
        }
        match decode_payload(kind, payload) {
            Ok(e) => entries.push(e),
            Err(_) => return (entries, LogTail::Corrupt { at }),
        }
        at += 5 + len + 4;
    }
    (entries, LogTail::Clean)
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<LogEntry> {
    let mut buf = Bytes::copy_from_slice(payload);
    match kind {
        KIND_PROV => {
            let subject = wire::get_object_ref(&mut buf)?;
            let record = wire::get_record(&mut buf)?;
            Ok(LogEntry::Prov { subject, record })
        }
        KIND_DATA => {
            let subject = wire::get_object_ref(&mut buf)?;
            if buf.remaining() < 8 + 4 + 16 {
                return Err(DpapiError::Malformed("short data-write entry".into()));
            }
            let offset = buf.get_u64_le();
            let len = buf.get_u32_le();
            let mut digest = [0u8; 16];
            digest.copy_from_slice(&buf.split_to(16));
            Ok(LogEntry::DataWrite {
                subject,
                offset,
                len,
                digest,
            })
        }
        KIND_TXN_BEGIN => {
            if buf.remaining() < 8 {
                return Err(DpapiError::Malformed("short txn-begin".into()));
            }
            Ok(LogEntry::TxnBegin {
                id: buf.get_u64_le(),
            })
        }
        KIND_TXN_END => {
            if buf.remaining() < 8 {
                return Err(DpapiError::Malformed("short txn-end".into()));
            }
            Ok(LogEntry::TxnEnd {
                id: buf.get_u64_le(),
            })
        }
        other => Err(DpapiError::Malformed(format!("unknown log kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpapi::{Attribute, Pnode, Value, Version, VolumeId};

    fn subject(n: u64) -> ObjectRef {
        ObjectRef::new(Pnode::new(VolumeId(1), n), Version(2))
    }

    fn sample_entries() -> Vec<LogEntry> {
        vec![
            LogEntry::TxnBegin { id: 7 },
            LogEntry::Prov {
                subject: subject(1),
                record: ProvenanceRecord::new(Attribute::Name, Value::str("out.dat")),
            },
            LogEntry::Prov {
                subject: subject(1),
                record: ProvenanceRecord::input(subject(2)),
            },
            LogEntry::DataWrite {
                subject: subject(1),
                offset: 4096,
                len: 512,
                digest: crate::md5::md5(b"payload"),
            },
            LogEntry::TxnEnd { id: 7 },
        ]
    }

    #[test]
    fn roundtrip_all_entry_kinds() {
        let entries = sample_entries();
        let mut buf = BytesMut::new();
        for e in &entries {
            encode_entry(&mut buf, e);
        }
        let (parsed, tail) = parse_log(&buf);
        assert_eq!(tail, LogTail::Clean);
        assert_eq!(parsed, entries);
    }

    #[test]
    fn truncation_reports_offset_of_partial_entry() {
        let entries = sample_entries();
        let mut buf = BytesMut::new();
        let mut boundaries = vec![0usize];
        for e in &entries {
            encode_entry(&mut buf, e);
            boundaries.push(buf.len());
        }
        // Cut in the middle of the fourth entry.
        let cut = boundaries[3] + 3;
        let (parsed, tail) = parse_log(&buf[..cut]);
        assert_eq!(parsed.len(), 3);
        assert_eq!(tail, LogTail::Truncated { at: boundaries[3] });
    }

    #[test]
    fn corruption_is_detected_by_crc() {
        let mut buf = BytesMut::new();
        for e in sample_entries() {
            encode_entry(&mut buf, &e);
        }
        let mut bytes = buf.to_vec();
        // Flip one payload byte of the first entry (past the header).
        bytes[7] ^= 0xFF;
        let (parsed, tail) = parse_log(&bytes);
        assert!(parsed.is_empty());
        assert_eq!(tail, LogTail::Corrupt { at: 0 });
    }

    #[test]
    fn crc32_known_value() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_log_is_clean() {
        let (entries, tail) = parse_log(&[]);
        assert!(entries.is_empty());
        assert_eq!(tail, LogTail::Clean);
    }

    #[test]
    fn entry_size_matches_encoding() {
        for e in sample_entries() {
            let mut buf = BytesMut::new();
            encode_entry(&mut buf, &e);
            assert_eq!(buf.len(), entry_size(&e));
        }
    }
}
