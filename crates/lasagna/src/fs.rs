//! Lasagna: the stackable provenance-aware file system.
//!
//! Lasagna wraps a lower file system (the ext3 analogue) the way the
//! paper's implementation stacks on the eCryptfs code base. It
//! implements the regular VFS calls by delegation — charging the
//! double-buffering copy the paper measures — plus the DPAPI as
//! "inode and superblock operations": `pass_read`, `pass_write` and
//! `pass_freeze` per file, `pass_mkobj` and `pass_reviveobj` per
//! volume.
//!
//! All provenance is appended to a log stored in the hidden `.pass`
//! directory of the lower file system; write-ahead provenance (WAP)
//! appends the log entries *before* the data write they describe.
//! When the current log exceeds a parametrized size it is rotated,
//! and rotations are reported through
//! [`DpapiVolume::take_log_rotations`] for Waldo to ingest.

use std::collections::HashMap;

use bytes::BytesMut;
use dpapi::{
    wire, Bundle, Dpapi, DpapiError, DpapiOp, Handle, ObjectRef, OpResult, Pnode, PnodeAllocator,
    ProvenanceRecord, ReadResult, Txn, Value, Version, VolumeId, WriteResult,
};
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::{DirEntry, DpapiVolume, FileAttr, FileSystem, FsError, FsResult, FsUsage, Ino};

use crate::log::{encode_entry, encode_group, LogEntry};
use crate::md5::md5;

/// Tag bit of the transaction-id space Lasagna allocates for its own
/// disclosure-transaction groups: bit 63 set, the full 32-bit volume
/// id in bits 28..60, a 28-bit wrapping sequence below. PA-NFS
/// servers hand out small sequential ids for legacy chunked bundles
/// (tag bit clear), and no two volumes share any id, so batch markers
/// from different allocators can never collide inside one Waldo
/// store. (The sequence wraps after 2^28 batches per volume — by
/// which point the earlier transaction has long closed, so marker
/// buffering cannot confuse the two.)
const BATCH_TXN_TAG: u64 = 1 << 63;
const BATCH_SEQ_MASK: u64 = (1 << 28) - 1;

/// The volume-salted id of one disclosure-batch transaction: tag bit
/// 63 set, the volume id in bits 28..60, the per-volume sequence in
/// bits 0..28. The salt is what makes multi-daemon fan-in a routing
/// problem instead of a format problem: transaction ids from
/// different volumes can never alias, so stores built from distinct
/// volumes' logs merge without renumbering (`waldo::Store::merge`).
/// The cluster routing-stability proptests pin this layout.
pub fn batch_txn_id(volume: dpapi::VolumeId, seq: u64) -> u64 {
    BATCH_TXN_TAG | (u64::from(volume.0) << 28) | (seq & BATCH_SEQ_MASK)
}

/// Decomposes a transaction id minted by [`batch_txn_id`] back into
/// its `(volume, sequence)` parts; `None` for ids outside the
/// disclosure-batch space (tag bit clear — e.g. PA-NFS server ids).
/// Consumers use the volume salt to keep a per-volume replay
/// high-water mark: a batch whose sequence is at or below its
/// volume's mark has already committed, so re-seeing it is a replay
/// (a duplicated group frame), not new disclosure.
pub fn batch_txn_parts(id: u64) -> Option<(dpapi::VolumeId, u64)> {
    if id & BATCH_TXN_TAG == 0 {
        return None;
    }
    let volume = dpapi::VolumeId(((id & !BATCH_TXN_TAG) >> 28) as u32);
    Some((volume, id & BATCH_SEQ_MASK))
}

/// Name of the hidden provenance directory on the lower file system.
pub const PASS_DIR: &str = ".pass";

/// The attribute used to persist the pnode→inode binding in the log,
/// so recovery can re-associate provenance with file contents.
pub fn ino_attribute() -> dpapi::Attribute {
    dpapi::Attribute::Other("INO".to_string())
}

/// Configuration for a Lasagna volume.
#[derive(Clone, Copy, Debug)]
pub struct LasagnaConfig {
    /// This volume's identity.
    pub volume: VolumeId,
    /// Rotate the log once it exceeds this many bytes.
    pub log_max_bytes: u64,
    /// Buffer log entries in memory up to this size before appending
    /// to the log file.
    pub log_buf_bytes: usize,
    /// Bytes of database I/O the live Waldo daemon performs per byte
    /// of provenance log (the paper's Table 3 shows database plus
    /// indexes at roughly 2.7x the raw record volume for the
    /// record-heavy workloads).
    pub waldo_db_factor: f64,
    /// One seek charged per this many database blocks written,
    /// modelling index-update head movement.
    pub waldo_db_seek_every: u64,
}

impl LasagnaConfig {
    /// A default configuration for volume `v`.
    pub fn new(v: VolumeId) -> Self {
        LasagnaConfig {
            volume: v,
            log_max_bytes: 1 << 20, // 1 MB
            log_buf_bytes: 64 << 10,
            waldo_db_factor: 2.0,
            waldo_db_seek_every: 4,
        }
    }
}

/// Counters for one Lasagna volume.
#[derive(Clone, Copy, Debug, Default)]
pub struct LasagnaStats {
    /// Provenance records logged.
    pub records_logged: u64,
    /// Data writes logged with digests.
    pub data_writes: u64,
    /// Version bumps performed.
    pub freezes: u64,
    /// Log rotations.
    pub rotations: u64,
    /// Total provenance bytes ever appended.
    pub provenance_bytes: u64,
    /// Multi-op disclosure transactions committed (each framed as one
    /// group record in the log).
    pub batch_commits: u64,
    /// Operations carried by those transactions.
    pub batched_ops: u64,
}

impl provscope::MetricSource for LasagnaStats {
    fn record(&self, out: &mut dyn FnMut(&str, u64)) {
        out("records_logged", self.records_logged);
        out("data_writes", self.data_writes);
        out("freezes", self.freezes);
        out("rotations", self.rotations);
        out("provenance_bytes", self.provenance_bytes);
        out("batch_commits", self.batch_commits);
        out("batched_ops", self.batched_ops);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Obj {
    File(Ino),
    App(Pnode),
}

/// The Lasagna file system.
pub struct Lasagna {
    lower: Box<dyn FileSystem>,
    cfg: LasagnaConfig,
    clock: Clock,
    model: CostModel,
    alloc: PnodeAllocator,

    pnode_of_ino: HashMap<u64, Pnode>,
    ino_of_pnode: HashMap<u64, Ino>,
    versions: HashMap<u64, Version>, // pnode number -> version
    app_objects: HashMap<u64, Version>,

    handles: HashMap<u64, Obj>,
    handle_of_ino: HashMap<u64, Handle>,
    next_handle: u64,

    log_dir: Ino,
    log_file: Ino,
    log_index: u64,
    log_written: u64,
    log_buf: BytesMut,
    rotated: Vec<String>,
    db_debt: f64,
    next_batch: u64,

    stats: LasagnaStats,
    scope: provscope::Scope,
}

impl Lasagna {
    /// Stacks a new Lasagna volume over `lower`.
    ///
    /// `clock` and `model` must be the same clock/cost model the lower
    /// file system charges, so stacking costs accumulate on one
    /// timeline.
    pub fn new(
        mut lower: Box<dyn FileSystem>,
        clock: Clock,
        model: CostModel,
        cfg: LasagnaConfig,
    ) -> FsResult<Lasagna> {
        let root = lower.root();
        let log_dir = match lower.lookup(root, PASS_DIR) {
            Ok(ino) => ino,
            Err(FsError::NotFound(_)) => lower.mkdir(root, PASS_DIR)?,
            Err(e) => return Err(e),
        };
        let log_file = lower.create(log_dir, "log.0")?;
        Ok(Lasagna {
            lower,
            cfg,
            clock,
            model,
            alloc: PnodeAllocator::new(cfg.volume),
            pnode_of_ino: HashMap::new(),
            ino_of_pnode: HashMap::new(),
            versions: HashMap::new(),
            app_objects: HashMap::new(),
            handles: HashMap::new(),
            handle_of_ino: HashMap::new(),
            next_handle: 1,
            log_dir,
            log_file,
            log_index: 0,
            log_written: 0,
            log_buf: BytesMut::new(),
            rotated: Vec::new(),
            db_debt: 0.0,
            next_batch: 0,
            stats: LasagnaStats::default(),
            scope: provscope::Scope::default(),
        })
    }

    /// Volume statistics.
    pub fn stats(&self) -> LasagnaStats {
        self.stats
    }

    /// Read access to the lower file system (tests, recovery).
    pub fn lower_mut(&mut self) -> &mut dyn FileSystem {
        &mut *self.lower
    }

    // ---- identity ---------------------------------------------------------

    fn pnode_for_ino(&mut self, ino: Ino) -> Pnode {
        if let Some(p) = self.pnode_of_ino.get(&ino.0) {
            return *p;
        }
        let p = self.alloc.allocate();
        self.pnode_of_ino.insert(ino.0, p);
        self.ino_of_pnode.insert(p.number, ino);
        self.versions.insert(p.number, Version::INITIAL);
        // Persist the binding so recovery can find the file again.
        let rec = ProvenanceRecord::new(ino_attribute(), Value::Int(ino.0 as i64));
        self.append_entry(&LogEntry::Prov {
            subject: ObjectRef::new(p, Version::INITIAL),
            record: rec,
        });
        p
    }

    fn version_of(&self, p: Pnode) -> Version {
        self.versions
            .get(&p.number)
            .or_else(|| self.app_objects.get(&p.number))
            .copied()
            .unwrap_or(Version::INITIAL)
    }

    fn bump_version(&mut self, p: Pnode) -> Version {
        let v = self
            .versions
            .get_mut(&p.number)
            .or_else(|| self.app_objects.get_mut(&p.number));
        match v {
            Some(v) => {
                *v = v.next();
                self.stats.freezes += 1;
                *v
            }
            None => Version::INITIAL,
        }
    }

    fn resolve(&self, h: Handle) -> dpapi::Result<Obj> {
        self.handles
            .get(&h.raw())
            .copied()
            .ok_or(DpapiError::InvalidHandle)
    }

    fn object_ref(&mut self, obj: Obj) -> ObjectRef {
        match obj {
            Obj::File(ino) => {
                let p = self.pnode_for_ino(ino);
                ObjectRef::new(p, self.version_of(p))
            }
            Obj::App(p) => ObjectRef::new(p, self.version_of(p)),
        }
    }

    fn new_handle(&mut self, obj: Obj) -> Handle {
        let h = Handle::from_raw(self.next_handle);
        self.next_handle += 1;
        self.handles.insert(h.raw(), obj);
        h
    }

    // ---- the log ------------------------------------------------------------

    fn count_entry(&mut self, entry: &LogEntry) {
        match entry {
            LogEntry::DataWrite { .. } => self.stats.data_writes += 1,
            LogEntry::Prov { .. } => self.stats.records_logged += 1,
            _ => {}
        }
    }

    fn append_entry(&mut self, entry: &LogEntry) {
        let before = self.log_buf.len();
        // Entries reaching the log are pre-validated (bundles go
        // through `wire::validate_record` at commit validation) or
        // fixed-shape (INO bindings, data writes, txn markers), so
        // encoding cannot fail; `encode_entry` leaves the buffer
        // untouched on error, so even a bypassing caller cannot tear
        // the frame stream.
        if encode_entry(&mut self.log_buf, entry).is_err() {
            debug_assert!(false, "unvalidated entry reached append_entry");
            return;
        }
        let added = (self.log_buf.len() - before) as u64;
        self.stats.provenance_bytes += added;
        self.count_entry(entry);
        if self.log_buf.len() >= self.cfg.log_buf_bytes {
            self.flush_log_buf();
        }
    }

    /// Appends a disclosure transaction's entries as one group frame —
    /// the single length-prefixed record run that makes the batch
    /// atomic in the log (a torn tail drops it wholesale).
    fn append_group(&mut self, entries: &[LogEntry]) -> dpapi::Result<()> {
        let before = self.log_buf.len();
        encode_group(&mut self.log_buf, entries)?;
        let added = (self.log_buf.len() - before) as u64;
        self.stats.provenance_bytes += added;
        for e in entries {
            self.count_entry(e);
        }
        if self.log_buf.len() >= self.cfg.log_buf_bytes {
            self.flush_log_buf();
        }
        Ok(())
    }

    fn alloc_batch_id(&mut self) -> u64 {
        self.next_batch = (self.next_batch + 1) & BATCH_SEQ_MASK;
        batch_txn_id(self.cfg.volume, self.next_batch)
    }

    fn flush_log_buf(&mut self) {
        if self.log_buf.is_empty() {
            return;
        }
        let buf = std::mem::take(&mut self.log_buf);
        // Charge the copy into the lower layer's cache; the lower
        // write charges its own costs.
        self.clock.advance(self.model.copy_cost(buf.len()));
        let _ = self.lower.write(self.log_file, self.log_written, &buf);
        self.log_written += buf.len() as u64;
        // The live Waldo daemon consumes the log concurrently and
        // writes the indexed database on the same disk. Accumulate a
        // byte debt and charge it in bursts (Waldo batches inserts),
        // as transfer time plus periodic index-update seeks.
        self.db_debt += buf.len() as f64 * self.cfg.waldo_db_factor;
        const DB_BURST: f64 = 262_144.0; // 256 KB
        if self.db_debt >= DB_BURST {
            let db_bytes = self.db_debt as u64;
            self.db_debt = 0.0;
            let db_blocks = db_bytes.div_ceil(4096).max(1);
            let seeks = db_blocks.div_ceil(self.cfg.waldo_db_seek_every.max(1));
            let d = self.model.disk;
            self.clock
                .advance(db_blocks * d.per_block_ns + seeks * (d.seek_ns + d.rotational_ns));
        }
        if self.log_written >= self.cfg.log_max_bytes {
            self.rotate_log();
        }
    }

    fn current_log_name(&self) -> String {
        format!("log.{}", self.log_index)
    }

    fn rotate_log(&mut self) {
        let closed = format!("{PASS_DIR}/{}", self.current_log_name());
        self.rotated.push(closed);
        self.stats.rotations += 1;
        self.log_index += 1;
        let name = self.current_log_name();
        match self.lower.create(self.log_dir, &name) {
            Ok(ino) => {
                self.log_file = ino;
                self.log_written = 0;
            }
            Err(_) => {
                // Reuse the existing file if it survived a crash.
                if let Ok(ino) = self.lower.lookup(self.log_dir, &name) {
                    self.log_file = ino;
                    self.log_written = 0;
                }
            }
        }
    }

    /// Translates a bundle into log entries (pushed onto `out`),
    /// processing FREEZE records in-order (the PA-NFS requirement that
    /// freezes be records, not operations, so ordering with writes is
    /// preserved).
    fn bundle_entries(&mut self, bundle: &Bundle, out: &mut Vec<LogEntry>) -> dpapi::Result<()> {
        for (h, rec) in bundle.iter() {
            // Transaction markers from PA-NFS become first-class log
            // entries so Waldo can buffer chunked bundles and recovery
            // can garbage-collect orphans.
            if rec.attribute == dpapi::Attribute::BeginTxn {
                if let Some(id) = rec.value.as_int() {
                    out.push(LogEntry::TxnBegin { id: id as u64 });
                    continue;
                }
            }
            if rec.attribute == dpapi::Attribute::EndTxn {
                if let Some(id) = rec.value.as_int() {
                    out.push(LogEntry::TxnEnd { id: id as u64 });
                    continue;
                }
            }
            let obj = self.resolve(h)?;
            let subject = self.object_ref(obj);
            out.push(LogEntry::Prov {
                subject,
                record: rec.clone(),
            });
            if rec.attribute == dpapi::Attribute::Freeze {
                match obj {
                    Obj::File(ino) => {
                        let p = self.pnode_for_ino(ino);
                        self.bump_version(p);
                    }
                    Obj::App(p) => {
                        self.bump_version(p);
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks a bundle's records against current state without
    /// producing any effect: every record must be wire-representable
    /// and every non-marker subject handle must resolve. Shared by
    /// `validate_op` and the zero-copy `pass_write` override so the
    /// two paths cannot drift.
    fn validate_bundle(&self, bundle: &Bundle) -> dpapi::Result<()> {
        for (h, rec) in bundle.iter() {
            wire::validate_record(rec)?;
            let is_marker = matches!(
                rec.attribute,
                dpapi::Attribute::BeginTxn | dpapi::Attribute::EndTxn
            ) && rec.value.as_int().is_some();
            if !is_marker {
                self.resolve(h)?;
            }
        }
        Ok(())
    }

    /// Checks one transaction op against current state without
    /// producing any effect — the atomicity guarantee of
    /// [`Dpapi::pass_commit`]: nothing is logged or written unless the
    /// whole batch validates.
    fn validate_op(&self, op: &DpapiOp) -> dpapi::Result<()> {
        match op {
            DpapiOp::Write { handle, bundle, .. } => {
                self.resolve(*handle)?;
                self.validate_bundle(bundle)
            }
            DpapiOp::Mkobj { .. } => Ok(()),
            DpapiOp::Freeze { handle } | DpapiOp::Sync { handle } => {
                self.resolve(*handle).map(|_| ())
            }
            DpapiOp::Revive { pnode, version } => {
                if pnode.volume != self.cfg.volume {
                    return Err(DpapiError::UnknownPnode(*pnode));
                }
                if let Some(cur) = self.app_objects.get(&pnode.number) {
                    if *version > *cur {
                        return Err(DpapiError::UnknownVersion(*pnode, *version));
                    }
                    return Ok(());
                }
                if self.ino_of_pnode.contains_key(&pnode.number) {
                    return Ok(());
                }
                Err(DpapiError::UnknownPnode(*pnode))
            }
        }
    }

    /// Applies one validated op: pushes its log entries onto `out`,
    /// queues its data write, and returns its result. State mutations
    /// (version bumps, pnode allocation) happen in op order so
    /// identities reflect everything earlier in the batch.
    fn apply_op(
        &mut self,
        op: DpapiOp,
        out: &mut Vec<LogEntry>,
        data_writes: &mut Vec<(Ino, u64, Vec<u8>)>,
        wants_sync: &mut bool,
    ) -> dpapi::Result<OpResult> {
        match op {
            DpapiOp::Write {
                handle,
                offset,
                data,
                bundle,
            } => {
                let obj = self.resolve(handle)?;
                // Write-ahead provenance: the bundle and the data
                // digest reach the log before the data reaches the
                // file (data writes are applied after the whole
                // batch's entries are logged).
                self.bundle_entries(&bundle, out)?;
                let identity = self.object_ref(obj);
                let written = data.len();
                if !data.is_empty() {
                    if let Obj::File(ino) = obj {
                        out.push(LogEntry::DataWrite {
                            subject: identity,
                            offset,
                            len: data.len() as u32,
                            digest: md5(&data),
                        });
                        data_writes.push((ino, offset, data));
                    }
                }
                Ok(OpResult::Written(WriteResult { written, identity }))
            }
            DpapiOp::Mkobj { .. } => {
                let p = self.alloc.allocate();
                self.app_objects.insert(p.number, Version::INITIAL);
                Ok(OpResult::Made(self.new_handle(Obj::App(p))))
            }
            DpapiOp::Freeze { handle } => {
                let obj = self.resolve(handle)?;
                let subject = self.object_ref(obj);
                let new_version = subject.version.next();
                out.push(LogEntry::Prov {
                    subject,
                    record: ProvenanceRecord::freeze(new_version),
                });
                Ok(OpResult::Frozen(self.bump_version(subject.pnode)))
            }
            DpapiOp::Revive { pnode, version } => {
                if pnode.volume != self.cfg.volume {
                    return Err(DpapiError::UnknownPnode(pnode));
                }
                if let Some(cur) = self.app_objects.get(&pnode.number) {
                    if version > *cur {
                        return Err(DpapiError::UnknownVersion(pnode, version));
                    }
                    return Ok(OpResult::Revived(self.new_handle(Obj::App(pnode))));
                }
                if let Some(ino) = self.ino_of_pnode.get(&pnode.number).copied() {
                    return Ok(OpResult::Revived(self.new_handle(Obj::File(ino))));
                }
                Err(DpapiError::UnknownPnode(pnode))
            }
            DpapiOp::Sync { handle } => {
                self.resolve(handle)?;
                *wants_sync = true;
                Ok(OpResult::Synced)
            }
        }
    }
}

impl Dpapi for Lasagna {
    fn pass_read(&mut self, h: Handle, offset: u64, len: usize) -> dpapi::Result<ReadResult> {
        let obj = self.resolve(h)?;
        match obj {
            Obj::File(ino) => {
                let data = self
                    .lower
                    .read(ino, offset, len)
                    .map_err(DpapiError::from)?;
                // Double buffering: the stackable layer copies pages.
                self.clock.advance(self.model.copy_cost(data.len()));
                let identity = self.object_ref(obj);
                Ok(ReadResult { data, identity })
            }
            Obj::App(_) => Ok(ReadResult {
                data: Vec::new(),
                identity: self.object_ref(obj),
            }),
        }
    }

    /// Zero-copy override of the one-op default: this is the hottest
    /// path in the system (every intercepted OS write on a PASS
    /// volume lands here), so it logs and writes from the borrowed
    /// slice instead of cloning the data into a one-op [`Txn`].
    /// Semantics are identical to `pass_commit` of a single write —
    /// validate first (nothing logged on failure), log bundle then
    /// WAP digest, flush, write data.
    fn pass_write(
        &mut self,
        h: Handle,
        offset: u64,
        data: &[u8],
        bundle: Bundle,
    ) -> dpapi::Result<WriteResult> {
        let obj = self.resolve(h)?;
        self.validate_bundle(&bundle)?;
        let mut entries: Vec<LogEntry> = Vec::new();
        self.bundle_entries(&bundle, &mut entries)?;
        let identity = self.object_ref(obj);
        let mut file_write = None;
        if !data.is_empty() {
            if let Obj::File(ino) = obj {
                entries.push(LogEntry::DataWrite {
                    subject: identity,
                    offset,
                    len: data.len() as u32,
                    digest: md5(data),
                });
                file_write = Some(ino);
            }
        }
        for e in &entries {
            self.append_entry(e);
        }
        if let Some(ino) = file_write {
            self.flush_log_buf();
            self.clock.advance(self.model.copy_cost(data.len()));
            self.lower
                .write(ino, offset, data)
                .map_err(DpapiError::from)?;
        }
        Ok(WriteResult {
            written: data.len(),
            identity,
        })
    }

    /// Commits a disclosure transaction against the volume.
    ///
    /// The whole batch is validated first (nothing is logged or
    /// written on a validation failure — the abort names the failing
    /// op). A multi-op batch's provenance is then framed as **one
    /// group record** in the log ([`encode_group`]), bracketed by
    /// transaction markers so Waldo applies the members as one unit;
    /// a single-op commit logs plainly, byte-identical to the classic
    /// single-shot calls. Data writes follow write-ahead provenance:
    /// every log entry of the batch lands before any data byte.
    fn pass_commit(&mut self, txn: Txn) -> dpapi::Result<Vec<OpResult>> {
        let span = self.scope.open("lasagna", "pass_commit");
        let r = self.pass_commit_inner(txn);
        self.scope.close(span);
        r
    }

    fn pass_close(&mut self, h: Handle) -> dpapi::Result<()> {
        let obj = self.resolve(h)?;
        self.handles.remove(&h.raw());
        if let Obj::File(ino) = obj {
            if self.handle_of_ino.get(&ino.0) == Some(&h) {
                self.handle_of_ino.remove(&ino.0);
            }
        }
        Ok(())
    }
}

impl Lasagna {
    fn pass_commit_inner(&mut self, txn: Txn) -> dpapi::Result<Vec<OpResult>> {
        let ops = txn.into_ops();
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        for (i, op) in ops.iter().enumerate() {
            self.validate_op(op)
                .map_err(|e| DpapiError::aborted_at(i, e))?;
        }
        let batched = ops.len() > 1;
        let mut entries: Vec<LogEntry> = Vec::new();
        let mut data_writes: Vec<(Ino, u64, Vec<u8>)> = Vec::new();
        let mut wants_sync = false;
        let mut results = Vec::with_capacity(ops.len());
        for (i, op) in ops.into_iter().enumerate() {
            let r = self
                .apply_op(op, &mut entries, &mut data_writes, &mut wants_sync)
                .map_err(|e| DpapiError::aborted_at(i, e))?;
            results.push(r);
        }
        if batched && !entries.is_empty() {
            let id = self.alloc_batch_id();
            // The batch id is the transaction's identity across
            // layers: bind the open trace window to it so the span
            // tree and the asynchronous Waldo ingest of this group
            // frame share one trace.
            self.scope.bind_trace(provscope::TraceId(id));
            let mut group = Vec::with_capacity(entries.len() + 2);
            group.push(LogEntry::TxnBegin { id });
            group.append(&mut entries);
            group.push(LogEntry::TxnEnd { id });
            self.append_group(&group)?;
        } else {
            for e in &entries {
                self.append_entry(e);
            }
        }
        if batched {
            self.stats.batch_commits += 1;
            self.stats.batched_ops += results.len() as u64;
        }
        if !data_writes.is_empty() {
            self.flush_log_buf();
        }
        for (ino, offset, data) in data_writes {
            self.clock.advance(self.model.copy_cost(data.len()));
            self.lower
                .write(ino, offset, &data)
                .map_err(DpapiError::from)?;
        }
        if wants_sync {
            self.flush_log_buf();
            self.lower.fsync(self.log_file).map_err(DpapiError::from)?;
        }
        Ok(results)
    }
}

impl DpapiVolume for Lasagna {
    fn volume(&self) -> VolumeId {
        self.cfg.volume
    }

    fn handle_for_ino(&mut self, ino: Ino) -> dpapi::Result<Handle> {
        if let Some(h) = self.handle_of_ino.get(&ino.0) {
            return Ok(*h);
        }
        let h = self.new_handle(Obj::File(ino));
        self.handle_of_ino.insert(ino.0, h);
        Ok(h)
    }

    fn identity_of_ino(&mut self, ino: Ino) -> dpapi::Result<ObjectRef> {
        let p = self.pnode_for_ino(ino);
        Ok(ObjectRef::new(p, self.version_of(p)))
    }

    fn take_log_rotations(&mut self) -> Vec<String> {
        std::mem::take(&mut self.rotated)
    }

    fn force_log_rotation(&mut self) {
        self.flush_log_buf();
        if self.log_written > 0 {
            self.rotate_log();
        }
    }

    fn set_scope(&mut self, scope: provscope::Scope) {
        self.scope = scope;
    }
}

impl FileSystem for Lasagna {
    fn root(&self) -> Ino {
        self.lower.root()
    }

    fn lookup(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        self.lower.lookup(dir, name)
    }

    fn create(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        let ino = self.lower.create(dir, name)?;
        // Assign identity eagerly: creation is a provenance event.
        let _ = self.pnode_for_ino(ino);
        Ok(ino)
    }

    fn mkdir(&mut self, dir: Ino, name: &str) -> FsResult<Ino> {
        self.lower.mkdir(dir, name)
    }

    fn unlink(&mut self, dir: Ino, name: &str) -> FsResult<()> {
        // Provenance survives the object: pnodes are never recycled,
        // so the log and database keep describing the dead file.
        let ino = self.lower.lookup(dir, name)?;
        self.lower.unlink(dir, name)?;
        if let Some(p) = self.pnode_of_ino.remove(&ino.0) {
            self.ino_of_pnode.remove(&p.number);
        }
        self.handle_of_ino.remove(&ino.0);
        Ok(())
    }

    fn rename(&mut self, from: Ino, name: &str, to: Ino, to_name: &str) -> FsResult<()> {
        // If the target exists it is replaced; clean its identity map.
        if let Ok(victim) = self.lower.lookup(to, to_name) {
            if let Some(p) = self.pnode_of_ino.remove(&victim.0) {
                self.ino_of_pnode.remove(&p.number);
            }
        }
        // The renamed file keeps its inode, hence its pnode: this is
        // what keeps provenance attached across renames (§3.2).
        self.lower.rename(from, name, to, to_name)
    }

    fn read(&mut self, ino: Ino, offset: u64, len: usize) -> FsResult<Vec<u8>> {
        let data = self.lower.read(ino, offset, len)?;
        self.clock.advance(self.model.copy_cost(data.len()));
        Ok(data)
    }

    fn write(&mut self, ino: Ino, offset: u64, data: &[u8]) -> FsResult<usize> {
        // Route plain writes through the DPAPI path with an empty
        // bundle so WAP digests still cover them.
        let h = self.handle_for_ino(ino)?;
        let res = self.pass_write(h, offset, data, Bundle::new())?;
        Ok(res.written)
    }

    fn truncate(&mut self, ino: Ino, size: u64) -> FsResult<()> {
        self.lower.truncate(ino, size)
    }

    fn getattr(&mut self, ino: Ino) -> FsResult<FileAttr> {
        self.lower.getattr(ino)
    }

    fn readdir(&mut self, dir: Ino) -> FsResult<Vec<DirEntry>> {
        let mut entries = self.lower.readdir(dir)?;
        if dir == self.lower.root() {
            entries.retain(|e| e.name != PASS_DIR);
        }
        Ok(entries)
    }

    fn sync(&mut self) -> FsResult<()> {
        self.flush_log_buf();
        self.lower.sync()
    }

    fn fsync(&mut self, ino: Ino) -> FsResult<()> {
        // WAP needs the log *ordered* before the data, not synchronous:
        // push buffered entries into the lower page cache (the elevator
        // writes the log region first within a batch), then flush the
        // file itself.
        self.flush_log_buf();
        self.lower.fsync(ino)
    }

    fn usage(&self) -> FsUsage {
        let lower = self.lower.usage();
        // Live log bytes: whatever has been appended to logs that have
        // not been consumed; approximate with current log + buffered.
        let provenance = self.log_written + self.log_buf.len() as u64;
        FsUsage {
            data_bytes: lower.data_bytes.saturating_sub(provenance),
            meta_bytes: lower.meta_bytes,
            provenance_bytes: provenance,
        }
    }

    fn as_dpapi(&mut self) -> Option<&mut dyn DpapiVolume> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{parse_log, LogTail};
    use dpapi::Attribute;
    use sim_os::fs::basefs::BaseFs;

    fn volume() -> Lasagna {
        let clock = Clock::new();
        let model = CostModel::default();
        let lower = BaseFs::new(clock.clone(), model);
        Lasagna::new(
            Box::new(lower),
            clock,
            model,
            LasagnaConfig::new(VolumeId(1)),
        )
        .unwrap()
    }

    fn read_log(v: &mut Lasagna) -> Vec<LogEntry> {
        v.flush_log_buf();
        let mut out = Vec::new();
        let root = v.lower.root();
        let dir = v.lower.lookup(root, PASS_DIR).unwrap();
        let logs = v.lower.readdir(dir).unwrap();
        for l in logs {
            let size = v.lower.getattr(l.ino).unwrap().size as usize;
            let bytes = v.lower.read(l.ino, 0, size).unwrap();
            let (entries, tail) = parse_log(&bytes);
            assert_eq!(tail, LogTail::Clean);
            out.extend(entries);
        }
        out
    }

    #[test]
    fn create_assigns_stable_pnode() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let id1 = v.identity_of_ino(ino).unwrap();
        let id2 = v.identity_of_ino(ino).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(id1.pnode.volume, VolumeId(1));
        assert_eq!(id1.version, Version::INITIAL);
    }

    #[test]
    fn pass_write_logs_wap_digest_before_data() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "out").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        v.pass_write(h, 0, b"payload", Bundle::new()).unwrap();
        let entries = read_log(&mut v);
        let dw = entries
            .iter()
            .find_map(|e| match e {
                LogEntry::DataWrite { digest, len, .. } => Some((*digest, *len)),
                _ => None,
            })
            .expect("DataWrite entry missing");
        assert_eq!(dw.0, md5(b"payload"));
        assert_eq!(dw.1, 7);
        // And the data itself is readable.
        assert_eq!(v.read(ino, 0, 7).unwrap(), b"payload");
    }

    #[test]
    fn bundle_records_reach_the_log_with_subjects() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "out").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        let mut b = Bundle::new();
        b.push(h, ProvenanceRecord::new(Attribute::Name, Value::str("out")));
        v.pass_write(h, 0, b"x", b).unwrap();
        let entries = read_log(&mut v);
        let id = v.identity_of_ino(ino).unwrap();
        assert!(entries.iter().any(|e| matches!(
            e,
            LogEntry::Prov { subject, record }
                if *subject == id && record.attribute == Attribute::Name
        )));
    }

    #[test]
    fn freeze_bumps_version_and_read_sees_it() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        assert_eq!(v.pass_freeze(h).unwrap(), Version(1));
        assert_eq!(v.pass_freeze(h).unwrap(), Version(2));
        let r = v.pass_read(h, 0, 0).unwrap();
        assert_eq!(r.identity.version, Version(2));
    }

    #[test]
    fn freeze_record_in_bundle_bumps_version_in_order() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        let mut b = Bundle::new();
        b.push(h, ProvenanceRecord::freeze(Version(1)));
        let w = v.pass_write(h, 0, b"data", b).unwrap();
        // The write happened at the *new* version.
        assert_eq!(w.identity.version, Version(1));
    }

    #[test]
    fn mkobj_and_reviveobj_roundtrip() {
        let mut v = volume();
        let h = v.pass_mkobj(None).unwrap();
        let id = v.pass_read(h, 0, 0).unwrap().identity;
        v.pass_close(h).unwrap();
        let h2 = v.pass_reviveobj(id.pnode, id.version).unwrap();
        let id2 = v.pass_read(h2, 0, 0).unwrap().identity;
        assert_eq!(id.pnode, id2.pnode);
        // Unknown pnodes are rejected.
        let bogus = Pnode::new(VolumeId(1), 99_999);
        assert!(matches!(
            v.pass_reviveobj(bogus, Version(0)),
            Err(DpapiError::UnknownPnode(_))
        ));
        // Wrong volume is rejected.
        let foreign = Pnode::new(VolumeId(9), 1);
        assert!(v.pass_reviveobj(foreign, Version(0)).is_err());
    }

    #[test]
    fn rename_preserves_identity_attribution_use_case() {
        // §3.2: the professor renames a downloaded file; PASSv2 keeps
        // file and provenance connected.
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "download.gif").unwrap();
        let before = v.identity_of_ino(ino).unwrap();
        v.rename(root, "download.gif", root, "figure1.gif").unwrap();
        let after = v.identity_of_ino(ino).unwrap();
        assert_eq!(before.pnode, after.pnode);
    }

    #[test]
    fn log_rotation_reports_closed_logs() {
        let clock = Clock::new();
        let model = CostModel::default();
        let lower = BaseFs::new(clock.clone(), model);
        let mut cfg = LasagnaConfig::new(VolumeId(1));
        cfg.log_max_bytes = 256; // tiny, to force rotations
        cfg.log_buf_bytes = 64;
        let mut v = Lasagna::new(Box::new(lower), clock, model, cfg).unwrap();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        for i in 0..20 {
            v.pass_write(h, i * 8, b"01234567", Bundle::new()).unwrap();
        }
        let rotations = v.take_log_rotations();
        assert!(
            rotations.len() >= 2,
            "expected several rotations, got {rotations:?}"
        );
        assert!(rotations[0].starts_with(".pass/log."));
        // Drained: second call is empty.
        assert!(v.take_log_rotations().is_empty());
    }

    #[test]
    fn force_rotation_flushes_pending_provenance() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        v.pass_write(h, 0, b"data", Bundle::new()).unwrap();
        v.force_log_rotation();
        let logs = v.take_log_rotations();
        assert_eq!(logs, vec![".pass/log.0".to_string()]);
    }

    #[test]
    fn pass_dir_hidden_from_root_readdir() {
        let mut v = volume();
        let root = v.root();
        v.create(root, "visible").unwrap();
        let names: Vec<String> = v
            .readdir(root)
            .unwrap()
            .into_iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(names, vec!["visible"]);
        // But still reachable by lookup (Waldo reads logs through it).
        assert!(v.lookup(root, PASS_DIR).is_ok());
    }

    #[test]
    fn usage_separates_provenance_from_data() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        v.pass_write(h, 0, &vec![7u8; 10_000], Bundle::new())
            .unwrap();
        v.sync().unwrap();
        let u = v.usage();
        assert_eq!(u.data_bytes, 10_000);
        assert!(u.provenance_bytes > 0);
    }

    #[test]
    fn stats_count_records_and_writes() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        let mut b = Bundle::new();
        b.push(
            h,
            ProvenanceRecord::new(Attribute::Type, Value::str("FILE")),
        );
        v.pass_write(h, 0, b"z", b).unwrap();
        let s = v.stats();
        assert_eq!(s.data_writes, 1);
        // INO binding record + TYPE record.
        assert_eq!(s.records_logged, 2);
        assert!(s.provenance_bytes > 0);
    }

    fn raw_log(v: &mut Lasagna) -> Vec<u8> {
        v.flush_log_buf();
        let mut out = Vec::new();
        let root = v.lower.root();
        let dir = v.lower.lookup(root, PASS_DIR).unwrap();
        let logs = v.lower.readdir(dir).unwrap();
        for l in logs {
            let size = v.lower.getattr(l.ino).unwrap().size as usize;
            out.extend(v.lower.read(l.ino, 0, size).unwrap());
        }
        out
    }

    #[test]
    fn batch_commit_frames_one_group_with_txn_markers() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        let mut b = Bundle::new();
        b.push(h, ProvenanceRecord::new(Attribute::Name, Value::str("f")));
        let mut txn = dpapi::Txn::new();
        txn.write(h, 0, b"payload".to_vec(), b).freeze(h).sync(h);
        let results = v.pass_commit(txn).unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_written().unwrap().written, 7);
        assert_eq!(results[1].as_version(), Some(Version(1)));
        let s = v.stats();
        assert_eq!(s.batch_commits, 1);
        assert_eq!(s.batched_ops, 3);
        // On disk: exactly one group frame, whose members are wrapped
        // in matching transaction markers from the batch id space.
        let bytes = raw_log(&mut v);
        assert_eq!(crate::log::group_count(&bytes), 1);
        let (entries, tail) = parse_log(&bytes);
        assert_eq!(tail, LogTail::Clean);
        let begin = entries
            .iter()
            .position(|e| matches!(e, LogEntry::TxnBegin { id } if *id & super::BATCH_TXN_TAG != 0))
            .expect("batch TxnBegin in log");
        let end = entries
            .iter()
            .position(|e| matches!(e, LogEntry::TxnEnd { id } if *id & super::BATCH_TXN_TAG != 0))
            .expect("batch TxnEnd in log");
        assert!(begin < end, "markers bracket the batch");
        // The data write's WAP digest is one of the bracketed members.
        assert!(entries[begin..end]
            .iter()
            .any(|e| matches!(e, LogEntry::DataWrite { len: 7, .. })));
        // And the data itself landed after the log entries.
        assert_eq!(v.read(ino, 0, 7).unwrap(), b"payload");
    }

    #[test]
    fn aborted_batch_has_no_effect() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        v.pass_write(h, 0, b"before", Bundle::new()).unwrap();
        let stats_before = v.stats();
        let bytes_before = v.stats().provenance_bytes;
        let version_before = v.identity_of_ino(ino).unwrap().version;
        let bogus = Handle::from_raw(9999);
        let mut txn = dpapi::Txn::new();
        txn.write(h, 0, b"after".to_vec(), Bundle::new())
            .freeze(bogus);
        let err = v.pass_commit(txn).unwrap_err();
        assert_eq!(err, DpapiError::aborted_at(1, DpapiError::InvalidHandle));
        // Atomicity: nothing was logged, versioned or written.
        assert_eq!(v.stats().provenance_bytes, bytes_before);
        assert_eq!(v.stats().records_logged, stats_before.records_logged);
        assert_eq!(v.identity_of_ino(ino).unwrap().version, version_before);
        assert_eq!(v.read(ino, 0, 6).unwrap(), b"before");
    }

    #[test]
    fn batch_with_malformed_record_aborts_before_logging() {
        let mut v = volume();
        let root = v.root();
        let ino = v.create(root, "f").unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        let bytes_before = v.stats().provenance_bytes;
        let mut bad = Bundle::new();
        bad.push(
            h,
            ProvenanceRecord::new(
                Attribute::Other("N".repeat(u16::MAX as usize + 1)),
                Value::Int(1),
            ),
        );
        let mut txn = dpapi::Txn::new();
        txn.freeze(h).write(h, 0, b"data".to_vec(), bad);
        let err = v.pass_commit(txn).unwrap_err();
        assert!(
            matches!(
                &err,
                DpapiError::TxnAborted { failed_op: 1, cause } if matches!(**cause, DpapiError::Malformed(_))
            ),
            "got {err:?}"
        );
        assert_eq!(v.stats().provenance_bytes, bytes_before);
        // The freeze validated fine but must not have applied either.
        assert_eq!(v.identity_of_ino(ino).unwrap().version, Version(0));
    }

    #[test]
    fn invalid_handle_is_rejected() {
        let mut v = volume();
        let bogus = Handle::from_raw(777);
        assert!(matches!(
            v.pass_read(bogus, 0, 1),
            Err(DpapiError::InvalidHandle)
        ));
        assert!(matches!(
            v.pass_write(bogus, 0, b"", Bundle::new()),
            Err(DpapiError::InvalidHandle)
        ));
        assert!(matches!(
            v.pass_freeze(bogus),
            Err(DpapiError::InvalidHandle)
        ));
    }
}
