//! The self-ingestion workload: the provenance system building
//! itself.
//!
//! A small cargo-like build of the provenance daemon's own sources —
//! one `rustc` process per crate source reading it (plus the shared
//! manifest) and emitting an rlib, then a link step reading every
//! rlib and writing the daemon binary. The point is not the
//! operation mix but the *shape*: the binary's ancestry must reach
//! every source through its compile process, which makes this the
//! natural expressiveness probe for the fault harness — a system
//! whose provenance of its own build is wrong cannot be trusted
//! about anyone else's.

use sim_os::fs::FsResult;
use sim_os::proc::Pid;
use sim_os::syscall::{Kernel, OpenFlags};

use crate::{join, Workload};

/// The self-ingestion build workload.
pub struct SelfIngest {
    /// Number of crate sources compiled to rlibs.
    pub sources: usize,
    /// Source file size in bytes.
    pub src_bytes: usize,
    /// Compute units burned per compilation.
    pub cpu_per_unit: u64,
}

impl Default for SelfIngest {
    fn default() -> Self {
        SelfIngest {
            sources: 6,
            src_bytes: 4 * 1024,
            cpu_per_unit: 11_000,
        }
    }
}

impl Workload for SelfIngest {
    fn name(&self) -> &'static str {
        "SelfIngest"
    }

    fn run(&self, kernel: &mut Kernel, driver: Pid, base: &str) -> FsResult<()> {
        // Check out the tree: one process writes the manifest and
        // every crate source.
        let co = kernel.fork(driver)?;
        kernel.execve(co, "/usr/bin/git", &["git".into(), "checkout".into()], &[])?;
        kernel.mkdir_p(co, &join(base, "src"))?;
        kernel.mkdir_p(co, &join(base, "target"))?;
        kernel.write_file(
            co,
            &join(base, "Cargo.toml"),
            b"[package]\nname = \"waldo\"\n",
        )?;
        for i in 0..self.sources {
            let body = vec![(i % 251) as u8; self.src_bytes];
            kernel.write_file(co, &join(base, &format!("src/c{i}.rs")), &body)?;
        }
        kernel.exit(co);

        // Compile each source in its own rustc process: reads its
        // source plus the shared manifest, writes its rlib.
        for i in 0..self.sources {
            let rustc = kernel.fork(driver)?;
            kernel.execve(
                rustc,
                "/usr/bin/rustc",
                &[
                    "rustc".into(),
                    "--crate-type=rlib".into(),
                    format!("src/c{i}.rs"),
                ],
                &["PATH=/usr/bin:/bin".into(), "CARGO_TERM_COLOR=never".into()],
            )?;
            let fd = kernel.open(
                rustc,
                &join(base, &format!("src/c{i}.rs")),
                OpenFlags::RDONLY,
            )?;
            kernel.read(rustc, fd, self.src_bytes)?;
            kernel.close(rustc, fd)?;
            let fd = kernel.open(rustc, &join(base, "Cargo.toml"), OpenFlags::RDONLY)?;
            kernel.read(rustc, fd, 64)?;
            kernel.close(rustc, fd)?;
            kernel.compute(self.cpu_per_unit);
            let body = vec![(i % 249) as u8; self.src_bytes / 2];
            kernel.write_file(rustc, &join(base, &format!("target/c{i}.rlib")), &body)?;
            kernel.exit(rustc);
        }

        // Link: one process reads every rlib and writes the daemon.
        let ld = kernel.fork(driver)?;
        kernel.execve(
            ld,
            "/usr/bin/rustc",
            &["rustc".into(), "-o".into(), "waldo".into()],
            &[],
        )?;
        let mut image = Vec::new();
        for i in 0..self.sources {
            let path = join(base, &format!("target/c{i}.rlib"));
            let fd = kernel.open(ld, &path, OpenFlags::RDONLY)?;
            let data = kernel.read(ld, fd, self.src_bytes / 2)?;
            kernel.close(ld, fd)?;
            image.extend_from_slice(&data[..32.min(data.len())]);
        }
        kernel.compute(self.cpu_per_unit * 2);
        kernel.write_file(ld, &join(base, "target/waldo"), &image)?;
        kernel.exit(ld);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed_run;

    #[test]
    fn build_produces_rlibs_and_binary() {
        let mut sys = passv2::System::baseline();
        let driver = sys.spawn("cargo");
        let wl = SelfIngest::default();
        let report = timed_run(&wl, &mut sys.kernel, driver, "/").unwrap();
        assert!(report.elapsed_ns > 0);
        assert!(sys.kernel.read_file(driver, "/target/waldo").is_ok());
        assert!(sys.kernel.read_file(driver, "/target/c0.rlib").is_ok());
    }

    /// The defining shape: under PASS, the binary's ancestry reaches
    /// every crate source through its compiling process.
    #[test]
    fn binary_ancestry_reaches_every_source() {
        let mut sys = passv2::System::single_volume();
        let driver = sys.spawn("cargo");
        let wl = SelfIngest::default();
        timed_run(&wl, &mut sys.kernel, driver, "/").unwrap();
        let mut waldo = sys.spawn_waldo();
        for (_, logs) in sys.rotate_all_logs() {
            for log in logs {
                waldo.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        let bins = waldo.db.find_by_name("/target/waldo");
        assert_eq!(bins.len(), 1);
        let obj = waldo.db.object(bins[0]).unwrap();
        let anc = waldo
            .db
            .ancestors(dpapi::ObjectRef::new(bins[0], dpapi::Version(obj.current)));
        for i in 0..wl.sources {
            let srcs = waldo.db.find_by_name(&format!("/src/c{i}.rs"));
            assert_eq!(srcs.len(), 1);
            assert!(
                anc.iter().any(|r| r.pnode == srcs[0]),
                "binary ancestry must include /src/c{i}.rs"
            );
        }
    }
}
