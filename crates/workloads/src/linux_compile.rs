//! The Linux-compile workload: unpack and build a kernel tree.
//!
//! CPU intensive: each compilation unit forks a `cc` process that
//! reads its source file plus a set of shared headers, burns CPU, and
//! writes an object file; a final `ld` reads every object and writes
//! the kernel image. The paper reports 15.6% PASSv2 overhead "due to
//! provenance writes" — lots of processes, lots of dependencies, a
//! medium amount of data.

use sim_os::fs::FsResult;
use sim_os::proc::Pid;
use sim_os::syscall::{Kernel, OpenFlags};

use crate::{join, Workload};

/// The compile workload.
pub struct LinuxCompile {
    /// Number of compilation units ("`.c` files").
    pub units: usize,
    /// Number of shared headers.
    pub headers: usize,
    /// Source file size in bytes.
    pub src_bytes: usize,
    /// Object file size in bytes.
    pub obj_bytes: usize,
    /// Compute units burned per compilation.
    pub cpu_per_unit: u64,
}

impl Default for LinuxCompile {
    fn default() -> Self {
        LinuxCompile {
            units: 1500,
            headers: 80,
            src_bytes: 9 * 1024,
            obj_bytes: 14 * 1024,
            cpu_per_unit: 19_000,
        }
    }
}

impl LinuxCompile {
    fn dir_of(&self, unit: usize) -> usize {
        unit % 16
    }
}

impl Workload for LinuxCompile {
    fn name(&self) -> &'static str {
        "Linux Compile"
    }

    fn run(&self, kernel: &mut Kernel, driver: Pid, base: &str) -> FsResult<()> {
        // Phase 1: unpack the tree (tar-like: one process, many
        // creates and writes).
        let tar = kernel.fork(driver)?;
        kernel.execve(tar, "/bin/tar", &["tar".into(), "xf".into()], &[])?;
        kernel.mkdir_p(tar, &join(base, "src"))?;
        kernel.mkdir_p(tar, &join(base, "include"))?;
        kernel.mkdir_p(tar, &join(base, "obj"))?;
        for d in 0..16 {
            kernel.mkdir_p(tar, &join(base, &format!("src/d{d}")))?;
            kernel.mkdir_p(tar, &join(base, &format!("obj/d{d}")))?;
        }
        for h in 0..self.headers {
            let body = vec![b'h'; 2048];
            kernel.write_file(tar, &join(base, &format!("include/h{h}.h")), &body)?;
        }
        for u in 0..self.units {
            let body = vec![(u % 251) as u8; self.src_bytes];
            let d = self.dir_of(u);
            kernel.write_file(tar, &join(base, &format!("src/d{d}/f{u}.c")), &body)?;
        }
        kernel.exit(tar);

        // Phase 2: compile each unit in its own process.
        for u in 0..self.units {
            let cc = kernel.fork(driver)?;
            kernel.execve(
                cc,
                "/usr/bin/cc",
                &[
                    "cc".into(),
                    "-O2".into(),
                    "-Wall".into(),
                    "-I./include".into(),
                    "-c".into(),
                    format!("f{u}.c"),
                ],
                &[
                    "PATH=/usr/bin:/bin:/usr/local/bin".into(),
                    "HOME=/root".into(),
                    "ARCH=i386".into(),
                    "KBUILD_VERBOSE=0".into(),
                    "LANG=C".into(),
                    "SHELL=/bin/sh".into(),
                ],
            )?;
            let d = self.dir_of(u);
            let src = join(base, &format!("src/d{d}/f{u}.c"));
            let fd = kernel.open(cc, &src, OpenFlags::RDONLY)?;
            kernel.read(cc, fd, self.src_bytes)?;
            kernel.close(cc, fd)?;
            // Each unit includes a subset of the shared headers.
            for i in 0..12 {
                let h = (u * 7 + i * 5) % self.headers;
                let path = join(base, &format!("include/h{h}.h"));
                let fd = kernel.open(cc, &path, OpenFlags::RDONLY)?;
                kernel.read(cc, fd, 2048)?;
                kernel.close(cc, fd)?;
            }
            kernel.compute(self.cpu_per_unit);
            let obj = join(base, &format!("obj/d{d}/f{u}.o"));
            let body = vec![(u % 253) as u8; self.obj_bytes];
            kernel.write_file(cc, &obj, &body)?;
            kernel.exit(cc);
        }

        // Phase 3: link.
        let ld = kernel.fork(driver)?;
        kernel.execve(
            ld,
            "/usr/bin/ld",
            &["ld".into(), "-o".into(), "vmlinux".into()],
            &[],
        )?;
        let mut image = Vec::new();
        for u in 0..self.units {
            let d = self.dir_of(u);
            let obj = join(base, &format!("obj/d{d}/f{u}.o"));
            let fd = kernel.open(ld, &obj, OpenFlags::RDONLY)?;
            let data = kernel.read(ld, fd, self.obj_bytes)?;
            kernel.close(ld, fd)?;
            image.extend_from_slice(&data[..64.min(data.len())]);
        }
        kernel.compute(self.cpu_per_unit * 4);
        kernel.write_file(ld, &join(base, "vmlinux"), &image)?;
        kernel.exit(ld);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed_run;

    #[test]
    fn compile_produces_objects_and_image() {
        let mut sys = passv2::System::baseline();
        let driver = sys.spawn("make");
        let wl = LinuxCompile {
            units: 12,
            headers: 6,
            ..Default::default()
        };
        let report = timed_run(&wl, &mut sys.kernel, driver, "/").unwrap();
        assert!(report.elapsed_ns > 0);
        assert!(sys.kernel.read_file(driver, "/vmlinux").is_ok());
        assert!(sys.kernel.read_file(driver, "/obj/d3/f3.o").is_ok());
    }

    #[test]
    fn compile_under_pass_generates_provenance() {
        let mut sys = passv2::System::single_volume();
        let driver = sys.spawn("make");
        let wl = LinuxCompile {
            units: 8,
            headers: 4,
            ..Default::default()
        };
        timed_run(&wl, &mut sys.kernel, driver, "/").unwrap();
        let s = sys.pass.analyzer_stats();
        assert!(s.presented > 50, "many dependencies presented: {s:?}");
        assert!(s.duplicates > 0, "block-wise reads produce duplicates");
    }
}
