//! Synthetic workload generators for the paper's evaluation (§7).
//!
//! Five workloads, matching Table 2/3: a Linux-compile-like CPU
//! intensive build, Postmark (I/O intensive mail-server simulation),
//! a Mercurial patch-application activity (metadata intensive), Blast
//! (CPU-bound bioinformatics pipeline) and a PA-Kepler tabular job.
//! Each generator reproduces its workload's *operation mix* at a
//! reduced scale; Table 2/3 compare relative overheads, which the mix
//! — not the absolute size — determines.

pub mod blast;
pub mod linux_compile;
pub mod mercurial;
pub mod pa_kepler;
pub mod postmark;
pub mod self_ingest;

use sim_os::clock::Nanos;
use sim_os::fs::FsResult;
use sim_os::proc::Pid;
use sim_os::syscall::Kernel;

pub use blast::Blast;
pub use linux_compile::LinuxCompile;
pub use mercurial::MercurialActivity;
pub use pa_kepler::PaKepler;
pub use postmark::Postmark;
pub use self_ingest::SelfIngest;

/// A benchmark workload.
pub trait Workload {
    /// The display name used in the tables.
    fn name(&self) -> &'static str;

    /// Runs the workload under `base_dir` as children of `driver`.
    fn run(&self, kernel: &mut Kernel, driver: Pid, base_dir: &str) -> FsResult<()>;
}

/// Runs one base workload once per mount — the N-volume driver the
/// cluster fan-in tier (`waldo::cluster`) is benchmarked and tested
/// against. Each mount gets an independent run of `base` under its
/// own directory tree, so the per-volume provenance streams are
/// identical in shape and a cluster member's share of the work is
/// exactly its routed volumes' runs. The `base_dir` argument of
/// [`Workload::run`] is ignored; the mount list governs.
pub struct MultiVolume<W> {
    /// The workload to run on every volume.
    pub base: W,
    /// Mount points of the target volumes (e.g. `"/v1"`, `"/v2"`).
    pub mounts: Vec<String>,
}

impl<W: Workload> Workload for MultiVolume<W> {
    fn name(&self) -> &'static str {
        "MultiVolume"
    }

    fn run(&self, kernel: &mut Kernel, driver: Pid, _base_dir: &str) -> FsResult<()> {
        for mount in &self.mounts {
            self.base.run(kernel, driver, mount)?;
        }
        Ok(())
    }
}

/// The result of timing one workload run.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Virtual elapsed nanoseconds.
    pub elapsed_ns: Nanos,
}

/// Times one run of `w` on `kernel`.
pub fn timed_run(
    w: &dyn Workload,
    kernel: &mut Kernel,
    driver: Pid,
    base_dir: &str,
) -> FsResult<RunReport> {
    let clock = kernel.clock();
    let start = clock.now();
    w.run(kernel, driver, base_dir)?;
    kernel.sync_all()?;
    Ok(RunReport {
        elapsed_ns: clock.now() - start,
    })
}

/// Discloses a completed run as a `WORKLOAD` provenance object in
/// **one disclosure transaction**: the run's `TYPE`, `NAME` and
/// `ELAPSED_NS` records plus the durability sync commit atomically
/// through `pass_commit` — the DPAPI v2 pattern for applications that
/// want their run metadata in the provenance graph without paying one
/// syscall per record.
///
/// Returns the run object's identity. Errors if no provenance module
/// or PASS volume is available (use on provenance-aware systems).
pub fn disclose_run(
    kernel: &mut Kernel,
    pid: Pid,
    name: &str,
    report: &RunReport,
) -> dpapi::Result<dpapi::ObjectRef> {
    use dpapi::{Attribute, Bundle, ProvenanceRecord, Value};
    let h = kernel
        .pass_mkobj(pid, None)
        .map_err(dpapi::DpapiError::from)?;
    let mut bundle = Bundle::new();
    bundle.push(
        h,
        ProvenanceRecord::new(Attribute::Type, Value::str("WORKLOAD")),
    );
    bundle.push(h, ProvenanceRecord::new(Attribute::Name, Value::str(name)));
    bundle.push(
        h,
        ProvenanceRecord::new(
            Attribute::Other("ELAPSED_NS".into()),
            Value::Int(report.elapsed_ns as i64),
        ),
    );
    let mut txn = dpapi::Txn::new();
    txn.disclose(h, bundle).sync(h);
    kernel
        .pass_commit(pid, txn)
        .map_err(dpapi::DpapiError::from)?;
    let identity = kernel
        .pass_read(pid, h, 0, 0)
        .map_err(dpapi::DpapiError::from)?
        .identity;
    let _ = kernel.pass_close(pid, h);
    Ok(identity)
}

/// [`disclose_run`] for a whole campaign, pipelined: each run's
/// records-plus-sync transaction is submitted into `pipe` instead of
/// committing synchronously, so consecutive runs coalesce into group
/// frames and a campaign of N runs pays far fewer `pass_commit`
/// round-trips than N. The object handles are minted synchronously
/// (pnode allocation is cheap server state), which also keeps every
/// transaction free of the handle-scope rule.
///
/// Drains to completion before returning, so the returned identities
/// are final and the store is byte-equal to the synchronous path.
pub fn disclose_runs_pipelined(
    layer: &mut dyn dpapi::Dpapi,
    pipe: &mut sluice::Sluice,
    client: sluice::ClientId,
    runs: &[(&str, RunReport)],
) -> dpapi::Result<Vec<dpapi::ObjectRef>> {
    use dpapi::{Attribute, Bundle, ProvenanceRecord, Value};
    let mut handles = Vec::with_capacity(runs.len());
    let mut tickets = Vec::with_capacity(runs.len());
    for (name, report) in runs {
        let h = layer.pass_mkobj(None)?;
        let mut bundle = Bundle::new();
        bundle.push(
            h,
            ProvenanceRecord::new(Attribute::Type, Value::str("WORKLOAD")),
        );
        bundle.push(h, ProvenanceRecord::new(Attribute::Name, Value::str(*name)));
        bundle.push(
            h,
            ProvenanceRecord::new(
                Attribute::Other("ELAPSED_NS".into()),
                Value::Int(report.elapsed_ns as i64),
            ),
        );
        let mut txn = dpapi::Txn::new();
        txn.disclose(h, bundle).sync(h);
        tickets.push(pipe.submit(layer, client, txn)?);
        handles.push(h);
    }
    for t in tickets {
        pipe.wait(layer, t)?;
    }
    let mut identities = Vec::with_capacity(handles.len());
    for h in handles {
        identities.push(layer.pass_read(h, 0, 0)?.identity);
        let _ = layer.pass_close(h);
    }
    Ok(identities)
}

/// [`timed_run`] plus a [`disclose_run`] of the result on
/// provenance-aware systems; on baseline systems (no module, no PASS
/// volume) the disclosure is skipped silently.
pub fn timed_run_disclosed(
    w: &dyn Workload,
    kernel: &mut Kernel,
    driver: Pid,
    base_dir: &str,
) -> FsResult<RunReport> {
    let report = timed_run(w, kernel, driver, base_dir)?;
    let _ = disclose_run(kernel, driver, w.name(), &report);
    Ok(report)
}

/// Joins a base directory and a relative path.
pub(crate) fn join(base: &str, rel: &str) -> String {
    if base == "/" {
        format!("/{rel}")
    } else {
        format!("{base}/{rel}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_handles_root_and_nested() {
        assert_eq!(join("/", "a/b"), "/a/b");
        assert_eq!(join("/mnt/nfs", "a"), "/mnt/nfs/a");
    }

    #[test]
    fn disclosed_run_lands_in_the_database_as_one_txn() {
        let mut sys = passv2::System::single_volume();
        let driver = sys.spawn("sh");
        let wl = crate::postmark::Postmark {
            files: 4,
            transactions: 4,
            ..Default::default()
        };
        let before = sys.kernel.stats().dpapi_txns;
        let report = timed_run_disclosed(&wl, &mut sys.kernel, driver, "/").unwrap();
        assert!(report.elapsed_ns > 0);
        assert_eq!(
            sys.kernel.stats().dpapi_txns,
            before + 1,
            "the run summary is one disclosure transaction"
        );
        // The WORKLOAD object is queryable after ingest.
        let mut waldo = sys.spawn_waldo();
        for (_, logs) in sys.rotate_all_logs() {
            for log in logs {
                waldo.ingest_log_file(&mut sys.kernel, &log);
            }
        }
        let runs = waldo.db.find_by_type("WORKLOAD");
        assert_eq!(runs.len(), 1);
        let obj = waldo.db.object(runs[0]).unwrap();
        assert_eq!(
            obj.first_attr(&dpapi::Attribute::Name),
            Some(&dpapi::Value::str("Postmark"))
        );
    }

    #[test]
    fn baseline_systems_skip_disclosure_silently() {
        let mut sys = passv2::System::baseline();
        let driver = sys.spawn("sh");
        let wl = crate::postmark::Postmark {
            files: 2,
            transactions: 2,
            ..Default::default()
        };
        timed_run_disclosed(&wl, &mut sys.kernel, driver, "/").unwrap();
    }
}
