//! Synthetic workload generators for the paper's evaluation (§7).
//!
//! Five workloads, matching Table 2/3: a Linux-compile-like CPU
//! intensive build, Postmark (I/O intensive mail-server simulation),
//! a Mercurial patch-application activity (metadata intensive), Blast
//! (CPU-bound bioinformatics pipeline) and a PA-Kepler tabular job.
//! Each generator reproduces its workload's *operation mix* at a
//! reduced scale; Table 2/3 compare relative overheads, which the mix
//! — not the absolute size — determines.

pub mod blast;
pub mod linux_compile;
pub mod mercurial;
pub mod pa_kepler;
pub mod postmark;

use sim_os::clock::Nanos;
use sim_os::fs::FsResult;
use sim_os::proc::Pid;
use sim_os::syscall::Kernel;

pub use blast::Blast;
pub use linux_compile::LinuxCompile;
pub use mercurial::MercurialActivity;
pub use pa_kepler::PaKepler;
pub use postmark::Postmark;

/// A benchmark workload.
pub trait Workload {
    /// The display name used in the tables.
    fn name(&self) -> &'static str;

    /// Runs the workload under `base_dir` as children of `driver`.
    fn run(&self, kernel: &mut Kernel, driver: Pid, base_dir: &str) -> FsResult<()>;
}

/// The result of timing one workload run.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Virtual elapsed nanoseconds.
    pub elapsed_ns: Nanos,
}

/// Times one run of `w` on `kernel`.
pub fn timed_run(
    w: &dyn Workload,
    kernel: &mut Kernel,
    driver: Pid,
    base_dir: &str,
) -> FsResult<RunReport> {
    let clock = kernel.clock();
    let start = clock.now();
    w.run(kernel, driver, base_dir)?;
    kernel.sync_all()?;
    Ok(RunReport {
        elapsed_ns: clock.now() - start,
    })
}

/// Joins a base directory and a relative path.
pub(crate) fn join(base: &str, rel: &str) -> String {
    if base == "/" {
        format!("/{rel}")
    } else {
        format!("{base}/{rel}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_handles_root_and_nested() {
        assert_eq!(join("/", "a/b"), "/a/b");
        assert_eq!(join("/mnt/nfs", "a"), "/mnt/nfs/a");
    }
}
