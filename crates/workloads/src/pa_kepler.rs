//! The PA-Kepler workload: tabular data reformatting.
//!
//! "A PA-Kepler workload, that parses tabular data, extracts values,
//! and reformats it using a user-specified expression" (§7). When the
//! volume is provenance-aware this runs with the DPAPI recorder, so
//! the run combines system provenance and application provenance —
//! the three-layer situation of Figure 1 when the volume is PA-NFS.

use std::rc::Rc;

use sim_os::fs::FsResult;
use sim_os::proc::Pid;
use sim_os::syscall::Kernel;

use kepler::{run as run_wf, DpapiRecorder, NullRecorder, OpKind, Recorder, Token, Workflow};

use crate::{join, Workload};

/// The Kepler tabular workload.
pub struct PaKepler {
    /// Rows of tabular input.
    pub rows: usize,
    /// Compute units per transform stage.
    pub cpu_per_stage: u64,
    /// Use the DPAPI recorder (PA-Kepler); otherwise record nothing
    /// (the baseline Kepler configuration).
    pub provenance_aware: bool,
}

impl Default for PaKepler {
    fn default() -> Self {
        PaKepler {
            rows: 60_000,
            cpu_per_stage: 1_500_000,
            provenance_aware: true,
        }
    }
}

impl Workload for PaKepler {
    fn name(&self) -> &'static str {
        "PA-Kepler"
    }

    fn run(&self, kernel: &mut Kernel, driver: Pid, base: &str) -> FsResult<()> {
        let pid = kernel.fork(driver)?;
        kernel.execve(pid, "/usr/bin/kepler", &["kepler".into()], &[])?;
        kernel.mkdir_p(pid, &join(base, "kepler"))?;
        // Tabular input: rows of comma-separated values.
        let mut table = String::new();
        for r in 0..self.rows {
            table.push_str(&format!("{},{},{}\n", r, r * 3 % 17, r * 7 % 23));
        }
        let input = join(base, "kepler/table.csv");
        kernel.write_file(pid, &input, table.as_bytes())?;

        let mut wf = Workflow::new();
        let src = wf.add("table_reader", OpKind::FileSource { path: input });
        let parse = wf.add(
            "parse",
            OpKind::Transform {
                f: Rc::new(|ins: &[Token]| {
                    // Parse and extract the middle column.
                    let text = String::from_utf8_lossy(&ins[0].0).into_owned();
                    let col: Vec<&str> = text.lines().filter_map(|l| l.split(',').nth(1)).collect();
                    Token(col.join("\n").into_bytes())
                }),
                cpu_units: self.cpu_per_stage,
            },
        );
        let reformat = wf.add_with_params(
            "reformat",
            &[("expression", "value * 2 + 1")],
            OpKind::Transform {
                f: Rc::new(|ins: &[Token]| {
                    let text = String::from_utf8_lossy(&ins[0].0).into_owned();
                    let out: Vec<String> = text
                        .lines()
                        .filter_map(|l| l.parse::<i64>().ok())
                        .map(|v| format!("{}", v * 2 + 1))
                        .collect();
                    Token(out.join("\n").into_bytes())
                }),
                cpu_units: self.cpu_per_stage,
            },
        );
        let sink = wf.add(
            "writer",
            OpKind::FileSink {
                path: join(base, "kepler/reformatted.txt"),
            },
        );
        wf.connect(src, parse);
        wf.connect(parse, reformat);
        wf.connect(reformat, sink);

        let result = if self.provenance_aware {
            let mut rec = DpapiRecorder::new();
            run_wf(&wf, kernel, pid, &mut rec)
        } else {
            let mut rec: NullRecorder = NullRecorder;
            let rec: &mut dyn Recorder = &mut rec;
            run_wf(&wf, kernel, pid, rec)
        };
        result.map_err(|e| sim_os::fs::FsError::Invalid(e.to_string()))?;
        kernel.exit(pid);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed_run;

    #[test]
    fn reformats_the_middle_column() {
        let mut sys = passv2::System::baseline();
        let driver = sys.spawn("sh");
        let wl = PaKepler {
            rows: 10,
            cpu_per_stage: 100,
            provenance_aware: false,
        };
        timed_run(&wl, &mut sys.kernel, driver, "/").unwrap();
        let out = sys
            .kernel
            .read_file(driver, "/kepler/reformatted.txt")
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        // Row 1: middle column is 3 -> 3*2+1 = 7.
        assert_eq!(text.lines().nth(1), Some("7"));
    }

    #[test]
    fn pa_mode_creates_operator_objects() {
        let mut sys = passv2::System::single_volume();
        let driver = sys.spawn("sh");
        let wl = PaKepler {
            rows: 10,
            cpu_per_stage: 100,
            provenance_aware: true,
        };
        timed_run(&wl, &mut sys.kernel, driver, "/").unwrap();
        assert!(sys.pass.stats().dpapi_calls > 0, "the recorder disclosed");
    }
}
