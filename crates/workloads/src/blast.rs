//! Blast: the protein-sequence search workload.
//!
//! "The workload formats two input data files with a tool called
//! formatdb, then processes the two files with Blast, and then
//! massages the output data with a series of Perl scripts" (§7).
//! Heavily CPU bound: elapsed time is dominated by compute, so both
//! PASSv2 and PA-NFS overheads stay near 1–2%.

use sim_os::fs::FsResult;
use sim_os::proc::Pid;
use sim_os::syscall::{Kernel, OpenFlags};

use crate::{join, Workload};

/// The Blast workload.
pub struct Blast {
    /// Size of each input sequence database.
    pub input_bytes: usize,
    /// Compute units for the main Blast search.
    pub search_cpu: u64,
    /// Number of Perl post-processing scripts.
    pub perl_stages: usize,
}

impl Default for Blast {
    fn default() -> Self {
        Blast {
            input_bytes: 4 * 1024 * 1024,
            search_cpu: 48_000_000,
            perl_stages: 3,
        }
    }
}

impl Workload for Blast {
    fn name(&self) -> &'static str {
        "Blast"
    }

    fn run(&self, kernel: &mut Kernel, driver: Pid, base: &str) -> FsResult<()> {
        // Inputs: two species' protein sequences.
        let setup = kernel.fork(driver)?;
        kernel.execve(setup, "/bin/cp", &["cp".into()], &[])?;
        kernel.mkdir_p(setup, &join(base, "blast"))?;
        for (i, name) in ["speciesA.fasta", "speciesB.fasta"].iter().enumerate() {
            let body: Vec<u8> = (0..self.input_bytes)
                .map(|j| b"ACDEFGHIKLMNPQRSTVWY"[(j * (i + 3)) % 20])
                .collect();
            kernel.write_file(setup, &join(base, &format!("blast/{name}")), &body)?;
        }
        kernel.exit(setup);

        // formatdb over both inputs.
        for name in ["speciesA", "speciesB"] {
            let fdb = kernel.fork(driver)?;
            kernel.execve(fdb, "/usr/bin/formatdb", &["formatdb".into()], &[])?;
            let src = join(base, &format!("blast/{name}.fasta"));
            let fd = kernel.open(fdb, &src, OpenFlags::RDONLY)?;
            let data = kernel.read(fdb, fd, self.input_bytes)?;
            kernel.close(fdb, fd)?;
            kernel.compute(self.search_cpu / 50);
            kernel.write_file(
                fdb,
                &join(base, &format!("blast/{name}.phr")),
                &data[..1024],
            )?;
            kernel.exit(fdb);
        }

        // The Blast search itself.
        let blast = kernel.fork(driver)?;
        kernel.execve(
            blast,
            "/usr/bin/blastall",
            &["blastall".into(), "-p".into(), "blastp".into()],
            &[],
        )?;
        for name in ["speciesA", "speciesB"] {
            let db = join(base, &format!("blast/{name}.phr"));
            let fd = kernel.open(blast, &db, OpenFlags::RDONLY)?;
            kernel.read(blast, fd, 1024)?;
            kernel.close(blast, fd)?;
        }
        kernel.compute(self.search_cpu);
        kernel.write_file(
            blast,
            &join(base, "blast/hits.raw"),
            &vec![b'>'; 512 * 1024],
        )?;
        kernel.exit(blast);

        // Perl massaging pipeline.
        let mut prev = join(base, "blast/hits.raw");
        for s in 0..self.perl_stages {
            let perl = kernel.fork(driver)?;
            kernel.execve(
                perl,
                "/usr/bin/perl",
                &["perl".into(), format!("stage{s}.pl")],
                &[],
            )?;
            let size = kernel.stat(perl, &prev)?.size as usize;
            let fd = kernel.open(perl, &prev, OpenFlags::RDONLY)?;
            let data = kernel.read(perl, fd, size)?;
            kernel.close(perl, fd)?;
            kernel.compute(self.search_cpu / 100);
            let out = join(base, &format!("blast/hits.stage{s}"));
            kernel.write_file(perl, &out, &data[..data.len() / 2])?;
            kernel.exit(perl);
            prev = out;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed_run;

    fn tiny() -> Blast {
        Blast {
            input_bytes: 8 * 1024,
            search_cpu: 1_000_000,
            perl_stages: 2,
        }
    }

    #[test]
    fn pipeline_produces_staged_outputs() {
        let mut sys = passv2::System::baseline();
        let driver = sys.spawn("sh");
        timed_run(&tiny(), &mut sys.kernel, driver, "/").unwrap();
        assert!(sys.kernel.read_file(driver, "/blast/hits.stage1").is_ok());
    }

    #[test]
    fn blast_is_cpu_dominated() {
        // The compute term should dominate disk time by far.
        let mut sys = passv2::System::baseline();
        let driver = sys.spawn("sh");
        let report = timed_run(&tiny(), &mut sys.kernel, driver, "/").unwrap();
        let cpu_ns = 1_000_000u64 * sys.kernel.model().cpu.compute_unit_ns;
        assert!(
            report.elapsed_ns > cpu_ns,
            "elapsed must include the search compute"
        );
        assert!(
            report.elapsed_ns < cpu_ns * 3,
            "I/O must not dominate a CPU-bound workload: {} vs {}",
            report.elapsed_ns,
            cpu_ns
        );
    }
}
