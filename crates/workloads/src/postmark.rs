//! Postmark: the mail-server I/O benchmark.
//!
//! Creates a pool of files across subdirectories, then runs a
//! transaction mix of read / append / create / delete, and finally
//! removes everything — the classic small-file I/O pattern. The
//! paper ran 1500 transactions over 1500 files of 4 KB–1 MB in 10
//! subdirectories; the defaults here keep the same mix at reduced
//! scale.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sim_os::fs::FsResult;
use sim_os::proc::Pid;
use sim_os::syscall::{Kernel, OpenFlags};

use crate::{join, Workload};

/// The Postmark workload.
pub struct Postmark {
    /// Number of files in the initial pool.
    pub files: usize,
    /// Number of transactions.
    pub transactions: usize,
    /// Number of subdirectories.
    pub subdirs: usize,
    /// Minimum file size.
    pub min_size: usize,
    /// Maximum file size.
    pub max_size: usize,
    /// RNG seed (runs are deterministic per seed).
    pub seed: u64,
}

impl Default for Postmark {
    fn default() -> Self {
        Postmark {
            files: 400,
            transactions: 400,
            subdirs: 10,
            min_size: 16 * 1024,
            max_size: 160 * 1024,
            seed: 42,
        }
    }
}

impl Postmark {
    fn path(&self, base: &str, idx: usize) -> String {
        join(base, &format!("pm/s{}/file{}", idx % self.subdirs, idx))
    }
}

impl Workload for Postmark {
    fn name(&self) -> &'static str {
        "Postmark"
    }

    fn run(&self, kernel: &mut Kernel, driver: Pid, base: &str) -> FsResult<()> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let pid = kernel.fork(driver)?;
        kernel.execve(pid, "/usr/bin/postmark", &["postmark".into()], &[])?;
        for d in 0..self.subdirs {
            kernel.mkdir_p(pid, &join(base, &format!("pm/s{d}")))?;
        }
        // Pool creation.
        let mut live: Vec<usize> = Vec::new();
        let mut next_idx = 0usize;
        for _ in 0..self.files {
            let size = rng.random_range(self.min_size..=self.max_size);
            let body = vec![b'm'; size];
            kernel.write_file(pid, &self.path(base, next_idx), &body)?;
            live.push(next_idx);
            next_idx += 1;
        }
        // Transactions: 50% read/append pairs, 50% create/delete.
        for _ in 0..self.transactions {
            if live.is_empty() {
                break;
            }
            match rng.random_range(0..4u32) {
                0 => {
                    // Read a whole file.
                    let victim = live[rng.random_range(0..live.len())];
                    let path = self.path(base, victim);
                    let size = kernel.stat(pid, &path)?.size as usize;
                    let fd = kernel.open(pid, &path, OpenFlags::RDONLY)?;
                    kernel.read(pid, fd, size)?;
                    kernel.close(pid, fd)?;
                }
                1 => {
                    // Append.
                    let victim = live[rng.random_range(0..live.len())];
                    let path = self.path(base, victim);
                    let fd = kernel.open(pid, &path, OpenFlags::APPEND_CREATE)?;
                    let body = vec![b'a'; rng.random_range(512..4096)];
                    kernel.write(pid, fd, &body)?;
                    kernel.close(pid, fd)?;
                }
                2 => {
                    // Create.
                    let size = rng.random_range(self.min_size..=self.max_size);
                    let body = vec![b'c'; size];
                    kernel.write_file(pid, &self.path(base, next_idx), &body)?;
                    live.push(next_idx);
                    next_idx += 1;
                }
                _ => {
                    // Delete.
                    let at = rng.random_range(0..live.len());
                    let victim = live.swap_remove(at);
                    kernel.unlink(pid, &self.path(base, victim))?;
                }
            }
        }
        // Tear-down: remove the remaining pool.
        for victim in live {
            kernel.unlink(pid, &self.path(base, victim))?;
        }
        kernel.exit(pid);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed_run;

    fn tiny() -> Postmark {
        Postmark {
            files: 20,
            transactions: 40,
            subdirs: 4,
            min_size: 1024,
            max_size: 8192,
            seed: 7,
        }
    }

    #[test]
    fn postmark_runs_and_cleans_up() {
        let mut sys = passv2::System::baseline();
        let driver = sys.spawn("sh");
        timed_run(&tiny(), &mut sys.kernel, driver, "/").unwrap();
        // All pool files removed; only the directories remain.
        for d in 0..4 {
            let entries = sys.kernel.readdir(driver, &format!("/pm/s{d}")).unwrap();
            assert!(entries.is_empty(), "s{d} should be empty: {entries:?}");
        }
    }

    #[test]
    fn postmark_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sys = passv2::System::baseline();
            let driver = sys.spawn("sh");
            let mut wl = tiny();
            wl.seed = seed;
            timed_run(&wl, &mut sys.kernel, driver, "/")
                .unwrap()
                .elapsed_ns
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn postmark_under_pass_versions_appended_files() {
        let mut sys = passv2::System::single_volume();
        let driver = sys.spawn("sh");
        timed_run(&tiny(), &mut sys.kernel, driver, "/").unwrap();
        // Appends after reads force freezes (read-then-write cycles).
        let s = sys.pass.analyzer_stats();
        assert!(s.presented > 0);
    }
}
