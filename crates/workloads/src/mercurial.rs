//! The Mercurial activity benchmark: a developer applying patches.
//!
//! "We start with a vanilla Linux kernel and apply, as patches, each
//! of the changes that we committed to our own Mercurial-managed
//! source tree" (§7). `patch` is metadata heavy: it creates a
//! temporary file, merges data from the patch file and the original
//! into it, and finally renames the temporary over the original.
//! Those renames force journal commits that interleave with
//! provenance-log writes — the workload with the paper's highest
//! PASSv2 overhead (23.1%).

use sim_os::fs::FsResult;
use sim_os::proc::Pid;
use sim_os::syscall::{Kernel, OpenFlags};

use crate::{join, Workload};

/// The patch-application workload.
pub struct MercurialActivity {
    /// Files in the source tree.
    pub tree_files: usize,
    /// Number of patches applied.
    pub patches: usize,
    /// Files touched per patch.
    pub files_per_patch: usize,
    /// Base file size.
    pub file_bytes: usize,
    /// Compute units for the merge (patch is not CPU heavy).
    pub cpu_per_file: u64,
}

impl Default for MercurialActivity {
    fn default() -> Self {
        MercurialActivity {
            tree_files: 160,
            patches: 120,
            files_per_patch: 3,
            file_bytes: 6 * 1024,
            cpu_per_file: 4_000,
        }
    }
}

impl MercurialActivity {
    fn tree_path(&self, base: &str, i: usize) -> String {
        join(base, &format!("tree/d{}/f{}.c", i % 8, i))
    }
}

impl Workload for MercurialActivity {
    fn name(&self) -> &'static str {
        "Mercurial Activity"
    }

    fn run(&self, kernel: &mut Kernel, driver: Pid, base: &str) -> FsResult<()> {
        // Set up the vanilla tree and the patch series.
        let setup = kernel.fork(driver)?;
        kernel.execve(setup, "/usr/bin/hg", &["hg".into(), "clone".into()], &[])?;
        for d in 0..8 {
            kernel.mkdir_p(setup, &join(base, &format!("tree/d{d}")))?;
        }
        kernel.mkdir_p(setup, &join(base, "patches"))?;
        for i in 0..self.tree_files {
            let body = vec![(i % 7) as u8 + b'0'; self.file_bytes];
            kernel.write_file(setup, &self.tree_path(base, i), &body)?;
        }
        for p in 0..self.patches {
            let body = vec![b'@'; 1024];
            kernel.write_file(setup, &join(base, &format!("patches/{p}.diff")), &body)?;
        }
        kernel.exit(setup);

        // Apply each patch in its own `patch` process.
        for p in 0..self.patches {
            let patch = kernel.fork(driver)?;
            kernel.execve(
                patch,
                "/usr/bin/patch",
                &["patch".into(), "-p1".into()],
                &[],
            )?;
            // Read the diff.
            let diff_path = join(base, &format!("patches/{p}.diff"));
            let fd = kernel.open(patch, &diff_path, OpenFlags::RDONLY)?;
            kernel.read(patch, fd, 1024)?;
            kernel.close(patch, fd)?;
            for t in 0..self.files_per_patch {
                let victim = (p * 13 + t * 31) % self.tree_files;
                let target = self.tree_path(base, victim);
                // Read the original.
                let size = kernel.stat(patch, &target)?.size as usize;
                let fd = kernel.open(patch, &target, OpenFlags::RDONLY)?;
                let mut data = kernel.read(patch, fd, size)?;
                kernel.close(patch, fd)?;
                // Merge into a temporary file.
                kernel.compute(self.cpu_per_file);
                data.extend_from_slice(format!("\n// patch {p}\n").as_bytes());
                let tmp = join(base, &format!("tree/d{}/.tmp{}", victim % 8, victim));
                let fd = kernel.open(patch, &tmp, OpenFlags::WRONLY_CREATE)?;
                kernel.write(patch, fd, &data)?;
                kernel.close(patch, fd)?;
                // Rename the temporary over the original.
                kernel.rename(patch, &tmp, &target)?;
            }
            kernel.exit(patch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timed_run;

    fn tiny() -> MercurialActivity {
        MercurialActivity {
            tree_files: 12,
            patches: 6,
            files_per_patch: 2,
            file_bytes: 2048,
            ..Default::default()
        }
    }

    #[test]
    fn patches_grow_the_touched_files() {
        let mut sys = passv2::System::baseline();
        let driver = sys.spawn("sh");
        timed_run(&tiny(), &mut sys.kernel, driver, "/").unwrap();
        // File 0 was patched at least once (p=0,t=0 hits victim 0).
        let f = sys.kernel.read_file(driver, "/tree/d0/f0.c").unwrap();
        assert!(f.len() > 2048, "patched file must have grown");
        let text = String::from_utf8_lossy(&f);
        assert!(text.contains("// patch 0"));
    }

    #[test]
    fn temporaries_are_gone_after_run() {
        let mut sys = passv2::System::baseline();
        let driver = sys.spawn("sh");
        timed_run(&tiny(), &mut sys.kernel, driver, "/").unwrap();
        for d in 0..8 {
            let entries = sys.kernel.readdir(driver, &format!("/tree/d{d}")).unwrap();
            assert!(
                entries.iter().all(|e| !e.name.starts_with(".tmp")),
                "leftover temporary in d{d}"
            );
        }
    }

    #[test]
    fn provenance_follows_the_renamed_file() {
        let mut sys = passv2::System::single_volume();
        let driver = sys.spawn("sh");
        timed_run(&tiny(), &mut sys.kernel, driver, "/").unwrap();
        assert!(sys.pass.stats().records_emitted > 0);
    }
}
