//! The attribution use case (paper §3.2): a professor downloaded
//! graphs and quotes from the Web, moved them into her presentation
//! directory, and some are no longer online. The browser's history is
//! gone — but the layered provenance still connects each file to its
//! source URL.
//!
//! ```text
//! cargo run --example browser_attribution
//! ```

use links::{demo_web, Session};
use passv2::System;

fn main() {
    let mut sys = System::single_volume();
    let pid = sys.spawn("links");
    sys.kernel.mkdir_p(pid, "/home/downloads").unwrap();
    sys.kernel.mkdir_p(pid, "/home/presentation").unwrap();

    let mut web = demo_web();

    // The professor browses and downloads a graph and a quote.
    let mut session = Session::open(&mut sys.kernel, pid).unwrap();
    session
        .visit(&mut sys.kernel, &web, "http://uni.example/")
        .unwrap();
    session
        .download(
            &mut sys.kernel,
            &web,
            "http://uni.example/graphs/speedup.gif",
            "/home/downloads/speedup.gif",
        )
        .unwrap();
    session
        .download(
            &mut sys.kernel,
            &web,
            "http://uni.example/quotes/knuth.txt",
            "/home/downloads/quote.txt",
        )
        .unwrap();

    // She copies one file and renames the other into the talk
    // directory. A browser cache would lose track of both.
    sys.kernel
        .rename(
            pid,
            "/home/downloads/speedup.gif",
            "/home/presentation/figure-3.gif",
        )
        .unwrap();
    let quote = sys
        .kernel
        .read_file(pid, "/home/downloads/quote.txt")
        .unwrap();
    sys.kernel
        .write_file(pid, "/home/presentation/epigraph.txt", &quote)
        .unwrap();

    // The quote page later disappears from the web entirely.
    web.take_down("http://uni.example/quotes/knuth.txt");

    // Waldo ingests everything.
    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut waldo = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            waldo.ingest_log_file(&mut sys.kernel, &log);
        }
    }

    // Attribution query 1: the renamed file keeps its FILE_URL.
    let figs = waldo.db.find_by_name("/home/presentation/figure-3.gif");
    assert_eq!(figs.len(), 1, "renamed download must be findable");
    let url = waldo
        .db
        .object(figs[0])
        .and_then(|o| o.first_attr(&dpapi::Attribute::FileUrl).cloned())
        .expect("FILE_URL survives the rename");
    println!("figure-3.gif was downloaded from {url}");

    // Attribution query 2: the copied file's ancestry reaches the
    // original download, whose FILE_URL names the (now offline) page.
    let copies = waldo.db.find_by_name("/home/presentation/epigraph.txt");
    assert_eq!(copies.len(), 1);
    let obj = waldo.db.object(copies[0]).unwrap();
    let v = dpapi::Version(obj.current);
    let ancestry = waldo.db.ancestors(dpapi::ObjectRef::new(copies[0], v));
    let source_url = ancestry.iter().find_map(|a| {
        waldo
            .db
            .object(a.pnode)
            .and_then(|o| o.first_attr(&dpapi::Attribute::FileUrl).cloned())
    });
    let source_url = source_url.expect("the copy's ancestry reaches the download");
    println!("epigraph.txt ultimately came from {source_url}");
    assert_eq!(
        source_url,
        dpapi::Value::str("http://uni.example/quotes/knuth.txt")
    );
    println!("attribution recovered for both files — even the offline one");
}
