//! The Figure 1 scenario: finding the source of an anomaly across
//! three provenance layers.
//!
//! A Kepler workflow runs on a workstation, reading inputs from one
//! PA-NFS server and writing outputs to another, with intermediates
//! on the local disk. Between two runs, a colleague silently modifies
//! one input on the first server. Neither Kepler's provenance nor the
//! file-system provenance alone can explain the changed output; the
//! integrated provenance can (paper §3.1).
//!
//! ```text
//! cargo run --example workflow_anomaly
//! ```

use dpapi::VolumeId;
use kepler::{fmri_workflow, populate_inputs, ChallengePaths, DpapiRecorder};
use passv2::Pass;
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::basefs::BaseFs;
use sim_os::syscall::Kernel;

fn main() {
    let clock = Clock::new();
    let model = CostModel::default();

    // The workstation, with two PA-NFS mounts and a local disk.
    let mut kernel = Kernel::new(clock.clone(), model);
    let server1 = pa_nfs::pa_server(clock.clone(), model, VolumeId(11));
    let server2 = pa_nfs::pa_server(clock.clone(), model, VolumeId(12));
    kernel.mount("/", Box::new(BaseFs::new(clock.clone(), model)));
    kernel.mount(
        "/mnt/inputs",
        Box::new(pa_nfs::client(&server1, clock.clone(), model)),
    );
    kernel.mount(
        "/mnt/outputs",
        Box::new(pa_nfs::client(&server2, clock.clone(), model)),
    );
    let pass = Pass::new_shared();
    kernel.install_module(pass.clone());

    let paths = ChallengePaths {
        input_dir: "/mnt/inputs".into(),
        work_dir: "/work".into(),
        output_dir: "/mnt/outputs".into(),
    };

    let setup = kernel.spawn_init("setup");
    kernel.mkdir_p(setup, "/work").unwrap();
    populate_inputs(&mut kernel, setup, &paths, 0).unwrap();
    kernel.exit(setup);

    // Monday: run the workflow.
    let monday_pid = kernel.spawn_init("kepler");
    let wf = fmri_workflow(&paths);
    let mut rec = DpapiRecorder::new();
    kepler::run(&wf, &mut kernel, monday_pid, &mut rec).unwrap();
    kernel.exit(monday_pid);
    let monday_atlas = {
        let p = kernel.spawn_init("cat");
        let out = kernel.read_file(p, &paths.atlas_gif("x")).unwrap();
        kernel.exit(p);
        out
    };

    // Tuesday: a colleague silently modifies anatomy2.img on server 1.
    let colleague = kernel.spawn_init("colleague");
    kernel
        .write_file(colleague, &paths.anatomy(2), &vec![0x5au8; 2048])
        .unwrap();
    kernel.exit(colleague);

    // Wednesday: run again; the output differs.
    let wednesday_pid = kernel.spawn_init("kepler");
    let wf = fmri_workflow(&paths);
    let mut rec = DpapiRecorder::new();
    kepler::run(&wf, &mut kernel, wednesday_pid, &mut rec).unwrap();
    kernel.exit(wednesday_pid);
    let wednesday_atlas = {
        let p = kernel.spawn_init("cat");
        let out = kernel.read_file(p, &paths.atlas_gif("x")).unwrap();
        kernel.exit(p);
        out
    };
    assert_ne!(monday_atlas, wednesday_atlas, "the anomaly must manifest");
    println!("outputs differ between Monday and Wednesday runs — why?");

    // Ingest provenance from BOTH servers into one database (the
    // query spans layers and machines).
    let db = waldo::ProvDb::new();
    for server in [&server1, &server2] {
        for image in server.borrow_mut().drain_provenance_logs() {
            let (entries, _) = lasagna::parse_log(&image);
            db.ingest(&entries);
        }
    }

    // The paper's query: all ancestors of the changed output. This
    // machine assembles its kernel by hand (no `System`), so it calls
    // the planned pipeline directly — `query_with_stats` is what
    // `System::query` wraps. The name predicate resolves through the
    // store's attribute index; no volume scan.
    let out = pql::query_with_stats(
        &format!(
            r#"select Ancestor
               from Provenance.file as Atlas
                    Atlas.input* as Ancestor
               where Atlas.name = "{}""#,
            paths.atlas_gif("x")
        ),
        &db,
    )
    .expect("query");
    println!(
        "planner: {} index hit(s), {} row(s) pruned at the root, {} closure walk(s) saved",
        out.stats.index_hits, out.stats.rows_pruned, out.stats.closure_calls_saved
    );
    assert_eq!(out.stats.scan_bindings, 0, "indexed, not scanned");
    let result = out.result;

    // The ancestry must span: output file (server 2), Kepler operators
    // (disclosed via DPAPI), and both versions of the modified input
    // (server 1) — the integrated view no single layer has.
    let mut found_operator = false;
    let mut input_versions = Vec::new();
    for node in result.nodes() {
        if let Some(obj) = db.object(node.pnode) {
            let ty = obj.first_attr(&dpapi::Attribute::Type).cloned();
            let name = obj.first_attr(&dpapi::Attribute::Name).cloned();
            if ty == Some(dpapi::Value::str("OPERATOR")) {
                found_operator = true;
            }
            if let Some(dpapi::Value::Str(n)) = &name {
                if n.contains("anatomy2.img") {
                    input_versions.push(node);
                }
            }
        }
    }
    assert!(found_operator, "Kepler operators appear in the ancestry");
    assert!(
        !input_versions.is_empty(),
        "the modified input appears in the ancestry"
    );
    println!(
        "ancestry spans {} objects across two NFS servers and the workflow engine",
        result.len()
    );
    println!(
        "the modified input anatomy2.img appears at versions {:?}",
        input_versions
            .iter()
            .map(|r| r.version.0)
            .collect::<Vec<_>>()
    );
    println!("anomaly explained: Wednesday's atlas descends from the modified input");
}
