//! The PA-Python use cases (paper §3.3): the Iowa State thermography
//! group's crack-heating analysis.
//!
//! The analysis script reads *every* XML experiment log to decide
//! which ones to use, so PASS alone reports that the plot derives
//! from all of them. The wrapped `crack_heat` routine knows which
//! documents were actually used, but not where they came from. The
//! layered view answers both: exactly which XML files contributed to
//! the plot, with full file-level ancestry.
//!
//! ```text
//! cargo run --example python_data_origin
//! ```

use pa_python::Interp;
use passv2::System;

fn main() {
    let mut sys = System::single_volume();
    let pid = sys.spawn("pythonette");
    sys.kernel.mkdir_p(pid, "/experiments").unwrap();

    // 12 experiment logs; only class-A experiments are used.
    for i in 0..12 {
        let class = if i % 3 == 0 { "classA" } else { "classB" };
        let body = format!(
            "<experiment><id>{i}</id><class>{class}</class><heat>{}</heat></experiment>",
            20 + i
        );
        sys.kernel
            .write_file(pid, &format!("/experiments/exp{i:02}.xml"), body.as_bytes())
            .unwrap();
    }

    let mut interp = Interp::new(pid);
    interp.wrap("crack_heat");
    interp
        .run(
            &mut sys.kernel,
            r#"
            def crack_heat(doc) {
                return xml_field(doc, "heat");
            }
            let heats = [];
            for path in list_dir("/experiments") {
                let doc = read_file(path);        # reads EVERY file
                if contains(doc, "classA") {      # uses only class A
                    push(heats, crack_heat(doc));
                }
            }
            let plot = "";
            for h in heats {
                plot = plot + h + "\n";
            }
            write_file("/plot.dat", plot);
            "#,
        )
        .expect("analysis runs");

    // The plot text lost its origins through `+` (the documented
    // wrapper blind spot), but the wrapped invocations captured the
    // used documents.
    println!(
        "wrapped invocations: {} (one per class-A document)",
        interp.invocations.len()
    );
    assert_eq!(interp.invocations.len(), 4);

    // Build the database and compare the two views.
    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut waldo = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            waldo.ingest_log_file(&mut sys.kernel, &log);
        }
    }

    // System layer alone: the interpreter process read all 12 files.
    let procs = waldo.db.find_by_type("PROC");
    let read_count = procs
        .iter()
        .filter_map(|p| waldo.db.object(*p))
        .flat_map(|o| o.versions.into_values())
        .flat_map(|v| v.inputs.into_iter())
        .filter_map(|(_, r)| waldo.db.object(r.pnode))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
        .filter(|n| n.to_string().contains("/experiments/"))
        .count();
    println!("PASS view: the process read {read_count} experiment files");
    assert!(read_count >= 12, "PASS sees every read");

    // Layered view: the invocation objects name exactly the used docs.
    let funcs = waldo.db.find_by_type("FUNCTION");
    assert_eq!(funcs.len(), 4, "one invocation object per used document");
    let mut used = Vec::new();
    for f in &funcs {
        let obj = waldo.db.object(*f).unwrap();
        for v in obj.versions.values() {
            for (_, input) in &v.inputs {
                if let Some(name) = waldo
                    .db
                    .object(input.pnode)
                    .and_then(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
                {
                    let n = name.to_string();
                    if n.contains("/experiments/") && !used.contains(&n) {
                        used.push(n);
                    }
                }
            }
        }
    }
    used.sort();
    println!("layered view: the plot actually used {used:?}");
    assert_eq!(used.len(), 4);
    assert!(used.iter().all(|n| {
        // exp00, exp03, exp06, exp09 are the class-A experiments.
        n.contains("exp00") || n.contains("exp03") || n.contains("exp06") || n.contains("exp09")
    }));
    println!("data origin resolved: 4 of 12 files contributed, with full ancestry");
}
