//! Quickstart: boot a PASSv2 machine, run a process, query ancestry.
//!
//! This walks the seven components of the paper's Figure 2 end to
//! end: the process's system calls are intercepted, the observer
//! turns them into records, the analyzer deduplicates them, the
//! distributor materializes the process onto the volume, Lasagna logs
//! everything write-ahead, Waldo builds the database, and PQL answers
//! the ancestry question.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use passv2::System;

fn main() {
    // A machine with one provenance-aware volume mounted at `/`.
    let mut sys = System::single_volume();

    // A process transforms an input file into an output file.
    let pid = sys.spawn("/usr/bin/transform");
    sys.kernel
        .execve(
            pid,
            "/usr/bin/transform",
            &["transform".into(), "in.dat".into(), "out.dat".into()],
            &["USER=alice".into()],
        )
        .ok();
    sys.kernel
        .write_file(pid, "/in.dat", b"the input data")
        .unwrap();
    let data = sys.kernel.read_file(pid, "/in.dat").unwrap();
    let transformed: Vec<u8> = data.iter().map(|b| b.to_ascii_uppercase()).collect();
    sys.kernel
        .write_file(pid, "/out.dat", &transformed)
        .unwrap();
    sys.kernel.exit(pid);

    // Waldo ingests the provenance log.
    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut waldo = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            waldo.ingest_log_file(&mut sys.kernel, &log);
        }
    }

    // Ask PQL where /out.dat came from — through `System::query`,
    // the planned pipeline: the `name` predicate is pushed down into
    // Waldo's attribute index instead of scanning the volume.
    let out = sys
        .query(
            &mut waldo,
            r#"select Ancestor
               from Provenance.file as Out
                    Out.input* as Ancestor
               where Out.name = "/out.dat""#,
        )
        .expect("query");
    let result = out.result;

    println!(
        "planner: {} index hit(s), {} predicate(s) pushed, {} row(s) pruned, \
         {} closure walk(s) saved",
        out.stats.index_hits,
        out.stats.predicates_pushed,
        out.stats.rows_pruned,
        out.stats.closure_calls_saved,
    );
    assert_eq!(
        out.stats.scan_bindings, 0,
        "the root binding resolves via the index, not a scan"
    );
    println!("ancestry of /out.dat ({} objects):", result.len());
    for node in result.nodes() {
        let name = waldo
            .db
            .object(node.pnode)
            .and_then(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
            .map(|v| v.to_string())
            .unwrap_or_else(|| "<unnamed>".into());
        let ty = waldo
            .db
            .object(node.pnode)
            .and_then(|o| o.first_attr(&dpapi::Attribute::Type).cloned())
            .map(|v| v.to_string())
            .unwrap_or_else(|| "?".into());
        println!("  {node}  type={ty} name={name}");
    }

    // The chain must include the process and the input file.
    let names: Vec<String> = result
        .nodes()
        .iter()
        .filter_map(|n| waldo.db.object(n.pnode))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
        .map(|v| v.to_string())
        .collect();
    assert!(names.iter().any(|n| n.contains("in.dat")));
    assert!(names.iter().any(|n| n.contains("transform")));
    println!("\nquickstart OK: output provably derives from /in.dat via the process");
}
