//! The paper's Figure 1 / §3.1 use case as an integration test:
//! three provenance layers (workflow engine, local FS, two PA-NFS
//! servers), a silent input modification, and the cross-layer query
//! that explains the anomaly.

use dpapi::VolumeId;
use kepler::{fmri_workflow, populate_inputs, ChallengePaths, DpapiRecorder};
use passv2::Pass;
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::basefs::BaseFs;
use sim_os::syscall::Kernel;

struct Rig {
    kernel: Kernel,
    server1: std::rc::Rc<std::cell::RefCell<pa_nfs::NfsServer>>,
    server2: std::rc::Rc<std::cell::RefCell<pa_nfs::NfsServer>>,
    paths: ChallengePaths,
}

fn build_rig() -> Rig {
    let clock = Clock::new();
    let model = CostModel::default();
    let mut kernel = Kernel::new(clock.clone(), model);
    let server1 = pa_nfs::pa_server(clock.clone(), model, VolumeId(21));
    let server2 = pa_nfs::pa_server(clock.clone(), model, VolumeId(22));
    kernel.mount("/", Box::new(BaseFs::new(clock.clone(), model)));
    kernel.mount(
        "/mnt/in",
        Box::new(pa_nfs::client(&server1, clock.clone(), model)),
    );
    kernel.mount(
        "/mnt/out",
        Box::new(pa_nfs::client(&server2, clock.clone(), model)),
    );
    kernel.install_module(Pass::new_shared());
    let paths = ChallengePaths {
        input_dir: "/mnt/in".into(),
        work_dir: "/work".into(),
        output_dir: "/mnt/out".into(),
    };
    let setup = kernel.spawn_init("setup");
    kernel.mkdir_p(setup, "/work").unwrap();
    populate_inputs(&mut kernel, setup, &paths, 0).unwrap();
    kernel.exit(setup);
    Rig {
        kernel,
        server1,
        server2,
        paths,
    }
}

fn run_workflow(rig: &mut Rig) -> Vec<u8> {
    let pid = rig.kernel.spawn_init("kepler");
    let wf = fmri_workflow(&rig.paths);
    let mut rec = DpapiRecorder::new();
    kepler::run(&wf, &mut rig.kernel, pid, &mut rec).unwrap();
    rig.kernel.exit(pid);
    let p = rig.kernel.spawn_init("cat");
    let out = rig.kernel.read_file(p, &rig.paths.atlas_gif("x")).unwrap();
    rig.kernel.exit(p);
    out
}

fn build_db(rig: &mut Rig) -> waldo::ProvDb {
    let db = waldo::ProvDb::new();
    for server in [&rig.server1, &rig.server2] {
        for image in server.borrow_mut().drain_provenance_logs() {
            let (entries, _) = lasagna::parse_log(&image);
            db.ingest(&entries);
        }
    }
    db
}

#[test]
fn modified_input_is_found_in_cross_layer_ancestry() {
    let mut rig = build_rig();
    let monday = run_workflow(&mut rig);

    // A colleague silently modifies one input on server 1.
    let colleague = rig.kernel.spawn_init("colleague");
    rig.kernel
        .write_file(colleague, &rig.paths.anatomy(2), &vec![0x77u8; 2048])
        .unwrap();
    rig.kernel.exit(colleague);

    let wednesday = run_workflow(&mut rig);
    assert_ne!(monday, wednesday, "the modification must change the output");

    let db = build_db(&mut rig);
    let rs = pql::query(
        &format!(
            "select Ancestor from Provenance.file as Atlas \
             Atlas.input* as Ancestor where Atlas.name = '{}'",
            rig.paths.atlas_gif("x")
        ),
        &db,
    )
    .unwrap();

    // The ancestry spans both NFS volumes...
    let volumes: std::collections::HashSet<u32> =
        rs.nodes().iter().map(|n| n.pnode.volume.0).collect();
    assert!(volumes.contains(&21), "input server objects in ancestry");
    assert!(volumes.contains(&22), "output server objects in ancestry");

    // ...includes Kepler operators (the workflow layer)...
    let has_operator = rs.nodes().iter().any(|n| {
        db.object(n.pnode)
            .and_then(|o| o.first_attr(&dpapi::Attribute::Type).cloned())
            == Some(dpapi::Value::str("OPERATOR"))
    });
    assert!(has_operator, "workflow-layer objects in ancestry");

    // ...and reaches the modified input file.
    let has_modified_input = rs.nodes().iter().any(|n| {
        db.object(n.pnode)
            .and_then(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
            .map(|v| v.to_string().contains("anatomy2.img"))
            .unwrap_or(false)
    });
    assert!(has_modified_input, "the culprit input is identified");
}

#[test]
fn identical_reruns_produce_identical_outputs() {
    let mut rig = build_rig();
    let first = run_workflow(&mut rig);
    let second = run_workflow(&mut rig);
    assert_eq!(first, second);
}

#[test]
fn kepler_only_view_cannot_see_the_modification() {
    // Run twice with a modification in between; the workflow-layer
    // provenance (operator names, parameters, wiring) is identical
    // for both runs — only the integrated view differs.
    let mut rig = build_rig();
    let wf1 = fmri_workflow(&rig.paths);
    let names1: Vec<String> = wf1.operators.iter().map(|o| o.name.clone()).collect();
    run_workflow(&mut rig);
    let colleague = rig.kernel.spawn_init("colleague");
    rig.kernel
        .write_file(colleague, &rig.paths.anatomy(2), &vec![1u8; 2048])
        .unwrap();
    rig.kernel.exit(colleague);
    run_workflow(&mut rig);
    let wf2 = fmri_workflow(&rig.paths);
    let names2: Vec<String> = wf2.operators.iter().map(|o| o.name.clone()).collect();
    assert_eq!(
        names1, names2,
        "the workflow engine sees two identical executions"
    );
}
