//! The PA-Python use cases of §3.3 as integration tests: data origin
//! (which XML files fed the plot) and process validation (which
//! outputs were produced by the buggy routine from the upgraded
//! library).

use pa_python::Interp;
use passv2::System;

fn ingest(sys: &mut System) -> waldo::Waldo {
    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut w = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            w.ingest_log_file(&mut sys.kernel, &log);
        }
    }
    w
}

#[test]
fn data_origin_reads_all_uses_some() {
    let mut sys = System::single_volume();
    let pid = sys.spawn("pythonette");
    sys.kernel.mkdir_p(pid, "/xml").unwrap();
    for i in 0..6 {
        let class = if i < 2 { "classA" } else { "classB" };
        sys.kernel
            .write_file(
                pid,
                &format!("/xml/e{i}.xml"),
                format!("<c>{class}</c><heat>{i}</heat>").as_bytes(),
            )
            .unwrap();
    }
    let mut interp = Interp::new(pid);
    interp.wrap("crack_heat");
    interp
        .run(
            &mut sys.kernel,
            r#"
            def crack_heat(doc) { return xml_field(doc, "heat"); }
            let out = "";
            for p in list_dir("/xml") {
                let d = read_file(p);
                if contains(d, "classA") {
                    out = out + crack_heat(d);
                }
            }
            write_file("/plot.dat", out);
            "#,
        )
        .unwrap();
    // Two class-A docs used out of six read.
    assert_eq!(interp.invocations.len(), 2);
    let w = ingest(&mut sys);
    assert_eq!(w.db.find_by_type("FUNCTION").len(), 2);
}

#[test]
fn process_validation_library_upgrade() {
    // "They upgraded the Python libraries ... introducing bugs in a
    // calculation routine. The group ... wanted to identify the
    // results that were affected by the erroneous routine." The
    // layered query is: descendants of the NEW library version that
    // also descend from a calc_heat invocation.
    let mut sys = System::single_volume();
    let pid = sys.spawn("pythonette");
    sys.kernel.mkdir_p(pid, "/lib").unwrap();

    // The library is itself a file the interpreter reads.
    sys.kernel
        .write_file(pid, "/lib/calc.py", b"def calc_heat... v1")
        .unwrap();

    let analysis = r#"
        def calc_heat(doc) { return xml_field(doc, "t"); }
        def unrelated(doc) { return "x"; }
        let lib = read_file("/lib/calc.py");   # loads the library
        let d1 = read_file("/data1.xml");
        let d2 = read_file("/data2.xml");
        write_file(out1, calc_heat(d1));       # uses the routine
        write_file(out2, unrelated(d2));       # does not
    "#;

    sys.kernel
        .write_file(pid, "/data1.xml", b"<t>97</t>")
        .unwrap();
    sys.kernel
        .write_file(pid, "/data2.xml", b"<t>82</t>")
        .unwrap();

    // Run 1 with the old library.
    let mut i1 = Interp::new(pid);
    i1.wrap("calc_heat");
    i1.run(
        &mut sys.kernel,
        &format!("let out1 = \"/r1-heat.out\"; let out2 = \"/r1-other.out\";{analysis}"),
    )
    .unwrap();

    // The upgrade: a new library version (the file is rewritten).
    sys.kernel
        .write_file(pid, "/lib/calc.py", b"def calc_heat... v2 BUGGY")
        .unwrap();

    // Run 2 with the new library, in a fresh process.
    let pid2 = sys.kernel.spawn_init("pythonette");
    let mut i2 = Interp::new(pid2);
    i2.wrap("calc_heat");
    i2.run(
        &mut sys.kernel,
        &format!("let out1 = \"/r2-heat.out\"; let out2 = \"/r2-other.out\";{analysis}"),
    )
    .unwrap();

    let w = ingest(&mut sys);

    // The library file object.
    let files = w.db.find_by_type("FILE");
    let lib = *w
        .db
        .find_by_name("/lib/calc.py")
        .iter()
        .find(|p| files.contains(p))
        .expect("library file recorded");

    // Outputs affected by the bug: descend from BOTH the library (at
    // its new version — the process read it after the rewrite) AND a
    // calc_heat invocation.
    let calc_invocations: Vec<dpapi::Pnode> =
        w.db.find_by_type("FUNCTION")
            .into_iter()
            .filter(|p| {
                w.db.object(*p)
                    .and_then(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
                    == Some(dpapi::Value::str("calc_heat"))
            })
            .collect();
    assert_eq!(calc_invocations.len(), 2, "one calc invocation per run");

    let affected: Vec<String> = [
        "/r1-heat.out",
        "/r1-other.out",
        "/r2-heat.out",
        "/r2-other.out",
    ]
    .iter()
    .filter_map(|name| {
        let p = *w.db.find_by_name(name).iter().find(|p| files.contains(p))?;
        let obj = w.db.object(p)?;
        let v = dpapi::Version(obj.current);
        let anc = w.db.ancestors(dpapi::ObjectRef::new(p, v));
        // Descends from the library's POST-UPGRADE version?
        let lib_obj = w.db.object(lib)?;
        let new_lib_version = dpapi::Version(lib_obj.current);
        let from_new_lib = anc
            .iter()
            .any(|r| r.pnode == lib && r.version == new_lib_version);
        // Descends from a calc_heat invocation?
        let from_calc = anc.iter().any(|r| calc_invocations.contains(&r.pnode));
        (from_new_lib && from_calc).then(|| name.to_string())
    })
    .collect();

    assert_eq!(
        affected,
        vec!["/r2-heat.out".to_string()],
        "exactly the post-upgrade calc output is implicated"
    );
}

#[test]
fn wrapper_blind_spot_is_layer_visible() {
    // PASS still sees what the wrappers miss: even though `+` drops
    // the value origin, the file-level dependency (process read the
    // input, wrote the output) survives at the OS layer.
    let mut sys = System::single_volume();
    let pid = sys.spawn("pythonette");
    sys.kernel.write_file(pid, "/in.txt", b"abc").unwrap();
    let mut interp = Interp::new(pid);
    interp
        .run(
            &mut sys.kernel,
            r#"
            let d = read_file("/in.txt");
            let mangled = d + d + "!";    # origins lost here
            write_file("/out.txt", mangled);
            "#,
        )
        .unwrap();
    let w = ingest(&mut sys);
    let files = w.db.find_by_type("FILE");
    let out = *w
        .db
        .find_by_name("/out.txt")
        .iter()
        .find(|p| files.contains(p))
        .unwrap();
    let obj = w.db.object(out).unwrap();
    let v = dpapi::Version(obj.current);
    let anc = w.db.ancestors(dpapi::ObjectRef::new(out, v));
    let ins = w.db.find_by_name("/in.txt");
    assert!(
        anc.iter().any(|r| ins.contains(&r.pnode)),
        "the OS layer preserves the file dependency the wrappers lost"
    );
}
