//! End-to-end write-ahead-provenance recovery: run real activity
//! through the full stack, simulate a crash, and verify that recovery
//! identifies exactly the data whose provenance is inconsistent.

use dpapi::VolumeId;
use lasagna::{recover, InconsistencyReason, Lasagna, LasagnaConfig, PASS_DIR};
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::basefs::BaseFs;
use sim_os::fs::FileSystem;

fn volume() -> Lasagna {
    let clock = Clock::new();
    let model = CostModel::default();
    Lasagna::new(
        Box::new(BaseFs::new(clock.clone(), model)),
        clock,
        model,
        LasagnaConfig::new(VolumeId(1)),
    )
    .unwrap()
}

fn collect_logs(v: &mut Lasagna) -> Vec<Vec<u8>> {
    use sim_os::fs::DpapiVolume;
    v.force_log_rotation();
    let lower = v.lower_mut();
    let root = lower.root();
    let dir = lower.lookup(root, PASS_DIR).unwrap();
    let mut images = Vec::new();
    for e in lower.readdir(dir).unwrap() {
        let size = lower.getattr(e.ino).unwrap().size as usize;
        if size > 0 {
            images.push(lower.read(e.ino, 0, size).unwrap());
        }
    }
    images
}

#[test]
fn clean_volume_verifies_completely() {
    use dpapi::{Bundle, Dpapi};
    use sim_os::fs::DpapiVolume;
    let mut v = volume();
    let root = v.root();
    for i in 0..20 {
        let ino = v.create(root, &format!("f{i}")).unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        v.pass_write(h, 0, format!("contents {i}").as_bytes(), Bundle::new())
            .unwrap();
    }
    let logs = collect_logs(&mut v);
    let report = recover(v.lower_mut(), &logs);
    assert_eq!(report.verified_writes, 20);
    assert!(report.inconsistent.is_empty());
    assert_eq!(report.truncated_logs, 0);
    assert_eq!(report.corrupt_logs, 0);
}

#[test]
fn torn_data_write_is_pinpointed() {
    use dpapi::{Bundle, Dpapi};
    use sim_os::fs::DpapiVolume;
    let mut v = volume();
    let root = v.root();
    let mut inos = Vec::new();
    for i in 0..5 {
        let ino = v.create(root, &format!("f{i}")).unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        v.pass_write(h, 0, b"stable data", Bundle::new()).unwrap();
        inos.push(ino);
    }
    let logs = collect_logs(&mut v);

    // The crash tears file f2's data (half-written).
    let lower = v.lower_mut();
    lower.write(inos[2], 0, b"TORN").unwrap();

    let report = recover(lower, &logs);
    assert_eq!(report.verified_writes, 4);
    assert_eq!(report.inconsistent.len(), 1);
    assert_eq!(
        report.inconsistent[0].reason,
        InconsistencyReason::DigestMismatch
    );
}

#[test]
fn truncated_log_still_recovers_earlier_writes() {
    use dpapi::{Bundle, Dpapi};
    use sim_os::fs::DpapiVolume;
    let mut v = volume();
    let root = v.root();
    for i in 0..10 {
        let ino = v.create(root, &format!("g{i}")).unwrap();
        let h = v.handle_for_ino(ino).unwrap();
        v.pass_write(h, 0, b"payload bytes", Bundle::new()).unwrap();
    }
    let mut logs = collect_logs(&mut v);
    // Crash mid-append: chop the final log's tail.
    if let Some(last) = logs.last_mut() {
        let n = last.len();
        last.truncate(n - 7);
    }
    let report = recover(v.lower_mut(), &logs);
    assert_eq!(report.truncated_logs, 1);
    assert!(
        report.verified_writes >= 8,
        "most writes verified: {}",
        report.verified_writes
    );
    // The allocator can resume safely past every seen pnode.
    assert!(report.max_pnode >= 10);
}

#[test]
fn full_system_crash_recovery_via_kernel() {
    // Run activity through the kernel + module, then recover from the
    // on-disk logs alone.
    let mut sys = passv2::System::single_volume();
    let pid = sys.spawn("worker");
    sys.kernel.write_file(pid, "/a", b"alpha").unwrap();
    let data = sys.kernel.read_file(pid, "/a").unwrap();
    sys.kernel.write_file(pid, "/b", &data).unwrap();
    sys.kernel.exit(pid);

    // Read the raw logs through an exempt process.
    let reader = sys.kernel.spawn_init("reader");
    sys.pass.exempt(reader);
    let mut logs = Vec::new();
    for (_, rotated) in sys.rotate_all_logs() {
        for path in rotated {
            logs.push(sys.kernel.read_file(reader, &path).unwrap());
        }
    }
    assert!(!logs.is_empty());
    // Recovery over a replica: rebuild just the file contents.
    let clock = Clock::new();
    let model = CostModel::default();
    let mut replica = BaseFs::new(clock, model);
    let _root = replica.root();
    // INO numbers from the live system: a=/a, b=/b were inos 2 and 3
    // in creation order on a fresh volume (1 is the .pass dir, then
    // log.0, then the files) — instead of guessing, recreate with the
    // same sequence the volume used: .pass dir (ino X) etc. We simply
    // verify structural results (entries parsed, pnodes seen).
    let report = recover(&mut replica, &logs);
    assert!(report.entries_scanned > 0);
    assert!(report.max_pnode >= 2, "both files got pnodes");
    // On the replica the data is missing, so data writes flag as
    // UnknownFile/MissingData — recovery never silently passes.
    assert!(!report.inconsistent.is_empty());
}

#[test]
fn machine_crash_with_checkpoint_cold_restarts_waldo() {
    // The full stack: syscalls → Lasagna logs → durable Waldo with
    // checkpoints → machine crash → cold restart → identical queries.
    let mut sys = passv2::System::single_volume();
    let worker = sys.spawn("worker");
    let (_, m, _) = sys.volumes[0];
    let mut waldo = sys.spawn_waldo_durable("/waldo-db");

    // Wave 1 is checkpointed; wave 2 survives only in retained logs.
    sys.kernel
        .write_file(worker, "/src.c", b"int main(){}")
        .unwrap();
    let data = sys.kernel.read_file(worker, "/src.c").unwrap();
    sys.kernel.write_file(worker, "/src.o", &data).unwrap();
    sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
    waldo.poll_volume(&mut sys.kernel, m, "/");
    waldo.checkpoint(&mut sys.kernel).unwrap();

    let obj = sys.kernel.read_file(worker, "/src.o").unwrap();
    sys.kernel.write_file(worker, "/a.out", &obj).unwrap();
    sys.kernel.dpapi_at(m).unwrap().force_log_rotation();
    waldo.poll_volume(&mut sys.kernel, m, "/");

    let reference_images = waldo.db.segment_images();
    drop(waldo); // machine crash: daemon memory gone, disks survive

    let restarted = sys.restart_waldo("/waldo-db");
    let report = restarted.restart_report().expect("cold start ran");
    assert!(report.loaded_seq.is_some(), "checkpoint must load");
    assert!(report.replayed_entries > 0, "wave 2 must replay from logs");
    assert_eq!(restarted.db.segment_images(), reference_images);

    // The rebuilt database answers the paper's lineage query: the
    // binary's ancestry reaches the source file.
    let outs = restarted.db.find_by_name("/a.out");
    assert_eq!(outs.len(), 1);
    let v = dpapi::Version(restarted.db.object(outs[0]).unwrap().current);
    let anc = restarted.db.ancestors(dpapi::ObjectRef::new(outs[0], v));
    let srcs = restarted.db.find_by_name("/src.c");
    assert_eq!(srcs.len(), 1);
    assert!(
        anc.iter().any(|r| r.pnode == srcs[0]),
        "/a.out ancestry must reach /src.c after cold restart"
    );
}
