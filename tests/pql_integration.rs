//! PQL over a real provenance database built by the full stack:
//! the paper's sample query, descendant queries, aggregates and
//! sub-queries.

use passv2::System;

/// Builds a database from a small shell-pipeline-like scenario:
/// `gen` writes raw.dat; `filter` reads raw.dat and writes out.dat;
/// `report` reads out.dat and writes report.txt.
fn scenario_db() -> (waldo::Waldo, System) {
    let mut sys = System::single_volume();
    for (exe, input, output) in [
        ("/bin/gen", None, Some("/raw.dat")),
        ("/bin/filter", Some("/raw.dat"), Some("/out.dat")),
        ("/bin/report", Some("/out.dat"), Some("/report.txt")),
    ] {
        let pid = sys.kernel.spawn_init(exe);
        sys.kernel.execve(pid, exe, &[exe.to_string()], &[]).ok();
        let data = match input {
            Some(path) => sys.kernel.read_file(pid, path).unwrap(),
            None => b"seed".to_vec(),
        };
        if let Some(path) = output {
            let mut out = data.clone();
            out.extend_from_slice(exe.as_bytes());
            sys.kernel.write_file(pid, path, &out).unwrap();
        }
        sys.kernel.exit(pid);
    }
    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut w = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            w.ingest_log_file(&mut sys.kernel, &log);
        }
    }
    (w, sys)
}

#[test]
fn paper_query_shape_over_real_data() {
    let (w, _sys) = scenario_db();
    let rs = pql::query(
        r#"select Ancestor
           from Provenance.file as F
                F.input* as Ancestor
           where F.name = "/report.txt""#,
        &w.db,
    )
    .unwrap();
    // Ancestry reaches back through both processes to the seed file.
    let names: Vec<String> = rs
        .nodes()
        .iter()
        .filter_map(|n| w.db.object(n.pnode))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Name))
        .map(|v| v.to_string())
        .collect();
    assert!(names.iter().any(|n| n.contains("/out.dat")));
    assert!(names.iter().any(|n| n.contains("/raw.dat")));
    assert!(names.iter().any(|n| n.contains("/bin/filter")));
    assert!(names.iter().any(|n| n.contains("/bin/gen")));
}

#[test]
fn descendant_query_finds_taint() {
    let (w, _sys) = scenario_db();
    let rs = pql::query(
        "select D from Provenance.file as F F.input~* as D \
         where F.name = '/raw.dat'",
        &w.db,
    )
    .unwrap();
    let names: Vec<String> = rs
        .nodes()
        .iter()
        .filter_map(|n| w.db.object(n.pnode))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Name))
        .map(|v| v.to_string())
        .collect();
    assert!(names.iter().any(|n| n.contains("/out.dat")));
    assert!(names.iter().any(|n| n.contains("/report.txt")));
}

#[test]
fn aggregates_and_filters() {
    let (w, _sys) = scenario_db();
    let rs = pql::query(
        "select count(A) as n from Provenance.file as F F.input+ as A \
         where F.name = '/report.txt'",
        &w.db,
    )
    .unwrap();
    let n = rs.rows[0][0].as_int().unwrap();
    assert!(n >= 4, "at least files+procs in the closure, got {n}");

    // A like-filter over names.
    let rs = pql::query(
        "select F.name from Provenance.file as F where F.name like '/*.dat'",
        &w.db,
    )
    .unwrap();
    assert_eq!(rs.len(), 2, "raw.dat and out.dat");
}

#[test]
fn subquery_connects_layers() {
    let (w, _sys) = scenario_db();
    // Which processes are a *direct* input of some file? (membership
    // subquery; PQL subqueries are uncorrelated, as in Lorel)
    let rs = pql::query(
        "select P.name from Provenance.proc as P \
         where P in (select Src from Provenance.file as F F.input as Src)",
        &w.db,
    )
    .unwrap();
    let names: Vec<&str> = rs.rows.iter().filter_map(|r| r[0].as_str()).collect();
    assert!(names.contains(&"/bin/gen"));
    assert!(names.contains(&"/bin/filter"));
    assert!(names.contains(&"/bin/report"));
}

#[test]
fn queries_are_deterministic() {
    let (w, _sys) = scenario_db();
    let q = "select A from Provenance.file as F F.input* as A where F.name = '/report.txt'";
    let a = pql::query(q, &w.db).unwrap();
    let b = pql::query(q, &w.db).unwrap();
    assert_eq!(a.rows, b.rows);
}
