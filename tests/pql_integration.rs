//! PQL over a real provenance database built by the full stack:
//! the paper's sample query, descendant queries, aggregates and
//! sub-queries.

use passv2::System;

/// Builds a database from a small shell-pipeline-like scenario:
/// `gen` writes raw.dat; `filter` reads raw.dat and writes out.dat;
/// `report` reads out.dat and writes report.txt.
fn scenario_db() -> (waldo::Waldo, System) {
    let mut sys = System::single_volume();
    for (exe, input, output) in [
        ("/bin/gen", None, Some("/raw.dat")),
        ("/bin/filter", Some("/raw.dat"), Some("/out.dat")),
        ("/bin/report", Some("/out.dat"), Some("/report.txt")),
    ] {
        let pid = sys.kernel.spawn_init(exe);
        sys.kernel.execve(pid, exe, &[exe.to_string()], &[]).ok();
        let data = match input {
            Some(path) => sys.kernel.read_file(pid, path).unwrap(),
            None => b"seed".to_vec(),
        };
        if let Some(path) = output {
            let mut out = data.clone();
            out.extend_from_slice(exe.as_bytes());
            sys.kernel.write_file(pid, path, &out).unwrap();
        }
        sys.kernel.exit(pid);
    }
    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut w = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            w.ingest_log_file(&mut sys.kernel, &log);
        }
    }
    (w, sys)
}

#[test]
fn paper_query_shape_over_real_data() {
    let (w, _sys) = scenario_db();
    let rs = pql::query(
        r#"select Ancestor
           from Provenance.file as F
                F.input* as Ancestor
           where F.name = "/report.txt""#,
        &w.db,
    )
    .unwrap();
    // Ancestry reaches back through both processes to the seed file.
    let names: Vec<String> = rs
        .nodes()
        .iter()
        .filter_map(|n| w.db.object(n.pnode))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
        .map(|v| v.to_string())
        .collect();
    assert!(names.iter().any(|n| n.contains("/out.dat")));
    assert!(names.iter().any(|n| n.contains("/raw.dat")));
    assert!(names.iter().any(|n| n.contains("/bin/filter")));
    assert!(names.iter().any(|n| n.contains("/bin/gen")));
}

#[test]
fn descendant_query_finds_taint() {
    let (w, _sys) = scenario_db();
    let rs = pql::query(
        "select D from Provenance.file as F F.input~* as D \
         where F.name = '/raw.dat'",
        &w.db,
    )
    .unwrap();
    let names: Vec<String> = rs
        .nodes()
        .iter()
        .filter_map(|n| w.db.object(n.pnode))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
        .map(|v| v.to_string())
        .collect();
    assert!(names.iter().any(|n| n.contains("/out.dat")));
    assert!(names.iter().any(|n| n.contains("/report.txt")));
}

#[test]
fn aggregates_and_filters() {
    let (w, _sys) = scenario_db();
    let rs = pql::query(
        "select count(A) as n from Provenance.file as F F.input+ as A \
         where F.name = '/report.txt'",
        &w.db,
    )
    .unwrap();
    let n = rs.rows[0][0].as_int().unwrap();
    assert!(n >= 4, "at least files+procs in the closure, got {n}");

    // A like-filter over names.
    let rs = pql::query(
        "select F.name from Provenance.file as F where F.name like '/*.dat'",
        &w.db,
    )
    .unwrap();
    assert_eq!(rs.len(), 2, "raw.dat and out.dat");
}

#[test]
fn subquery_connects_layers() {
    let (w, _sys) = scenario_db();
    // Which processes are a *direct* input of some file? (membership
    // subquery; PQL subqueries are uncorrelated, as in Lorel)
    let rs = pql::query(
        "select P.name from Provenance.proc as P \
         where P in (select Src from Provenance.file as F F.input as Src)",
        &w.db,
    )
    .unwrap();
    let names: Vec<&str> = rs.rows.iter().filter_map(|r| r[0].as_str()).collect();
    assert!(names.contains(&"/bin/gen"));
    assert!(names.contains(&"/bin/filter"));
    assert!(names.contains(&"/bin/report"));
}

/// The paper's §5.7 ancestry query with a `name` equality predicate
/// resolves its root binding through the store's attribute index —
/// no full `class_members` scan — and the planner reports it: one
/// index hit, zero scan bindings, candidates pruned, closure walks
/// saved. Served through `System::query`, so the counters also
/// accumulate on the daemon.
#[test]
fn paper_query_pushes_name_predicate_into_the_index() {
    let (mut w, sys) = scenario_db();
    let out = sys
        .query(
            &mut w,
            r#"select Ancestor
               from Provenance.file as Atlas
                    Atlas.input* as Ancestor
               where Atlas.name = "/report.txt""#,
        )
        .unwrap();
    assert!(!out.result.is_empty());
    assert_eq!(out.stats.index_hits, 1, "{:?}", out.stats);
    assert_eq!(
        out.stats.scan_bindings, 0,
        "the root binding must not scan: {:?}",
        out.stats
    );
    assert_eq!(out.stats.predicates_pushed, 1);
    assert!(
        out.stats.rows_pruned >= 2,
        "the other files must be pruned at the root: {:?}",
        out.stats
    );
    assert!(
        out.stats.closure_calls_saved >= 2,
        "each pruned root saves one input* walk: {:?}",
        out.stats
    );
    assert_eq!(out.stats.naive_fallbacks, 0);

    // Identical rows to the naive evaluator.
    let q = pql::parse(
        "select Ancestor from Provenance.file as Atlas Atlas.input* as Ancestor \
         where Atlas.name = '/report.txt'",
    )
    .unwrap();
    let naive = pql::execute_naive(&q, &w.db).unwrap();
    assert_eq!(out.result.rows, naive.rows);

    // The daemon accumulated the counters.
    let ops = w.query_ops();
    assert_eq!(ops.queries, 1);
    assert_eq!(ops.planner.index_hits, 1);
}

/// Prefix-`like` predicates push down too (range scan over the
/// ordered name index).
#[test]
fn prefix_like_pushes_down() {
    let (mut w, _sys) = scenario_db();
    let out = w
        .query("select F.name from Provenance.file as F where F.name like '/out*'")
        .unwrap();
    assert_eq!(out.result.len(), 1);
    assert_eq!(out.stats.index_hits, 1, "{:?}", out.stats);
    assert_eq!(out.stats.scan_bindings, 0);

    // A non-prefix pattern cannot use the index: scan + post-filter,
    // but the same rows.
    let scan = w
        .query("select F.name from Provenance.file as F where F.name like '*.dat'")
        .unwrap();
    assert_eq!(scan.stats.index_hits, 0);
    assert_eq!(scan.stats.scan_bindings, 1);
    assert_eq!(scan.result.len(), 2);
}

#[test]
fn queries_are_deterministic() {
    let (w, _sys) = scenario_db();
    let q = "select A from Provenance.file as F F.input* as A where F.name = '/report.txt'";
    let a = pql::query(q, &w.db).unwrap();
    let b = pql::query(q, &w.db).unwrap();
    assert_eq!(a.rows, b.rows);
}
