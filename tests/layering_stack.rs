//! Layer-stacking tests: the DPAPI is the universal interface, so an
//! arbitrary number of provenance-aware layers can stack (paper §5.2
//! claims a five-layer example: PA app → PA library → PA interpreter
//! → PA-NFS → PASSv2).

use dpapi::VolumeId;
use pa_python::Interp;
use passv2::Pass;
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::syscall::Kernel;

/// Pythonette (PA app + wrapped routine = two app layers) running on
/// a PASSv2 kernel whose volume is PA-NFS: four provenance-aware
/// layers on one object graph.
#[test]
fn four_layer_stack_produces_one_connected_graph() {
    let clock = Clock::new();
    let model = CostModel::default();
    let mut kernel = Kernel::new(clock.clone(), model);
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(40));
    kernel.mount("/", Box::new(pa_nfs::client(&server, clock.clone(), model)));
    kernel.install_module(Pass::new_shared());

    let pid = kernel.spawn_init("pythonette");
    kernel.write_file(pid, "/input.xml", b"<v>41</v>").unwrap();

    let mut interp = Interp::new(pid);
    interp.wrap("refine"); // the PA "library" layer
    interp
        .run(
            &mut kernel,
            r#"
            def refine(doc) { return xml_field(doc, "v"); }
            let d = read_file("/input.xml");
            write_file("/result.out", refine(d));
            "#,
        )
        .unwrap();
    kernel.exit(pid);

    // Everything landed in ONE provenance database at the server.
    let db = waldo::ProvDb::new();
    for image in server.borrow_mut().drain_provenance_logs() {
        let (entries, _) = lasagna::parse_log(&image);
        db.ingest(&entries);
    }

    use pql::GraphSource;
    let files = db.find_by_type("FILE");
    let result = *db
        .find_by_name("/result.out")
        .iter()
        .find(|p| files.contains(p))
        .expect("output file recorded at the server");
    let obj = db.object(result).unwrap();
    let v = dpapi::Version(obj.current);
    let anc = db.ancestors(dpapi::ObjectRef::new(result, v));

    // The ancestry crosses all layers: the wrapped invocation
    // (app/library layer), the interpreter process (OS layer), and
    // the input file (storage layer) — all with server pnodes.
    let types: Vec<String> = anc
        .iter()
        .filter_map(|r| db.object(r.pnode))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Type).cloned())
        .map(|t| t.to_string())
        .collect();
    assert!(types.iter().any(|t| t.contains("FUNCTION")), "{types:?}");
    assert!(types.iter().any(|t| t.contains("PROC")), "{types:?}");
    assert!(
        anc.iter().any(|r| {
            db.object(r.pnode)
                .and_then(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
                .map(|n| n.to_string().contains("input.xml"))
                .unwrap_or(false)
        }),
        "input file reachable"
    );
    // Every object in the graph lives on the server volume.
    assert!(anc.iter().all(|r| r.pnode.volume == VolumeId(40)));
    let _ = db.class_members("obj");
}

/// The distributor routes provenance across two PASS volumes: a file
/// written on volume B depends on a file read from volume A, through
/// a process materialized on one of them.
#[test]
fn cross_volume_ancestry_via_distributor() {
    let mut sys = passv2::SystemBuilder::new(CostModel::default())
        .pass_volume("/a", VolumeId(1))
        .pass_volume("/b", VolumeId(2))
        .build();
    let pid = sys.kernel.spawn_init("mover");
    sys.kernel
        .write_file(pid, "/a/src.dat", b"payload")
        .unwrap();
    let data = sys.kernel.read_file(pid, "/a/src.dat").unwrap();
    sys.kernel.write_file(pid, "/b/dst.dat", &data).unwrap();
    sys.kernel.exit(pid);

    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut w = waldo::Waldo::new(waldo_pid);
    for (m, logs) in sys.rotate_all_logs() {
        let path = if m.0 == 0 { "/a" } else { "/b" };
        let _ = path;
        for log in logs {
            w.ingest_log_file(&mut sys.kernel, &log);
        }
    }

    let dst = w.db.find_by_name("/b/dst.dat");
    assert_eq!(dst.len(), 1);
    assert_eq!(dst[0].volume, VolumeId(2));
    let obj = w.db.object(dst[0]).unwrap();
    let v = dpapi::Version(obj.current);
    let anc = w.db.ancestors(dpapi::ObjectRef::new(dst[0], v));
    // The cross-volume reference reaches the source file on volume 1.
    let src = w.db.find_by_name("/a/src.dat");
    assert_eq!(src.len(), 1);
    assert_eq!(src[0].volume, VolumeId(1));
    assert!(
        anc.iter().any(|r| r.pnode == src[0]),
        "dst on vol2 must depend on src on vol1: {anc:?}"
    );
}

/// Pipes are non-persistent first-class objects: provenance flows
/// through a shell-style pipeline and the pipe objects appear in the
/// ancestry chain once materialized.
#[test]
fn pipeline_provenance_through_pipes() {
    let mut sys = passv2::System::single_volume();
    let producer = sys.kernel.spawn_init("producer");
    sys.kernel
        .write_file(producer, "/input.txt", b"pipe payload")
        .unwrap();
    let (rfd, wfd) = sys.kernel.pipe(producer).unwrap();
    let consumer = sys.kernel.fork(producer).unwrap();

    // producer: reads the input, writes into the pipe.
    let data = sys.kernel.read_file(producer, "/input.txt").unwrap();
    sys.kernel.write(producer, wfd, &data).unwrap();
    // consumer: reads the pipe, writes the output file.
    let got = sys.kernel.read(consumer, rfd, 100).unwrap();
    sys.kernel
        .write_file(consumer, "/output.txt", &got)
        .unwrap();
    sys.kernel.exit(consumer);
    sys.kernel.exit(producer);

    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut w = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            w.ingest_log_file(&mut sys.kernel, &log);
        }
    }
    let out = w.db.find_by_name("/output.txt");
    assert_eq!(out.len(), 1);
    let obj = w.db.object(out[0]).unwrap();
    let v = dpapi::Version(obj.current);
    let anc = w.db.ancestors(dpapi::ObjectRef::new(out[0], v));
    // The chain: output ← consumer ← pipe ← producer ← input.
    let types: Vec<String> = anc
        .iter()
        .filter_map(|r| w.db.object(r.pnode))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Type).cloned())
        .map(|t| t.to_string())
        .collect();
    assert!(types.iter().any(|t| t.contains("PIPE")), "{types:?}");
    let names: Vec<String> = anc
        .iter()
        .filter_map(|r| w.db.object(r.pnode))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
        .map(|n| n.to_string())
        .collect();
    assert!(names.iter().any(|n| n.contains("input.txt")), "{names:?}");
}

/// Processes with no persistent descendants leave no trace (§5.5).
#[test]
fn transient_processes_are_not_materialized() {
    let mut sys = passv2::System::single_volume();
    let pid = sys.kernel.spawn_init("idler");
    sys.kernel
        .execve(pid, "/bin/idler", &["idler".into()], &[])
        .ok();
    // Reads but never writes: no persistent descendant.
    sys.kernel.write_file(pid, "/seen.txt", b"x").unwrap();
    let lurker = sys.kernel.spawn_init("lurker");
    let _ = sys.kernel.read_file(lurker, "/seen.txt").unwrap();
    sys.kernel.exit(lurker);
    sys.kernel.exit(pid);

    let waldo_pid = sys.kernel.spawn_init("waldo");
    sys.pass.exempt(waldo_pid);
    let mut w = waldo::Waldo::new(waldo_pid);
    for (_, logs) in sys.rotate_all_logs() {
        for log in logs {
            w.ingest_log_file(&mut sys.kernel, &log);
        }
    }
    let procs = w.db.find_by_type("PROC");
    let names: Vec<String> = procs
        .iter()
        .filter_map(|p| w.db.object(*p))
        .filter_map(|o| o.first_attr(&dpapi::Attribute::Name).cloned())
        .map(|n| n.to_string())
        .collect();
    // The idler wrote a file, so it is materialized; the lurker only
    // read and must not appear.
    assert!(
        !names.iter().any(|n| n.contains("lurker")),
        "read-only process must not persist: {names:?}"
    );
}
