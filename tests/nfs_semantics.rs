//! PA-NFS protocol semantics across the full stack: version
//! branching between clients, orphaned-transaction garbage
//! collection, and freeze-as-record ordering (paper §6.1).

use dpapi::{Attribute, Bundle, Dpapi, ProvenanceRecord, Value, Version, VolumeId};
use sim_os::clock::Clock;
use sim_os::cost::CostModel;
use sim_os::fs::{DpapiVolume, FileSystem};

#[test]
fn two_clients_can_branch_versions() {
    // Close-to-open consistency lets two clients modify the same file
    // version concurrently; "our approach of versioning at the client
    // and updating versions at the server can lead to version
    // branching" (§6.1.2).
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(7));
    let mut a = pa_nfs::client(&server, clock.clone(), model);
    let mut b = pa_nfs::client(&server, clock.clone(), model);

    let root = a.root();
    let ino = a.create(root, "shared").unwrap();
    // Both clients see version 0.
    let ha = a.handle_for_ino(ino).unwrap();
    let hb = b.handle_for_ino(ino).unwrap();
    assert_eq!(a.pass_read(ha, 0, 0).unwrap().identity.version, Version(0));
    assert_eq!(b.pass_read(hb, 0, 0).unwrap().identity.version, Version(0));

    // Each freezes locally: both believe they created version 1.
    let va = a.pass_freeze(ha).unwrap();
    let vb = b.pass_freeze(hb).unwrap();
    assert_eq!(va, Version(1));
    assert_eq!(vb, Version(1));

    // At the server, the two freeze records materialize as two
    // *distinct* versions — the branch resolved by arrival order.
    let sv = server
        .borrow_mut()
        .fs_mut()
        .as_dpapi()
        .unwrap()
        .identity_of_ino(ino)
        .unwrap()
        .version;
    assert_eq!(sv, Version(2), "server version reflects both freezes");
}

#[test]
fn orphaned_transaction_is_garbage_collected() {
    // A client begins a chunked provenance transaction, ships some
    // chunks, and "crashes" before the final OP_PASSWRITE. The
    // transaction id lets the server-side Waldo identify and discard
    // the orphaned provenance (§6.1.2).
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(8));
    let mut client = pa_nfs::client(&server, clock.clone(), model);
    let root = client.root();
    let ino = client.create(root, "victim").unwrap();

    // Simulate the crash at the protocol level: BEGINTXN + PASSPROV
    // without the concluding ENDTXN.
    let resp = server.borrow_mut().handle(pa_nfs::Request::BeginTxn);
    let pa_nfs::Response::Txn(txn) = resp else {
        panic!("no txn")
    };
    server.borrow_mut().handle(pa_nfs::Request::PassProv {
        txn: Some(txn),
        records: vec![pa_nfs::WireRecord {
            subject: pa_nfs::WireObj::File(ino),
            record: ProvenanceRecord::new(Attribute::Name, Value::str("ghost-name")),
        }],
    });

    // Waldo ingests the logs: the orphaned records stay pending and
    // are discarded, never entering the database.
    let db = waldo::ProvDb::new();
    for image in server.borrow_mut().drain_provenance_logs() {
        let (entries, _) = lasagna::parse_log(&image);
        db.ingest(&entries);
    }
    assert_eq!(db.open_txns(), vec![txn]);
    assert!(db.find_by_name("ghost-name").is_empty());
    let dropped = db.discard_txn(txn);
    assert!(dropped >= 1, "orphaned records were garbage-collected");
}

#[test]
fn committed_transaction_applies_atomically() {
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(9));
    let mut client = pa_nfs::client(&server, clock.clone(), model);
    let root = client.root();
    let ino = client.create(root, "big-bundle").unwrap();
    let h = client.handle_for_ino(ino).unwrap();

    // An oversized bundle (must chunk through a transaction).
    let mut bundle = Bundle::new();
    for i in 0..3000 {
        bundle.push(
            h,
            ProvenanceRecord::new(
                Attribute::Other("NOTE".into()),
                Value::str(format!("bulk record {i} padded to a realistic size......")),
            ),
        );
    }
    client.pass_write(h, 0, b"the data", bundle).unwrap();
    assert!(client.stats().txns >= 1, "the bundle used a transaction");

    let db = waldo::ProvDb::new();
    for image in server.borrow_mut().drain_provenance_logs() {
        let (entries, _) = lasagna::parse_log(&image);
        db.ingest(&entries);
    }
    assert!(db.open_txns().is_empty(), "transaction committed");
    // All 3000 records present on the file object.
    let id = {
        let mut s = server.borrow_mut();
        s.fs_mut().as_dpapi().unwrap().identity_of_ino(ino).unwrap()
    };
    let obj = db.object(id.pnode).expect("file in db");
    let notes = obj
        .versions
        .values()
        .flat_map(|v| v.attrs.iter())
        .filter(|(a, _)| *a == Attribute::Other("NOTE".into()))
        .count();
    assert_eq!(notes, 3000);
}

#[test]
fn freeze_record_orders_before_subsequent_write() {
    // The freeze must apply before the data write it precedes (the
    // reason freeze is a record, not an operation).
    let clock = Clock::new();
    let model = CostModel::default();
    let server = pa_nfs::pa_server(clock.clone(), model, VolumeId(10));
    let mut client = pa_nfs::client(&server, clock.clone(), model);
    let root = client.root();
    let ino = client.create(root, "f").unwrap();
    let h = client.handle_for_ino(ino).unwrap();
    let mut bundle = Bundle::new();
    bundle.push(h, ProvenanceRecord::freeze(Version(1)));
    let w = client.pass_write(h, 0, b"v1 bytes", bundle).unwrap();
    assert_eq!(
        w.identity.version,
        Version(1),
        "data written at the post-freeze version"
    );
}

#[test]
fn plain_and_pa_exports_coexist() {
    let clock = Clock::new();
    let model = CostModel::default();
    let plain = pa_nfs::plain_server(clock.clone(), model);
    let pa = pa_nfs::pa_server(clock.clone(), model, VolumeId(30));
    let mut c1 = pa_nfs::client(&plain, clock.clone(), model);
    let mut c2 = pa_nfs::client(&pa, clock.clone(), model);
    assert!(c1.as_dpapi().is_none(), "plain export has no DPAPI");
    assert!(c2.as_dpapi().is_some(), "PA export speaks DPAPI");
    // Both serve ordinary file I/O.
    for c in [&mut c1, &mut c2] {
        let root = c.root();
        let ino = c.create(root, "x").unwrap();
        c.write(ino, 0, b"data").unwrap();
        assert_eq!(c.read(ino, 0, 4).unwrap(), b"data");
    }
}
